//! `detrand` — dependency-free deterministic pseudo-random numbers.
//!
//! The co-estimation experiments must be exactly reproducible run-to-run
//! and machine-to-machine, and the build must work without network
//! access, so workloads and randomized tests draw from this tiny
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator instead
//! of an external crate. SplitMix64 passes BigCrush, has a full 2^64
//! period, and its output for a given seed is fixed forever — exactly
//! what a reproducible workload generator needs (cryptographic quality
//! is explicitly *not* a goal).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use detrand::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut r = Rng::new(7);
/// let v = r.u64_in(10, 20);
/// assert!((10..20).contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// `rand`-flavoured alias for [`Rng::new`].
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng::new(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`. Uses Lemire-style widening
    /// multiplication; the modulo bias is at most 2⁻⁶⁴ per draw.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi as i128 - lo as i128) as u128;
        assert!(span > 0, "empty range [{lo}, {hi})");
        let wide = (self.next_u64() as u128) * span;
        (lo as i128 + (wide >> 64) as i128) as i64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        lo + self.f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_in(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = Rng::new(0xDA7E_2000);
        let mut b = Rng::new(0xDA7E_2000);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            assert!((5..17).contains(&r.u64_in(5, 17)));
            assert!((-20..-3).contains(&r.i64_in(-20, -3)));
            assert!((0..3).contains(&r.usize_in(0, 3)));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.f64_in(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&g));
        }
    }

    #[test]
    fn u64_range_covers_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.usize_in(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut r = Rng::new(4);
        assert_eq!(r.u64_in(7, 8), 7);
        assert_eq!(r.i64_in(-1, 0), -1);
    }

    #[test]
    fn choose_picks_members() {
        let items = ["a", "b", "c"];
        let mut r = Rng::new(11);
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut r = Rng::new(5);
        let hits = (0..10_000).filter(|_| r.bool_with(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25%: {hits}");
    }
}
