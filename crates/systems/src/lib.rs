//! `systems` — the example systems-on-chip of the DATE 2000
//! co-estimation paper, described as CFSM networks ready for
//! co-estimation.
//!
//! * [`producer_consumer`] — the motivating example of Fig. 1
//!   (producer SW / timer HW / consumer HW with timing-dependent loop
//!   bounds);
//! * [`tcpip`] — the TCP/IP network-interface-card checksum subsystem of
//!   Fig. 5 (SPARC + two ASICs + shared memory behind an arbitrated
//!   bus), the workload of Tables 1–2 and Figures 6–7;
//! * [`automotive`] — the automotive dashboard / cruise controller
//!   mentioned in the paper's abstract.
//!
//! # Examples
//!
//! ```
//! use systems::tcpip;
//! use co_estimation::{CoSimulator, CoSimConfig};
//!
//! let soc = tcpip::build(&tcpip::TcpIpParams {
//!     num_packets: 2,
//!     len_range: (8, 12),
//!     pkt_period: 5_000,
//!     seed: 1,
//! })?;
//! let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults())?;
//! let report = sim.run();
//! assert!(report.total_energy_j() > 0.0);
//! # Ok::<(), co_estimation::BuildEstimatorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automotive;
pub mod producer_consumer;
pub mod tcpip;

/// Wraps an internal machine/network-construction failure (a builder
/// bug, not a user error) as a typed error instead of a panic.
pub(crate) fn internal(
    what: &str,
    e: impl std::fmt::Display,
) -> co_estimation::BuildEstimatorError {
    co_estimation::BuildEstimatorError::Construction(format!("{what}: {e}"))
}
