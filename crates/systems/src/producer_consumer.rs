//! The producer / timer / consumer system of Fig. 1.
//!
//! Three concurrent processes with event-based communication:
//!
//! * **producer** (SW on the embedded processor): on each `START` from
//!   the environment, computes a checksum over a packet and emits
//!   `END_COMP`; it stops after [`ProducerConsumerParams::num_pkts`]
//!   packets.
//! * **timer** (HW): on each `TIMER_TICK` emits the current tick count as
//!   the valued event `TIME`.
//! * **consumer** (HW): on `END_COMP ∧ TIME`, runs a computation loop
//!   whose iteration count is `TIME - PREV_TIME` — the
//!   timing-functionality inter-dependence that makes separate
//!   estimation fail (§2).
//!
//! The parameters are chosen so that the producer's computation time
//! exceeds the `START` period: in a timing-accurate co-simulation the
//! producer saturates and `END_COMP`s space out at the *computation*
//! period, while the timing-independent behavioral simulation spaces them
//! at the *stimulus* period — so the consumer's loop bounds (and hence
//! its energy) are under-estimated by the separate flow, exactly as in
//! Fig. 1(b).

use cfsm::{
    BlockId, Cfg, CfgBuilder, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network,
    Stmt, Terminator,
};
use co_estimation::{BuildEstimatorError, SocDescription};

/// Workload parameters for the Fig. 1 system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProducerConsumerParams {
    /// Packets the producer processes before stopping.
    pub num_pkts: u32,
    /// Bytes per packet (drives the producer's checksum loop).
    pub pkt_bytes: u32,
    /// Environment `START` period, cycles.
    pub start_period: u64,
    /// Environment `TIMER_TICK` period, cycles.
    pub tick_period: u64,
    /// How many `START`s the environment offers (≥ `num_pkts`; extras are
    /// dropped by the saturated producer's single-place buffer).
    pub num_starts: u32,
}

impl ProducerConsumerParams {
    /// The defaults used by the Fig. 1(b) experiment: 104-byte packets
    /// make the producer's computation ≈ 2.6× the `START` period, so the
    /// timing-independent behavioral trace under-estimates the consumer's
    /// loop bounds by the same factor the paper reports (~62%).
    pub fn fig1_defaults() -> Self {
        ProducerConsumerParams {
            num_pkts: 20,
            pkt_bytes: 104,
            start_period: 1_000,
            tick_period: 250,
            num_starts: 90,
        }
    }
}

impl Default for ProducerConsumerParams {
    fn default() -> Self {
        ProducerConsumerParams::fig1_defaults()
    }
}

/// Builds the Fig. 1 system.
///
/// # Errors
///
/// Returns [`BuildEstimatorError::EmptyWorkload`] when the workload has
/// zero packets or zero bytes per packet, and
/// [`BuildEstimatorError::InvalidParams`] for zero periods or too few
/// `START`s. Machine-validation failures (a bug) surface as [`BuildEstimatorError::Construction`].
pub fn build(params: &ProducerConsumerParams) -> Result<SocDescription, BuildEstimatorError> {
    if params.num_pkts == 0 || params.pkt_bytes == 0 {
        return Err(BuildEstimatorError::EmptyWorkload(
            "producer_consumer: num_pkts and pkt_bytes must be non-zero".into(),
        ));
    }
    if params.start_period == 0 || params.tick_period == 0 {
        return Err(BuildEstimatorError::InvalidParams(
            "producer_consumer: start_period and tick_period must be non-zero".into(),
        ));
    }
    if params.num_starts < params.num_pkts {
        return Err(BuildEstimatorError::InvalidParams(format!(
            "producer_consumer: num_starts ({}) must cover num_pkts ({})",
            params.num_starts, params.num_pkts
        )));
    }

    let mut nb = Network::builder();
    let start = nb.event(EventDef::pure("START"));
    let tick = nb.event(EventDef::pure("TIMER_TICK"));
    let end_comp = nb.event(EventDef::pure("END_COMP"));
    let time = nb.event(EventDef::valued("TIME"));
    let byte_done = nb.event(EventDef::pure("BYTE_DONE"));

    // --- producer (SW) --------------------------------------------------
    let producer = {
        let mut b = Cfsm::builder("producer");
        let run = b.state("run");
        let pkts = b.var("pkts", 0);
        let i = b.var("i", 0);
        let byte = b.var("byte", 0);
        let sum = b.var("sum", 0);

        // On START (while pkts < num_pkts):
        //   sum = 0; for i in 0..pkt_bytes { byte = f(pkts, i); sum += … }
        //   pkts += 1; emit END_COMP
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![
                Stmt::Assign {
                    var: sum,
                    expr: Expr::Const(0),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::Const(0),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        // loop head
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::lt(Expr::Var(i), Expr::Const(params.pkt_bytes as i64)),
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        );
        // body: synthesize a pseudo-random byte and fold it into the
        // checksum (ones-complement-ish 16-bit fold).
        cb.block(
            vec![
                Stmt::Assign {
                    var: byte,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(
                            Expr::bin(
                                cfsm::BinOp::Mul,
                                Expr::Var(pkts),
                                Expr::Const(31),
                            ),
                            Expr::bin(cfsm::BinOp::Mul, Expr::Var(i), Expr::Const(7)),
                        ),
                        Expr::Const(0xFF),
                    ),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(Expr::Var(sum), Expr::Var(byte)),
                        Expr::Const(0x7FFF),
                    ),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::add(Expr::Var(i), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        // exit: count the packet and signal completion.
        cb.block(
            vec![
                Stmt::Assign {
                    var: pkts,
                    expr: Expr::add(Expr::Var(pkts), Expr::Const(1)),
                },
                Stmt::Emit {
                    event: end_comp,
                    value: None,
                },
            ],
            Terminator::Return,
        );
        b.transition(
            run,
            vec![start],
            Some(Expr::lt(
                Expr::Var(pkts),
                Expr::Const(params.num_pkts as i64),
            )),
            cb.finish().map_err(|e| crate::internal("producer body", e))?,
            run,
        );
        b.finish().map_err(|e| crate::internal("producer machine", e))?
    };

    // --- timer (HW) ------------------------------------------------------
    let timer = {
        let mut b = Cfsm::builder("timer");
        let run = b.state("run");
        let t = b.var("t", 0);
        b.transition(
            run,
            vec![tick],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: t,
                    expr: Expr::add(Expr::Var(t), Expr::Const(1)),
                },
                Stmt::Emit {
                    event: time,
                    value: Some(Expr::Var(t)),
                },
            ]),
            run,
        );
        b.finish().map_err(|e| crate::internal("timer machine", e))?
    };

    // --- consumer (HW) ---------------------------------------------------
    let consumer = {
        let mut b = Cfsm::builder("consumer");
        let run = b.state("run");
        let prev = b.var("prev_time", 0);
        let n_it = b.var("n_it", 0);
        let acc = b.var("acc", 0);

        let mut cb = CfgBuilder::new();
        cb.block(
            vec![Stmt::Assign {
                var: n_it,
                expr: Expr::sub(Expr::EventValue(time), Expr::Var(prev)),
            }],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(n_it), Expr::Const(0)),
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        );
        cb.block(
            vec![
                Stmt::Assign {
                    var: acc,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(
                            Expr::bin(cfsm::BinOp::Mul, Expr::Var(acc), Expr::Const(3)),
                            Expr::Var(n_it),
                        ),
                        Expr::Const(0x7FFF),
                    ),
                },
                Stmt::Assign {
                    var: n_it,
                    expr: Expr::sub(Expr::Var(n_it), Expr::Const(1)),
                },
                Stmt::Emit {
                    event: byte_done,
                    value: None,
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![Stmt::Assign {
                var: prev,
                expr: Expr::EventValue(time),
            }],
            Terminator::Return,
        );
        b.transition(
            run,
            vec![end_comp, time],
            None,
            cb.finish().map_err(|e| crate::internal("consumer body", e))?,
            run,
        );
        b.finish().map_err(|e| crate::internal("consumer machine", e))?
    };

    nb.process(producer, Implementation::Sw);
    nb.process(timer, Implementation::Hw);
    nb.process(consumer, Implementation::Hw);
    let network = nb.finish().map_err(|e| crate::internal("network", e))?;

    // Stimulus: periodic ticks covering the whole (saturated) run plus
    // slack, and periodic STARTs.
    let horizon = params.num_starts as u64 * params.start_period * 4;
    let mut stimulus: Vec<(u64, EventOccurrence)> = Vec::new();
    let mut t = params.tick_period;
    while t < horizon {
        stimulus.push((t, EventOccurrence::pure(tick)));
        t += params.tick_period;
    }
    for s in 0..params.num_starts as u64 {
        stimulus.push((
            (s + 1) * params.start_period,
            EventOccurrence::pure(start),
        ));
    }
    stimulus.sort_by_key(|&(t, _)| t);

    Ok(SocDescription {
        name: "producer-timer-consumer".into(),
        network,
        stimulus,
        priorities: vec![2, 3, 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_estimation::{capture_traces, CoSimConfig, CoSimulator};

    fn small() -> ProducerConsumerParams {
        ProducerConsumerParams {
            num_pkts: 4,
            pkt_bytes: 16,
            start_period: 400,
            tick_period: 100,
            num_starts: 16,
        }
    }

    #[test]
    fn degenerate_params_are_typed_errors() {
        use co_estimation::BuildEstimatorError;
        let empty = ProducerConsumerParams {
            num_pkts: 0,
            ..small()
        };
        assert!(matches!(
            build(&empty),
            Err(BuildEstimatorError::EmptyWorkload(_))
        ));
        let no_period = ProducerConsumerParams {
            tick_period: 0,
            ..small()
        };
        assert!(matches!(
            build(&no_period),
            Err(BuildEstimatorError::InvalidParams(_))
        ));
        let starved = ProducerConsumerParams {
            num_starts: 1,
            ..small()
        };
        assert!(matches!(
            build(&starved),
            Err(BuildEstimatorError::InvalidParams(_))
        ));
    }

    #[test]
    fn builds_and_names_resolve() {
        let soc = build(&small()).expect("valid params");
        assert_eq!(soc.network.process_count(), 3);
        for name in ["producer", "timer", "consumer"] {
            assert!(soc.network.process_by_name(name).is_some(), "{name}");
        }
        assert!(soc.network.event_by_name("TIME").is_some());
    }

    #[test]
    fn behavioral_producer_fires_exactly_num_pkts() {
        let soc = build(&small()).expect("valid params");
        let trace = capture_traces(&soc);
        let p = soc.network.process_by_name("producer").expect("exists");
        assert_eq!(trace.firing_count(p), 4);
    }

    #[test]
    fn co_simulation_runs_and_consumer_works() {
        let soc = build(&small()).expect("valid params");
        let consumer = soc.network.process_by_name("consumer").expect("exists");
        let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        let report = sim.run();
        assert!(report.total_energy_j() > 0.0);
        let cons = report
            .processes
            .iter()
            .find(|p| p.name == "consumer")
            .expect("consumer");
        assert!(cons.firings > 0, "consumer fired");
        assert!(cons.energy_j > 0.0);
        let _ = consumer;
    }

    #[test]
    fn producer_saturates_under_timing() {
        // The producer's computation exceeds the START period, so under
        // co-simulation consecutive END_COMPs are spaced by the
        // computation time, not the stimulus period. We check the proxy:
        // the consumer's total loop iterations (tick span) exceed the
        // behavioral prediction.
        let params = small();
        let soc = build(&params).expect("valid params");
        let trace = capture_traces(&soc);
        let consumer = soc.network.process_by_name("consumer").expect("exists");
        let behavioral_iters: i64 = trace
            .of_process(consumer)
            .map(|f| {
                f.execution
                    .macro_ops
                    .iter()
                    .filter(|&&m| m == cfsm::MacroOp::TivarT)
                    .count() as i64
            })
            .sum();
        let mut sim =
            CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        let report = sim.run();
        let cons = report
            .processes
            .iter()
            .find(|p| p.name == "consumer")
            .expect("consumer");
        // Proxy for iterations: consumer busy cycles scale with loop
        // bounds. The co-simulated consumer must do substantially more
        // work than the behavioral trace predicts.
        assert!(
            cons.busy_cycles as i64 > behavioral_iters,
            "co-simulated consumer work should exceed behavioral iteration count"
        );
    }
}
