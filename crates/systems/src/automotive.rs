//! An automotive dashboard / cruise-control subsystem.
//!
//! The paper's abstract mentions an automotive controller as the second
//! case study; this module provides a control-dominated reactive system
//! in that spirit:
//!
//! * **speed_sensor** (HW): counts `WHEEL_PULSE`s; on each periodic
//!   `SAMPLE` emits `SPEED` (pulses in the window × a scale factor).
//! * **odometer** (SW): accumulates pulses into a distance count and
//!   periodically refreshes the display (`ODO`).
//! * **cruise** (SW): a proportional-integral controller — on `SPEED`
//!   (while engaged) computes a throttle correction toward the target
//!   and emits `THROTTLE`.
//! * **display** (HW): seven-segment encodes the speed digit by digit
//!   (`SPEED` → segment-decode loop).
//!
//! Like the Fig. 1 example, the components' activity is heavily
//! timing-dependent (speed values depend on how many pulses land in a
//! sampling window), making it a good co-estimation stress case.

use cfsm::{
    BlockId, Cfg, CfgBuilder, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network,
    Stmt, Terminator,
};
use co_estimation::{BuildEstimatorError, SocDescription};

/// Workload parameters for the automotive controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomotiveParams {
    /// Number of sampling windows to simulate.
    pub num_samples: u32,
    /// Sampling period, cycles.
    pub sample_period: u64,
    /// Wheel-pulse period at the initial speed, cycles.
    pub pulse_period: u64,
    /// Cruise-control speed target (in sensor units).
    pub target_speed: i64,
}

impl AutomotiveParams {
    /// A demo drive: ~40 sampling windows.
    pub fn demo() -> Self {
        AutomotiveParams {
            num_samples: 40,
            sample_period: 2_000,
            pulse_period: 180,
            target_speed: 40,
        }
    }
}

impl Default for AutomotiveParams {
    fn default() -> Self {
        AutomotiveParams::demo()
    }
}

/// Builds the automotive controller system.
///
/// # Errors
///
/// Returns [`BuildEstimatorError::EmptyWorkload`] when no sampling
/// windows are requested and [`BuildEstimatorError::InvalidParams`] for
/// zero periods. Internal machine-construction bugs surface as [`BuildEstimatorError::Construction`].
pub fn build(params: &AutomotiveParams) -> Result<SocDescription, BuildEstimatorError> {
    if params.num_samples == 0 {
        return Err(BuildEstimatorError::EmptyWorkload(
            "automotive: num_samples must be at least 1".into(),
        ));
    }
    if params.sample_period == 0 || params.pulse_period == 0 {
        return Err(BuildEstimatorError::InvalidParams(
            "automotive: sample_period and pulse_period must be non-zero".into(),
        ));
    }

    let mut nb = Network::builder();
    let wheel = nb.event(EventDef::pure("WHEEL_PULSE"));
    let sample = nb.event(EventDef::pure("SAMPLE"));
    let speed = nb.event(EventDef::valued("SPEED"));
    let odo = nb.event(EventDef::valued("ODO"));
    let throttle = nb.event(EventDef::valued("THROTTLE"));
    let seg_done = nb.event(EventDef::pure("SEG_DONE"));

    // --- speed_sensor (HW) ----------------------------------------------
    let speed_sensor = {
        let mut b = Cfsm::builder("speed_sensor");
        let run = b.state("run");
        let pulses = b.var("pulses", 0);
        b.transition(
            run,
            vec![wheel],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: pulses,
                expr: Expr::add(Expr::Var(pulses), Expr::Const(1)),
            }]),
            run,
        );
        b.transition(
            run,
            vec![sample],
            None,
            Cfg::straight_line(vec![
                Stmt::Emit {
                    event: speed,
                    value: Some(Expr::bin(
                        cfsm::BinOp::Mul,
                        Expr::Var(pulses),
                        Expr::Const(4),
                    )),
                },
                Stmt::Assign {
                    var: pulses,
                    expr: Expr::Const(0),
                },
            ]),
            run,
        );
        b.finish().map_err(|e| crate::internal("speed_sensor machine", e))?
    };

    // --- odometer (SW) -----------------------------------------------------
    let odometer = {
        let mut b = Cfsm::builder("odometer");
        let run = b.state("run");
        let dist = b.var("dist", 0);
        let window = b.var("window", 0);
        b.transition(
            run,
            vec![wheel],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: dist,
                    expr: Expr::add(Expr::Var(dist), Expr::Const(1)),
                },
                Stmt::Assign {
                    var: window,
                    expr: Expr::add(Expr::Var(window), Expr::Const(1)),
                },
            ]),
            run,
        );
        // Refresh the odometer display every sampling window.
        b.transition(
            run,
            vec![sample],
            None,
            Cfg::straight_line(vec![
                Stmt::Emit {
                    event: odo,
                    value: Some(Expr::Var(dist)),
                },
                Stmt::Assign {
                    var: window,
                    expr: Expr::Const(0),
                },
            ]),
            run,
        );
        b.finish().map_err(|e| crate::internal("odometer machine", e))?
    };

    // --- cruise (SW) ---------------------------------------------------------
    let cruise = {
        let mut b = Cfsm::builder("cruise");
        let run = b.state("run");
        let integral = b.var("integral", 0);
        let err = b.var("err", 0);
        let out = b.var("out", 0);
        b.transition(
            run,
            vec![speed],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: err,
                    expr: Expr::sub(Expr::Const(params.target_speed), Expr::EventValue(speed)),
                },
                Stmt::Assign {
                    var: integral,
                    expr: Expr::add(Expr::Var(integral), Expr::Var(err)),
                },
                // Clamp the integral term to ±512 (anti-windup): the
                // clamp arithmetic is branch-free: i = max(-512, min(512, i)).
                Stmt::Assign {
                    var: integral,
                    expr: Expr::add(
                        Expr::bin(
                            cfsm::BinOp::Mul,
                            Expr::Var(integral),
                            Expr::bin(
                                cfsm::BinOp::And,
                                Expr::bin(cfsm::BinOp::Ge, Expr::Var(integral), Expr::Const(-512)),
                                Expr::bin(cfsm::BinOp::Le, Expr::Var(integral), Expr::Const(512)),
                            ),
                        ),
                        Expr::add(
                            Expr::bin(
                                cfsm::BinOp::Mul,
                                Expr::Const(512),
                                Expr::bin(cfsm::BinOp::Gt, Expr::Var(integral), Expr::Const(512)),
                            ),
                            Expr::bin(
                                cfsm::BinOp::Mul,
                                Expr::Const(-512),
                                Expr::bin(cfsm::BinOp::Lt, Expr::Var(integral), Expr::Const(-512)),
                            ),
                        ),
                    ),
                },
                // out = 4·err + integral/8
                Stmt::Assign {
                    var: out,
                    expr: Expr::add(
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(err), Expr::Const(4)),
                        Expr::bin(cfsm::BinOp::Shr, Expr::Var(integral), Expr::Const(3)),
                    ),
                },
                Stmt::Emit {
                    event: throttle,
                    value: Some(Expr::Var(out)),
                },
            ]),
            run,
        );
        b.finish().map_err(|e| crate::internal("cruise machine", e))?
    };

    // --- display (HW) ----------------------------------------------------------
    let display = {
        let mut b = Cfsm::builder("display");
        let run = b.state("run");
        let value = b.var("value", 0);
        let digit = b.var("digit", 0);
        let segs = b.var("segs", 0);
        let n = b.var("n", 0);

        // On SPEED: decode 3 digits (divide-free: repeated subtraction of
        // powers of ten via a small loop per digit is hardware-hostile;
        // instead decode by nibbles of a scaled value).
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![
                Stmt::Assign {
                    var: value,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::EventValue(speed),
                        Expr::Const(0x3FF),
                    ),
                },
                Stmt::Assign {
                    var: n,
                    expr: Expr::Const(3),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(n), Expr::Const(0)),
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        );
        cb.block(
            vec![
                Stmt::Assign {
                    var: digit,
                    expr: Expr::bin(cfsm::BinOp::And, Expr::Var(value), Expr::Const(0xF)),
                },
                // A toy segment encoder: segs = (digit*0x49 + 0x12) & 0x7F.
                Stmt::Assign {
                    var: segs,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(
                            Expr::bin(cfsm::BinOp::Mul, Expr::Var(digit), Expr::Const(0x49)),
                            Expr::Const(0x12),
                        ),
                        Expr::Const(0x7F),
                    ),
                },
                Stmt::Assign {
                    var: value,
                    expr: Expr::bin(cfsm::BinOp::Shr, Expr::Var(value), Expr::Const(4)),
                },
                Stmt::Assign {
                    var: n,
                    expr: Expr::sub(Expr::Var(n), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![Stmt::Emit {
                event: seg_done,
                value: None,
            }],
            Terminator::Return,
        );
        b.transition(
            run,
            vec![speed],
            None,
            cb.finish().map_err(|e| crate::internal("display body", e))?,
            run,
        );
        b.finish().map_err(|e| crate::internal("display machine", e))?
    };

    nb.process(speed_sensor, Implementation::Hw);
    nb.process(odometer, Implementation::Sw);
    nb.process(cruise, Implementation::Sw);
    nb.process(display, Implementation::Hw);
    let network = nb.finish().map_err(|e| crate::internal("network", e))?;

    // Stimulus: wheel pulses whose period slowly drifts (accelerating
    // vehicle) plus periodic SAMPLEs.
    let horizon = params.num_samples as u64 * params.sample_period;
    let mut stimulus: Vec<(u64, EventOccurrence)> = Vec::new();
    let mut t = params.pulse_period;
    let mut period = params.pulse_period;
    while t < horizon {
        stimulus.push((t, EventOccurrence::pure(wheel)));
        // Speed up gradually until the pulse period bottoms out.
        if period > params.pulse_period / 2 && t.is_multiple_of(10 * params.sample_period) {
            period -= 1;
        }
        t += period;
    }
    for s in 1..=params.num_samples as u64 {
        stimulus.push((s * params.sample_period, EventOccurrence::pure(sample)));
    }
    stimulus.sort_by_key(|&(t, _)| t);

    Ok(SocDescription {
        name: "automotive-dashboard".into(),
        network,
        stimulus,
        priorities: vec![4, 1, 3, 2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_estimation::{capture_traces, CoSimConfig, CoSimulator};

    fn tiny() -> AutomotiveParams {
        AutomotiveParams {
            num_samples: 5,
            sample_period: 1_000,
            pulse_period: 150,
            target_speed: 30,
        }
    }

    #[test]
    fn degenerate_params_are_typed_errors() {
        use co_estimation::BuildEstimatorError;
        let empty = AutomotiveParams {
            num_samples: 0,
            ..tiny()
        };
        assert!(matches!(
            build(&empty),
            Err(BuildEstimatorError::EmptyWorkload(_))
        ));
        let no_period = AutomotiveParams {
            pulse_period: 0,
            ..tiny()
        };
        assert!(matches!(
            build(&no_period),
            Err(BuildEstimatorError::InvalidParams(_))
        ));
    }

    #[test]
    fn builds_with_all_processes() {
        let soc = build(&tiny()).expect("valid params");
        assert_eq!(soc.network.process_count(), 4);
        for name in ["speed_sensor", "odometer", "cruise", "display"] {
            assert!(soc.network.process_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn sensor_counts_pulses_per_window() {
        let soc = build(&tiny()).expect("valid params");
        let trace = capture_traces(&soc);
        let sensor = soc.network.process_by_name("speed_sensor").expect("exists");
        // Every SAMPLE firing emits a SPEED value = 4 × pulses in window.
        let speeds: Vec<i64> = trace
            .of_process(sensor)
            .flat_map(|f| f.execution.emitted.iter())
            .filter_map(|&(e, v)| {
                (soc.network.events()[e.0 as usize].name == "SPEED").then_some(v.expect("valued"))
            })
            .collect();
        assert_eq!(speeds.len(), 5);
        assert!(speeds.iter().all(|&s| s > 0 && s % 4 == 0));
    }

    #[test]
    fn cruise_reacts_to_every_speed_sample() {
        let soc = build(&tiny()).expect("valid params");
        let trace = capture_traces(&soc);
        let cruise = soc.network.process_by_name("cruise").expect("exists");
        assert_eq!(trace.firing_count(cruise), 5);
    }

    #[test]
    fn co_simulation_completes_with_energy() {
        let soc = build(&tiny()).expect("valid params");
        let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        let report = sim.run();
        assert!(report.total_energy_j() > 0.0);
        for name in ["speed_sensor", "odometer", "cruise", "display"] {
            assert!(
                report.process_energy_j(name) > 0.0,
                "{name} consumed energy"
            );
        }
    }
}
