//! The TCP/IP network-interface-card checksum subsystem of Fig. 5.
//!
//! Behavior (incoming-packet direction):
//!
//! * **create_pack** (SW on the SPARC) receives a packet from the IP
//!   layer (`PKT_IN`, valued with the length), stores its bytes in
//!   shared memory through the bus, computes the expected checksum into
//!   the packet header, and posts a descriptor to the packet queue
//!   (`PKT_READY`).
//! * **packet_queue** (HW, ASIC1) buffers up to four descriptors,
//!   handing one to `ip_check` on each `Q_POP`.
//! * **ip_check** (HW, ASIC1) overwrites the checksum-header bytes with
//!   zeros, kicks the checksum engine (`CHK_GO`), and on `CHK_SUM`
//!   compares the computed checksum against the transmitted one,
//!   flagging `PKT_OK`/`PKT_ERR`.
//! * **checksum** (HW, ASIC2) walks the packet body in shared memory
//!   through the arbiter, accumulating the 16-bit checksum.
//!
//! All packet-body traffic crosses the shared bus, so the DMA block size
//! and master priorities of the integration architecture shape both the
//! system energy and the timing — the knobs swept in Tables 1–2 and
//! Figures 6–7.

use cfsm::{
    BlockId, CfgBuilder, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt,
    Terminator, VarId,
};
use co_estimation::{BuildEstimatorError, SocDescription};
use detrand::Rng;

/// Shared-memory bytes per packet slot.
const SLOT_STRIDE: i64 = 0x400;
/// Header offset of the expected checksum.
const HDR_SUM: i64 = 8;
/// Offset of the first data byte.
const DATA_BASE: i64 = 16;
/// Word stride of data bytes.
const BYTE_STRIDE: i64 = 8;

/// Workload parameters for the TCP/IP subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpIpParams {
    /// Number of packets offered by the IP layer.
    pub num_packets: u32,
    /// Packet length range `[min, max]`, bytes.
    pub len_range: (u32, u32),
    /// Packet inter-arrival period, cycles.
    pub pkt_period: u64,
    /// RNG seed for packet lengths (reproducible workloads).
    pub seed: u64,
}

impl TcpIpParams {
    /// The workload used for the Table 1/2 sweeps. Packet lengths come
    /// from a small set of classes (as real protocol traffic does), so a
    /// few computation paths dominate — the empirical observation behind
    /// the caching technique (§4.2).
    pub fn table_defaults() -> Self {
        TcpIpParams {
            num_packets: 80,
            len_range: (16, 48),
            pkt_period: 6_000,
            seed: 0xDA7E_2000,
        }
    }

    /// The 3-packet workload of the Fig. 7 exploration (§5.3).
    pub fn fig7_defaults() -> Self {
        // Back-to-back packets keep several pipeline stages contending
        // for the bus simultaneously, so the arbitration priorities have
        // real timing (and hence energy) consequences.
        TcpIpParams {
            num_packets: 3,
            len_range: (24, 48),
            pkt_period: 1_200,
            seed: 0xDA7E_2000,
        }
    }
}

impl Default for TcpIpParams {
    fn default() -> Self {
        TcpIpParams::table_defaults()
    }
}

/// Adds a 4-way dispatch on `sel` to the builder. `make(arm)` produces
/// each arm's statements; all arms jump to the returned join block id,
/// which the caller must create immediately after this call returns.
fn four_way_dispatch(
    cb: &mut CfgBuilder,
    entry_stmts: Vec<Stmt>,
    sel: VarId,
    make: &dyn Fn(i64) -> Vec<Stmt>,
    next_id: u32,
) -> BlockId {
    // Precomputed layout, starting at `next_id`:
    let e = next_id;
    let t1 = e + 1;
    let t2 = e + 2;
    let a0 = e + 3;
    let a1 = e + 4;
    let a2 = e + 5;
    let a3 = e + 6;
    let join = e + 7;
    let id = cb.block(
        entry_stmts,
        Terminator::Branch {
            cond: Expr::eq(Expr::Var(sel), Expr::Const(0)),
            then_block: BlockId(a0),
            else_block: BlockId(t1),
        },
    );
    assert_eq!(id.0, e, "four_way_dispatch layout mismatch");
    cb.block(
        vec![],
        Terminator::Branch {
            cond: Expr::eq(Expr::Var(sel), Expr::Const(1)),
            then_block: BlockId(a1),
            else_block: BlockId(t2),
        },
    );
    cb.block(
        vec![],
        Terminator::Branch {
            cond: Expr::eq(Expr::Var(sel), Expr::Const(2)),
            then_block: BlockId(a2),
            else_block: BlockId(a3),
        },
    );
    for arm in 0..4 {
        cb.block(make(arm), Terminator::Goto(BlockId(join)));
    }
    BlockId(join)
}

/// Builds the TCP/IP NIC subsystem.
///
/// # Errors
///
/// Returns [`BuildEstimatorError::EmptyWorkload`] when the workload
/// offers no packets, and [`BuildEstimatorError::InvalidParams`] when
/// the length range falls outside `[4, 64]` or the inter-arrival
/// period is zero. Internal machine-construction bugs surface as [`BuildEstimatorError::Construction`].
pub fn build(params: &TcpIpParams) -> Result<SocDescription, BuildEstimatorError> {
    if params.num_packets == 0 {
        return Err(BuildEstimatorError::EmptyWorkload(
            "tcpip: num_packets must be at least 1".into(),
        ));
    }
    let (lo, hi) = params.len_range;
    if !(lo >= 4 && hi >= lo && hi <= 64) {
        return Err(BuildEstimatorError::InvalidParams(format!(
            "tcpip: packet length range [{lo}, {hi}] must lie within [4, 64]"
        )));
    }
    if params.pkt_period == 0 {
        return Err(BuildEstimatorError::InvalidParams(
            "tcpip: pkt_period must be non-zero".into(),
        ));
    }

    let mut nb = Network::builder();
    let pkt_in = nb.event(EventDef::valued("PKT_IN"));
    let pkt_ready = nb.event(EventDef::valued("PKT_READY"));
    let q_pop = nb.event(EventDef::pure("Q_POP"));
    let pkt_desc = nb.event(EventDef::valued("PKT_DESC"));
    let chk_go = nb.event(EventDef::valued("CHK_GO"));
    let chk_sum = nb.event(EventDef::valued("CHK_SUM"));
    let pkt_ok = nb.event(EventDef::pure("PKT_OK"));
    let pkt_err = nb.event(EventDef::pure("PKT_ERR"));

    // --- create_pack (SW) ------------------------------------------------
    let create_pack = {
        let mut b = Cfsm::builder("create_pack");
        let run = b.state("run");
        let slot = b.var("slot", 0);
        let len = b.var("len", 0);
        let i = b.var("i", 0);
        let byte = b.var("byte", 0);
        let sum = b.var("sum", 0);
        let base = b.var("base", 0);

        let mut cb = CfgBuilder::new();
        // entry: len = PKT_IN value; base = slot * SLOT_STRIDE;
        //        mem[base] = len; sum = 0; i = 2 (skip header bytes)
        cb.block(
            vec![
                Stmt::Assign {
                    var: len,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::EventValue(pkt_in),
                        Expr::Const(0x3F),
                    ),
                },
                Stmt::Assign {
                    var: base,
                    expr: Expr::bin(
                        cfsm::BinOp::Mul,
                        Expr::Var(slot),
                        Expr::Const(SLOT_STRIDE),
                    ),
                },
                Stmt::MemWrite {
                    addr: Expr::Var(base),
                    value: Expr::Var(len),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::Const(0),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::Const(0),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        // loop head
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::lt(Expr::Var(i), Expr::Var(len)),
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        );
        // body: write pseudo-random byte; fold into checksum only past
        // the 2 header bytes (which ip_check later zeroes).
        cb.block(
            vec![
                Stmt::Assign {
                    var: byte,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(
                            Expr::add(
                                Expr::bin(
                                    cfsm::BinOp::Mul,
                                    Expr::Var(slot),
                                    Expr::Const(13),
                                ),
                                Expr::bin(cfsm::BinOp::Mul, Expr::Var(i), Expr::Const(7)),
                            ),
                            Expr::Var(len),
                        ),
                        Expr::Const(0xFF),
                    ),
                },
                Stmt::MemWrite {
                    addr: Expr::add(
                        Expr::add(Expr::Var(base), Expr::Const(DATA_BASE)),
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(i), Expr::Const(BYTE_STRIDE)),
                    ),
                    value: Expr::Var(byte),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::add(
                        Expr::Var(sum),
                        Expr::bin(
                            cfsm::BinOp::Mul,
                            Expr::Var(byte),
                            Expr::bin(cfsm::BinOp::Ge, Expr::Var(i), Expr::Const(2)),
                        ),
                    ),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::bin(cfsm::BinOp::And, Expr::Var(sum), Expr::Const(0x7FFF)),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::add(Expr::Var(i), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        // exit: header checksum, descriptor, advance slot.
        cb.block(
            vec![
                Stmt::MemWrite {
                    addr: Expr::add(Expr::Var(base), Expr::Const(HDR_SUM)),
                    value: Expr::Var(sum),
                },
                Stmt::Emit {
                    event: pkt_ready,
                    value: Some(Expr::add(
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(slot), Expr::Const(256)),
                        Expr::Var(len),
                    )),
                },
                Stmt::Assign {
                    var: slot,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(Expr::Var(slot), Expr::Const(1)),
                        Expr::Const(3),
                    ),
                },
            ],
            Terminator::Return,
        );
        b.transition(
            run,
            vec![pkt_in],
            None,
            cb.finish().map_err(|e| crate::internal("create_pack body", e))?,
            run,
        );
        b.finish().map_err(|e| crate::internal("create_pack machine", e))?
    };

    // --- packet_queue (HW) -------------------------------------------------
    let packet_queue = {
        let mut b = Cfsm::builder("packet_queue");
        let run = b.state("run");
        let d0 = b.var("d0", 0);
        let d1 = b.var("d1", 0);
        let d2 = b.var("d2", 0);
        let d3 = b.var("d3", 0);
        let head = b.var("head", 0);
        let count = b.var("count", 0);
        let tail = b.var("tail", 0);
        let out = b.var("out", 0);
        let slots = [d0, d1, d2, d3];

        // t1: enqueue on PKT_READY (count < 4).
        let enqueue = {
            let mut cb = CfgBuilder::new();
            let join = four_way_dispatch(
                &mut cb,
                vec![Stmt::Assign {
                    var: tail,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(Expr::Var(head), Expr::Var(count)),
                        Expr::Const(3),
                    ),
                }],
                tail,
                &|arm| {
                    vec![Stmt::Assign {
                        var: slots[arm as usize],
                        expr: Expr::EventValue(pkt_ready),
                    }]
                },
                0,
            );
            let j = cb.block(
                vec![Stmt::Assign {
                    var: count,
                    expr: Expr::add(Expr::Var(count), Expr::Const(1)),
                }],
                Terminator::Return,
            );
            assert_eq!(j, join, "enqueue join block layout");
            cb.finish().map_err(|e| crate::internal("enqueue body", e))?
        };
        b.transition(
            run,
            vec![pkt_ready],
            Some(Expr::lt(Expr::Var(count), Expr::Const(4))),
            enqueue,
            run,
        );

        // t2: dequeue on Q_POP (count > 0).
        let dequeue = {
            let mut cb = CfgBuilder::new();
            let join = four_way_dispatch(
                &mut cb,
                vec![],
                head,
                &|arm| {
                    vec![Stmt::Assign {
                        var: out,
                        expr: Expr::Var(slots[arm as usize]),
                    }]
                },
                0,
            );
            let j = cb.block(
                vec![
                    Stmt::Assign {
                        var: head,
                        expr: Expr::bin(
                            cfsm::BinOp::And,
                            Expr::add(Expr::Var(head), Expr::Const(1)),
                            Expr::Const(3),
                        ),
                    },
                    Stmt::Assign {
                        var: count,
                        expr: Expr::sub(Expr::Var(count), Expr::Const(1)),
                    },
                    Stmt::Emit {
                        event: pkt_desc,
                        value: Some(Expr::Var(out)),
                    },
                ],
                Terminator::Return,
            );
            assert_eq!(j, join, "dequeue join block layout");
            cb.finish().map_err(|e| crate::internal("dequeue body", e))?
        };
        b.transition(
            run,
            vec![q_pop],
            Some(Expr::gt(Expr::Var(count), Expr::Const(0))),
            dequeue,
            run,
        );
        b.finish().map_err(|e| crate::internal("packet_queue machine", e))?
    };

    // --- ip_check (HW) -----------------------------------------------------
    let ip_check = {
        let mut b = Cfsm::builder("ip_check");
        let init = b.state("init");
        let run = b.state("run");
        let wait = b.state("wait");
        let desc = b.var("desc", 0);
        let base = b.var("base", 0);
        let expected = b.var("expected", 0);
        let errors = b.var("errors", 0);

        // init: first PKT_READY primes the pop loop.
        b.transition(
            init,
            vec![pkt_ready],
            None,
            cfsm::Cfg::straight_line(vec![Stmt::Emit {
                event: q_pop,
                value: None,
            }]),
            run,
        );
        // run: receive a descriptor, zero the checksum-header bytes, kick
        // the checksum engine.
        b.transition(
            run,
            vec![pkt_desc],
            None,
            cfsm::Cfg::straight_line(vec![
                Stmt::Assign {
                    var: desc,
                    expr: Expr::EventValue(pkt_desc),
                },
                Stmt::Assign {
                    var: base,
                    expr: Expr::bin(
                        cfsm::BinOp::Mul,
                        Expr::bin(cfsm::BinOp::Shr, Expr::Var(desc), Expr::Const(8)),
                        Expr::Const(SLOT_STRIDE),
                    ),
                },
                // Overwrite the two checksum-header bytes with 0s.
                Stmt::MemWrite {
                    addr: Expr::add(Expr::Var(base), Expr::Const(DATA_BASE)),
                    value: Expr::Const(0),
                },
                Stmt::MemWrite {
                    addr: Expr::add(
                        Expr::Var(base),
                        Expr::Const(DATA_BASE + BYTE_STRIDE),
                    ),
                    value: Expr::Const(0),
                },
                Stmt::Emit {
                    event: chk_go,
                    value: Some(Expr::Var(desc)),
                },
            ]),
            wait,
        );
        // wait: compare the engine's checksum with the transmitted one.
        {
            let mut cb = CfgBuilder::new();
            cb.block(
                vec![Stmt::MemRead {
                    var: expected,
                    addr: Expr::add(Expr::Var(base), Expr::Const(HDR_SUM)),
                }],
                Terminator::Branch {
                    cond: Expr::eq(Expr::EventValue(chk_sum), Expr::Var(expected)),
                    then_block: BlockId(1),
                    else_block: BlockId(2),
                },
            );
            cb.block(
                vec![Stmt::Emit {
                    event: pkt_ok,
                    value: None,
                }],
                Terminator::Goto(BlockId(3)),
            );
            cb.block(
                vec![
                    Stmt::Assign {
                        var: errors,
                        expr: Expr::add(Expr::Var(errors), Expr::Const(1)),
                    },
                    Stmt::Emit {
                        event: pkt_err,
                        value: None,
                    },
                ],
                Terminator::Goto(BlockId(3)),
            );
            cb.block(
                vec![Stmt::Emit {
                    event: q_pop,
                    value: None,
                }],
                Terminator::Return,
            );
            b.transition(
                wait,
                vec![chk_sum],
                None,
                cb.finish().map_err(|e| crate::internal("ip_check wait body", e))?,
                run,
            );
        }
        b.finish().map_err(|e| crate::internal("ip_check machine", e))?
    };

    // --- checksum (HW) -------------------------------------------------------
    let checksum = {
        let mut b = Cfsm::builder("checksum");
        let run = b.state("run");
        let len = b.var("len", 0);
        let base = b.var("base", 0);
        let i = b.var("i", 0);
        let byte = b.var("byte", 0);
        let sum = b.var("sum", 0);

        let mut cb = CfgBuilder::new();
        cb.block(
            vec![
                Stmt::Assign {
                    var: len,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::EventValue(chk_go),
                        Expr::Const(0xFF),
                    ),
                },
                Stmt::Assign {
                    var: base,
                    expr: Expr::bin(
                        cfsm::BinOp::Mul,
                        Expr::bin(cfsm::BinOp::Shr, Expr::EventValue(chk_go), Expr::Const(8)),
                        Expr::Const(SLOT_STRIDE),
                    ),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::Const(0),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::Const(0),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::lt(Expr::Var(i), Expr::Var(len)),
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        );
        cb.block(
            vec![
                Stmt::MemRead {
                    var: byte,
                    addr: Expr::add(
                        Expr::add(Expr::Var(base), Expr::Const(DATA_BASE)),
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(i), Expr::Const(BYTE_STRIDE)),
                    ),
                },
                Stmt::Assign {
                    var: sum,
                    expr: Expr::bin(
                        cfsm::BinOp::And,
                        Expr::add(Expr::Var(sum), Expr::Var(byte)),
                        Expr::Const(0x7FFF),
                    ),
                },
                Stmt::Assign {
                    var: i,
                    expr: Expr::add(Expr::Var(i), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(1)),
        );
        cb.block(
            vec![Stmt::Emit {
                event: chk_sum,
                value: Some(Expr::Var(sum)),
            }],
            Terminator::Return,
        );
        b.transition(
            run,
            vec![chk_go],
            None,
            cb.finish().map_err(|e| crate::internal("checksum body", e))?,
            run,
        );
        b.finish().map_err(|e| crate::internal("checksum machine", e))?
    };

    nb.process(create_pack, Implementation::Sw);
    nb.process(packet_queue, Implementation::Hw);
    nb.process(ip_check, Implementation::Hw);
    nb.process(checksum, Implementation::Hw);
    let network = nb.finish().map_err(|e| crate::internal("network", e))?;

    // Stimulus: packets with reproducible pseudo-random lengths drawn
    // from a handful of size classes (protocol traffic is highly modal).
    let classes: Vec<u32> = {
        let span = hi - lo;
        vec![lo, lo + span / 2, hi]
    };
    let mut rng = Rng::seed_from_u64(params.seed);
    let stimulus: Vec<(u64, EventOccurrence)> = (0..params.num_packets as u64)
        .map(|k| {
            let len = *rng.choose(&classes) as i64;
            ((k + 1) * params.pkt_period, EventOccurrence::valued(pkt_in, len))
        })
        .collect();

    Ok(SocDescription {
        name: "tcpip-nic".into(),
        network,
        stimulus,
        // Paper's best ordering: Create_Pack > IP_Check > Checksum; the
        // queue shares ASIC1 with ip_check.
        priorities: vec![3, 2, 2, 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_estimation::{capture_traces, CoSimConfig, CoSimulator};

    fn tiny() -> TcpIpParams {
        TcpIpParams {
            num_packets: 3,
            len_range: (8, 16),
            pkt_period: 5_000,
            seed: 7,
        }
    }

    #[test]
    fn builds_with_all_processes() {
        let soc = build(&tiny()).expect("valid params");
        assert_eq!(soc.network.process_count(), 4);
        for name in ["create_pack", "packet_queue", "ip_check", "checksum"] {
            assert!(soc.network.process_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn behavioral_pipeline_processes_every_packet() {
        let soc = build(&tiny()).expect("valid params");
        let trace = capture_traces(&soc);
        let chk = soc.network.process_by_name("checksum").expect("exists");
        let ipc = soc.network.process_by_name("ip_check").expect("exists");
        assert_eq!(trace.firing_count(chk), 3, "one checksum per packet");
        // ip_check: init + (run + wait) per packet.
        assert_eq!(trace.firing_count(ipc), 1 + 2 * 3);
    }

    #[test]
    fn checksums_always_match() {
        // create_pack computes the same checksum over bytes ≥ 2 that the
        // engine computes after ip_check zeroes bytes 0 and 1, so every
        // packet must flag PKT_OK (errors counter stays 0).
        let soc = build(&tiny()).expect("valid params");
        let trace = capture_traces(&soc);
        let ipc = soc.network.process_by_name("ip_check").expect("exists");
        let errors: i64 = trace
            .of_process(ipc)
            .flat_map(|f| f.execution.emitted.iter())
            .filter(|(e, _)| soc.network.events()[e.0 as usize].name == "PKT_ERR")
            .count() as i64;
        assert_eq!(errors, 0, "no checksum mismatches expected");
        let oks = trace
            .of_process(ipc)
            .flat_map(|f| f.execution.emitted.iter())
            .filter(|(e, _)| soc.network.events()[e.0 as usize].name == "PKT_OK")
            .count();
        assert_eq!(oks, 3);
    }

    #[test]
    fn co_simulation_moves_packet_bytes_over_the_bus() {
        let soc = build(&tiny()).expect("valid params");
        let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        let report = sim.run();
        assert!(report.bus.words > 0, "packet bytes crossed the bus");
        assert!(report.bus_energy_j > 0.0);
        assert!(report.total_energy_j() > 0.0);
        assert!(report.process_energy_j("create_pack") > 0.0);
        assert!(report.process_energy_j("checksum") > 0.0);
    }

    #[test]
    fn larger_dma_reduces_system_energy() {
        let cfg = CoSimConfig::date2000_defaults();
        let e2 = CoSimulator::new(build(&tiny()).expect("valid params"), cfg.with_dma_block_size(2))
            .expect("builds")
            .run()
            .total_energy_j();
        let e64 = CoSimulator::new(build(&tiny()).expect("valid params"), cfg.with_dma_block_size(64))
            .expect("builds")
            .run()
            .total_energy_j();
        assert!(
            e2 > e64,
            "DMA 2 ({e2:.3e} J) should cost more than DMA 64 ({e64:.3e} J)"
        );
    }

    #[test]
    fn degenerate_params_are_typed_errors() {
        use co_estimation::BuildEstimatorError;
        let zero = TcpIpParams {
            num_packets: 0,
            ..tiny()
        };
        assert!(matches!(
            build(&zero),
            Err(BuildEstimatorError::EmptyWorkload(_))
        ));
        let bad_range = TcpIpParams {
            len_range: (2, 128),
            ..tiny()
        };
        assert!(matches!(
            build(&bad_range),
            Err(BuildEstimatorError::InvalidParams(_))
        ));
        let no_period = TcpIpParams {
            pkt_period: 0,
            ..tiny()
        };
        assert!(matches!(
            build(&no_period),
            Err(BuildEstimatorError::InvalidParams(_))
        ));
    }

    #[test]
    fn workload_is_reproducible() {
        let a = build(&tiny()).expect("valid params");
        let b = build(&tiny()).expect("valid params");
        assert_eq!(a.stimulus, b.stimulus);
    }
}
