//! A minimal, dependency-free JSON parser — just enough to round-trip
//! validate the crate's own emitted artifacts (Perfetto traces, bench
//! JSON, calibration NDJSON) in tests and CI.
//!
//! The workspace is deliberately dependency-free, so `serde_json` is
//! not available; this recursive-descent parser covers the full JSON
//! grammar (RFC 8259) with a recursion-depth cap and byte-offset error
//! reporting. It is a *validator-grade* parser: numbers are held as
//! `f64`, object key order is preserved, and duplicate keys are kept.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order (duplicates preserved).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

/// Maximum nesting depth (arrays/objects) — a stack-overflow guard.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low one.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                        }
                        c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0b1100_0000) == 0b1000_0000
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5e3, true, null, "x\ny"], "b": {}}"#)
            .expect("valid document");
        let a = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2], JsonValue::Bool(true));
        assert_eq!(a[3], JsonValue::Null);
        assert_eq!(a[4].as_str(), Some("x\ny"));
        assert_eq!(v.get("b"), Some(&JsonValue::Object(vec![])));
    }

    #[test]
    fn resolves_unicode_escapes_and_surrogates() {
        let v = parse(r#""\u00e9 \ud83d\ude00""#).expect("valid string");
        assert_eq!(v.as_str(), Some("é 😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "01", "1.", "1e", "\"\\q\"", "tru",
            "[1] extra", "\"\\ud800\"", "{\"a\":}",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            let _ = err.to_string();
        }
    }

    #[test]
    fn depth_cap_rejects_degenerate_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).expect("valid");
        match v {
            JsonValue::Object(entries) => {
                assert_eq!(entries[0].0, "z");
                assert_eq!(entries[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }
}
