//! Chrome Trace Event / Perfetto JSON export of a power timeline.
//!
//! The emitted document is the classic `{"traceEvents": [...]}` form,
//! loadable in `ui.perfetto.dev` and `chrome://tracing`:
//!
//! * **Counter tracks** (`ph: "C"`) — one per ledger component plus a
//!   system total, sampled at every window boundary with the window's
//!   average power in watts.
//! * **Instant events** (`ph: "i"`) — one per power-state transition
//!   (`from`/`to` in `args`) and one per fault/watchdog anomaly.
//! * **Span events** (`ph: "X"`) — the profiler's aggregate per-kind
//!   totals, laid end to end on a dedicated `profiler (aggregate)`
//!   track. The [`crate::ProfileReport`] keeps count/total/mean/max
//!   per span kind rather than individual timestamped spans, so this
//!   track shows *aggregate wall time per kind*, not individual spans;
//!   `count`, `mean_ns` and `max_ns` ride along in `args`.
//!
//! Timestamps (`ts`) are microseconds, converted from cycles via the
//! timeline's master clock; profiler spans are wall-clock and share
//! the axis only nominally (their track is labeled as aggregate).

use crate::json_escape;
use crate::timeline::TimelineReport;
use crate::{ProfileReport, SpanKind};

/// The `pid` all tracks share.
const PID: u32 = 1;
/// The `tid` of the counter/instant simulation track.
const SIM_TID: u32 = 1;
/// The `tid` of the aggregate profiler track.
const PROFILE_TID: u32 = 2;

/// Renders the timeline (and, optionally, the profiler aggregates) as
/// a Chrome Trace Event JSON document. The result round-trips through
/// [`crate::json::parse`] and loads in Perfetto.
pub fn write_perfetto(t: &TimelineReport, profile: Option<&ProfileReport>) -> String {
    let us_per_cycle = 1e6 / t.clock_hz;
    let ts = |cycle: u64| cycle as f64 * us_per_cycle;
    let dt = t.window_seconds();
    let mut events: Vec<String> = Vec::new();

    // Track naming metadata.
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{SIM_TID},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"power timeline\"}}}}"
    ));
    if profile.is_some() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{PROFILE_TID},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"profiler (aggregate)\"}}}}"
        ));
    }

    // Counter tracks: per-component and system power per window.
    let system = t.system_window_energy_j();
    for (w, &sys_e) in system.iter().enumerate() {
        let at = ts(w as u64 * t.window_cycles);
        for c in &t.components {
            let p = c.window_energy_j.get(w).copied().unwrap_or(0.0) / dt;
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{SIM_TID},\"name\":\"power_w:{}\",\
                 \"ts\":{at:.3},\"args\":{{\"power_w\":{p:e}}}}}",
                json_escape(&c.name)
            ));
        }
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{SIM_TID},\"name\":\"power_w:system\",\
             \"ts\":{at:.3},\"args\":{{\"power_w\":{:e}}}}}",
            sys_e / dt
        ));
    }

    // Instant events: power-state transitions and anomalies.
    for tr in &t.transitions {
        let name = t
            .components
            .get(tr.process as usize)
            .map_or_else(|| format!("proc{}", tr.process), |c| c.name.clone());
        events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID},\"tid\":{SIM_TID},\
             \"name\":\"{}: {} -> {}\",\"ts\":{:.3},\
             \"args\":{{\"process\":{},\"from\":\"{}\",\"to\":\"{}\"}}}}",
            json_escape(&name),
            tr.from,
            tr.to,
            ts(tr.at),
            tr.process,
            tr.from,
            tr.to
        ));
    }
    for a in &t.anomalies {
        events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID},\"tid\":{SIM_TID},\
             \"name\":\"{}\",\"ts\":{:.3},\"args\":{{}}}}",
            json_escape(&a.label),
            ts(a.at)
        ));
    }

    // Aggregate profiler spans, laid end to end.
    if let Some(p) = profile {
        let mut cursor = 0.0f64;
        for kind in SpanKind::ALL {
            let s = p.stats(kind);
            if s.count == 0 {
                continue;
            }
            let dur_us = s.total_ns as f64 / 1e3;
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{PROFILE_TID},\"name\":\"{}\",\
                 \"ts\":{cursor:.3},\"dur\":{dur_us:.3},\
                 \"args\":{{\"count\":{},\"mean_ns\":{:.1},\"max_ns\":{}}}}}",
                kind.as_str(),
                s.count,
                s.mean_ns(),
                s.max_ns
            ));
            cursor += dur_us;
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};
    use crate::timeline::{PowerTimelineSink, TimelineConfig};
    use crate::{TraceRecord, TraceSink};
    use std::time::Duration;

    fn sample_report() -> TimelineReport {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(100, 1_000.0));
        sink.record(&TraceRecord::EnergySample {
            component: 0,
            start: 10,
            end: 20,
            energy_j: 2e-9,
            provenance: "measured_iss",
        });
        sink.record(&TraceRecord::PowerTransition {
            at: 150,
            process: 0,
            from: "active",
            to: "power_gated",
        });
        sink.record(&TraceRecord::FaultInjected {
            at: 170,
            description: "bus \"stall\"".into(),
        });
        sink.report(&["cpu \"x\"".into()], 200)
    }

    #[test]
    fn perfetto_round_trips_through_the_json_parser() {
        let mut profile = ProfileReport::new();
        profile.record(SpanKind::MasterRun, Duration::from_micros(120));
        let text = write_perfetto(&sample_report(), Some(&profile));
        let doc = json::parse(&text).expect("emitted JSON parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert!(events.len() >= 6, "{}", events.len());
        // Every event has a phase; counter events carry numeric power.
        let mut counters = 0;
        let mut instants = 0;
        let mut spans = 0;
        for e in events {
            match e.get("ph").and_then(JsonValue::as_str) {
                Some("C") => {
                    counters += 1;
                    let p = e
                        .get("args")
                        .and_then(|a| a.get("power_w"))
                        .and_then(JsonValue::as_f64)
                        .expect("counter carries power_w");
                    assert!(p.is_finite());
                }
                Some("i") => instants += 1,
                Some("X") => spans += 1,
                Some("M") => {}
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert_eq!(counters, 4, "2 windows x (1 comp + system)");
        assert_eq!(instants, 2, "1 transition + 1 anomaly");
        assert_eq!(spans, 1, "1 profiled kind");
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let text = write_perfetto(&sample_report(), None);
        json::parse(&text).expect("quotes in names are escaped");
        assert!(text.contains("cpu \\\"x\\\""));
        assert!(text.contains("bus \\\"stall\\\""));
    }
}
