//! VCD (Value Change Dump, IEEE 1364) export of a power timeline,
//! viewable in GTKWave — plus the minimal checker CI uses to validate
//! emitted files.
//!
//! # Schema
//!
//! * One `real` signal per ledger component (`power_<name>_w`): the
//!   component's average power over each timeline window, updated at
//!   window boundaries.
//! * One `real` system-total signal (`power_system_w`).
//! * One 2-bit `reg` per process with observed power-state activity
//!   (`state_<name>`), encoded `b00` = active, `b01` = dvfs, `b10` =
//!   clock_gated, `b11` = power_gated (the legend is embedded as a
//!   `$comment`). Enum-style string signals are a VCD extension not
//!   every viewer accepts; a 2-bit vector is universally parseable.
//! * Timescale is `1 ns`; cycle timestamps are scaled by the master
//!   clock (e.g. 40 ns per cycle at 25 MHz).

use crate::timeline::TimelineReport;

/// Power-state encoding legend, embedded in the header `$comment`.
const STATE_BITS: [(&str, &str); 4] = [
    ("active", "b00"),
    ("dvfs", "b01"),
    ("clock_gated", "b10"),
    ("power_gated", "b11"),
];

fn state_bits(state: &str) -> &'static str {
    STATE_BITS
        .iter()
        .find(|(s, _)| *s == state)
        .map_or("bxx", |(_, b)| b)
}

/// A short printable VCD identifier for signal index `i` (base-94 over
/// `!`..`~`).
fn vcd_id(mut i: usize) -> String {
    let mut id = String::new();
    loop {
        id.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            return id;
        }
    }
}

/// Restricts a component name to identifier-safe characters.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the timeline as a VCD document (component power as real
/// signals, power states as 2-bit regs). The result parses with
/// [`check_vcd`] and loads in GTKWave.
pub fn write_vcd(t: &TimelineReport) -> String {
    let ns_per_cycle = (1e9 / t.clock_hz).max(1.0);
    let stamp = |cycle: u64| (cycle as f64 * ns_per_cycle).round() as u64;
    let mut out = String::new();
    out.push_str("$version soctrace power timeline $end\n");
    out.push_str(&format!(
        "$comment clock {} Hz, {} cycles per window; power-state encoding: \
         b00=active b01=dvfs b10=clock_gated b11=power_gated $end\n",
        t.clock_hz, t.window_cycles
    ));
    out.push_str("$timescale 1 ns $end\n");
    out.push_str("$scope module power $end\n");

    // Signal table: components, the system total, then state regs for
    // every process that has transition activity.
    let mut next_id = 0usize;
    let mut fresh = || {
        let id = vcd_id(next_id);
        next_id += 1;
        id
    };
    let comp_ids: Vec<String> = t
        .components
        .iter()
        .map(|c| {
            let id = fresh();
            out.push_str(&format!(
                "$var real 64 {id} power_{}_w $end\n",
                sanitize(&c.name)
            ));
            id
        })
        .collect();
    let system_id = fresh();
    out.push_str(&format!("$var real 64 {system_id} power_system_w $end\n"));
    let mut state_procs: Vec<u32> = t.transitions.iter().map(|tr| tr.process).collect();
    state_procs.sort_unstable();
    state_procs.dedup();
    let state_ids: Vec<(u32, String)> = state_procs
        .iter()
        .map(|&p| {
            let id = fresh();
            let name = t
                .components
                .get(p as usize)
                .map_or_else(|| format!("proc{p}"), |c| sanitize(&c.name));
            out.push_str(&format!("$var reg 2 {id} state_{name} $end\n"));
            (p, id)
        })
        .collect();
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Merge window-boundary power updates and state changes into one
    // time-ordered change stream. Power values are emitted only when
    // they change, so idle stretches stay compact.
    let dt = t.window_seconds();
    let system = t.system_window_energy_j();
    let windows = system.len();
    #[derive(PartialEq)]
    enum Change {
        Real(usize, f64),   // signal table index → watts
        State(usize, &'static str), // state_ids index → bits
    }
    let mut events: Vec<(u64, Change)> = Vec::new();
    let mut last: Vec<Option<u64>> = vec![None; t.components.len() + 1];
    for (w, sys_e) in system.iter().enumerate().take(windows) {
        let at = w as u64 * t.window_cycles;
        for (ci, c) in t.components.iter().enumerate() {
            let p = c.window_energy_j.get(w).copied().unwrap_or(0.0) / dt;
            if last[ci] != Some(p.to_bits()) {
                events.push((at, Change::Real(ci, p)));
                last[ci] = Some(p.to_bits());
            }
        }
        let p = sys_e / dt;
        let slot = t.components.len();
        if last[slot] != Some(p.to_bits()) {
            events.push((at, Change::Real(slot, p)));
            last[slot] = Some(p.to_bits());
        }
    }
    for tr in &t.transitions {
        if let Some(si) = state_ids.iter().position(|(p, _)| *p == tr.process) {
            events.push((tr.at, Change::State(si, state_bits(tr.to))));
        }
    }
    events.sort_by_key(|(at, _)| *at);

    // Initial dump: every signal gets a value at #0 (states start at
    // their pre-first-transition value).
    out.push_str("#0\n$dumpvars\n");
    for (ci, id) in comp_ids.iter().enumerate() {
        let p = t.components[ci]
            .window_energy_j
            .first()
            .copied()
            .unwrap_or(0.0)
            / dt;
        out.push_str(&format!("r{p:e} {id}\n"));
    }
    out.push_str(&format!(
        "r{:e} {system_id}\n",
        system.first().copied().unwrap_or(0.0) / dt
    ));
    for (p, id) in &state_ids {
        let initial = t
            .transitions
            .iter()
            .find(|tr| tr.process == *p)
            .map_or("b00", |tr| state_bits(tr.from));
        out.push_str(&format!("{initial} {id}\n"));
    }
    out.push_str("$end\n");

    let mut cursor = 0u64;
    for (at, change) in events {
        if at > cursor {
            out.push_str(&format!("#{}\n", stamp(at)));
            cursor = at;
        } else if at == 0 {
            // Initial values already dumped at #0.
            if matches!(change, Change::Real(_, _)) {
                continue;
            }
        }
        match change {
            Change::Real(ci, p) => {
                let id = comp_ids.get(ci).unwrap_or(&system_id);
                out.push_str(&format!("r{p:e} {id}\n"));
            }
            Change::State(si, bits) => {
                if let Some((_, id)) = state_ids.get(si) {
                    out.push_str(&format!("{bits} {id}\n"));
                }
            }
        }
    }
    out.push_str(&format!("#{}\n", stamp(t.end_cycle)));
    out
}

/// Summary of a validated VCD document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcdSummary {
    /// Declared signals.
    pub signals: usize,
    /// Value changes (initial dump included).
    pub changes: usize,
    /// Final timestamp.
    pub end_time: u64,
}

/// Validates a VCD document: well-formed header sections, every value
/// change references a declared identifier, real values parse, vector
/// values use valid bits, and timestamps never decrease.
///
/// This is a *checker*, not a full simulator-grade parser: it covers
/// the subset [`write_vcd`] emits plus ordinary single-bit changes, so
/// CI can prove emitted artifacts stay loadable.
///
/// # Errors
///
/// A line-prefixed description of the first violation.
pub fn check_vcd(text: &str) -> Result<VcdSummary, String> {
    let mut ids: Vec<String> = Vec::new();
    let mut in_definitions = true;
    let mut in_comment = false;
    let mut time = 0u64;
    let mut saw_time = false;
    let mut changes = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if in_comment {
            if line.ends_with("$end") {
                in_comment = false;
            }
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(first) = tokens.next() else { continue };
        match first {
            "$version" | "$comment" | "$date" | "$timescale" => {
                if !line.ends_with("$end") {
                    in_comment = true; // multi-line section
                }
            }
            "$scope" | "$upscope" => {
                if !in_definitions {
                    return Err(format!("line {ln}: scope section after definitions"));
                }
            }
            "$var" => {
                if !in_definitions {
                    return Err(format!("line {ln}: $var after $enddefinitions"));
                }
                // $var <type> <width> <id> <name...> $end
                let ty = tokens.next().ok_or(format!("line {ln}: $var missing type"))?;
                let width = tokens.next().ok_or(format!("line {ln}: $var missing width"))?;
                let id = tokens.next().ok_or(format!("line {ln}: $var missing id"))?;
                let rest: Vec<&str> = tokens.collect();
                if width.parse::<u32>().is_err() {
                    return Err(format!("line {ln}: bad $var width `{width}`"));
                }
                if ty.is_empty() || rest.last() != Some(&"$end") || rest.len() < 2 {
                    return Err(format!("line {ln}: malformed $var"));
                }
                if ids.iter().any(|existing| existing == id) {
                    return Err(format!("line {ln}: duplicate identifier `{id}`"));
                }
                ids.push(id.to_string());
            }
            "$enddefinitions" => in_definitions = false,
            "$dumpvars" | "$end" => {}
            t if t.starts_with('#') => {
                if in_definitions {
                    return Err(format!("line {ln}: timestamp before $enddefinitions"));
                }
                let stamp: u64 = t[1..]
                    .parse()
                    .map_err(|_| format!("line {ln}: bad timestamp `{t}`"))?;
                if saw_time && stamp < time {
                    return Err(format!(
                        "line {ln}: timestamp {stamp} goes backwards (was {time})"
                    ));
                }
                time = stamp;
                saw_time = true;
            }
            t if t.starts_with('r') => {
                if in_definitions {
                    return Err(format!("line {ln}: value change before $enddefinitions"));
                }
                t[1..]
                    .parse::<f64>()
                    .map_err(|_| format!("line {ln}: bad real value `{t}`"))?;
                let id = tokens.next().ok_or(format!("line {ln}: real change missing id"))?;
                if !ids.iter().any(|existing| existing == id) {
                    return Err(format!("line {ln}: undeclared identifier `{id}`"));
                }
                changes += 1;
            }
            t if t.starts_with('b') || t.starts_with('B') => {
                if in_definitions {
                    return Err(format!("line {ln}: value change before $enddefinitions"));
                }
                if !t[1..].chars().all(|c| matches!(c, '0' | '1' | 'x' | 'z' | 'X' | 'Z')) {
                    return Err(format!("line {ln}: bad vector value `{t}`"));
                }
                let id = tokens.next().ok_or(format!("line {ln}: vector change missing id"))?;
                if !ids.iter().any(|existing| existing == id) {
                    return Err(format!("line {ln}: undeclared identifier `{id}`"));
                }
                changes += 1;
            }
            t if t.starts_with(['0', '1', 'x', 'z', 'X', 'Z']) && t.len() >= 2 => {
                // Scalar change: value glued to the identifier.
                if in_definitions {
                    return Err(format!("line {ln}: value change before $enddefinitions"));
                }
                let id = &t[1..];
                if !ids.iter().any(|existing| existing == id) {
                    return Err(format!("line {ln}: undeclared identifier `{id}`"));
                }
                changes += 1;
            }
            t => return Err(format!("line {ln}: unrecognized token `{t}`")),
        }
    }
    if in_definitions {
        return Err("missing $enddefinitions".to_string());
    }
    if ids.is_empty() {
        return Err("no signals declared".to_string());
    }
    Ok(VcdSummary {
        signals: ids.len(),
        changes,
        end_time: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{PowerTimelineSink, TimelineConfig};
    use crate::{TraceRecord, TraceSink};

    fn sample_report() -> TimelineReport {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(100, 1_000.0));
        for (at, e) in [(0, 1e-9), (120, 3e-9), (250, 2e-9)] {
            sink.record(&TraceRecord::EnergySample {
                component: 0,
                start: at,
                end: at + 10,
                energy_j: e,
                provenance: "measured_iss",
            });
        }
        sink.record(&TraceRecord::EnergySample {
            component: 1,
            start: 50,
            end: 60,
            energy_j: 5e-10,
            provenance: "bus_model",
        });
        sink.record(&TraceRecord::PowerTransition {
            at: 150,
            process: 0,
            from: "active",
            to: "clock_gated",
        });
        sink.record(&TraceRecord::PowerTransition {
            at: 240,
            process: 0,
            from: "clock_gated",
            to: "active",
        });
        sink.report(&["cpu".into(), "bus".into()], 300)
    }

    #[test]
    fn written_vcd_passes_the_checker() {
        let text = write_vcd(&sample_report());
        let summary = check_vcd(&text).expect("emitted VCD is valid");
        // cpu + bus + system + one state reg.
        assert_eq!(summary.signals, 4);
        assert!(summary.changes >= 6, "{summary:?}\n{text}");
        // 1 kHz clock → 1 ms per cycle → 300 cycles end at 3e8 ns.
        assert_eq!(summary.end_time, 300_000_000);
        assert!(text.contains("power_cpu_w"), "{text}");
        assert!(text.contains("state_cpu"), "{text}");
        assert!(text.contains("b10"), "gated state encoded:\n{text}");
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        for (bad, why) in [
            ("$enddefinitions $end\n#0\n", "no signals"),
            ("$var real 64 ! p $end\n", "missing enddefinitions"),
            (
                "$var real 64 ! p $end\n$enddefinitions $end\n#5\n#3\n",
                "backwards time",
            ),
            (
                "$var real 64 ! p $end\n$enddefinitions $end\nrnope !\n",
                "bad real",
            ),
            (
                "$var real 64 ! p $end\n$enddefinitions $end\nr1.0 ?\n",
                "undeclared id",
            ),
            (
                "$var real 64 ! p $end\n$var real 64 ! q $end\n$enddefinitions $end\n",
                "duplicate id",
            ),
            (
                "$var real 64 ! p $end\n$enddefinitions $end\nb012 !\n",
                "bad vector bits",
            ),
        ] {
            assert!(check_vcd(bad).is_err(), "{why}");
        }
    }

    #[test]
    fn vcd_ids_stay_printable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id}");
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn empty_timeline_still_emits_valid_vcd() {
        let sink = PowerTimelineSink::new(TimelineConfig::new(100, 1_000.0));
        let text = write_vcd(&sink.report(&[], 0));
        let summary = check_vcd(&text).expect("valid");
        assert_eq!(summary.signals, 1); // system power only
    }
}
