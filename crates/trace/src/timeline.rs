//! Time-resolved power telemetry: the windowed power-timeline sink.
//!
//! [`PowerTimelineSink`] listens to the ordinary [`TraceRecord`] stream
//! and bins every ledger charge ([`TraceRecord::EnergySample`]) into
//! fixed-width cycle windows, producing per-component and
//! per-provenance power waveforms plus per-window activity counters
//! (firings, gate evaluations, bus words, i-cache fetches) — the raw
//! material for peak/transient analysis, the VCD and Perfetto
//! exporters ([`crate::vcd`], [`crate::perfetto`]), and the
//! counter↔energy calibration dataset.
//!
//! # The float-order contract
//!
//! Window bucket sums are *reassociated* — charges are grouped by
//! window before adding — so they cannot be compared bit-for-bit
//! against the simulator's ledger (float addition is not associative,
//! and lazily settled leakage spans arrive out of window order). The
//! sink therefore keeps **two** books per component:
//!
//! * an arrival-order mirror total (`+=` of the very same `f64`s, in
//!   the very same order, as the ledger's own accumulator) — this one
//!   is bit-exact against the report and is what
//!   [`ComponentWaveform::total_j`] exposes;
//! * the per-window buckets, an exact partition of the same charges
//!   whose sum may differ from the mirror only by reassociation noise
//!   (≤ 1e-12 relative in practice — the same contract as the
//!   provenance bucket partition).
//!
//! The mirror is also what makes the timeline *window-width
//! invariant*: totals are independent of the window size by
//! construction, only the binning changes.
//!
//! Charges are binned by their **start cycle**: a charge spanning a
//! window boundary books into the window its first cycle falls in,
//! keeping every joule in exactly one bucket (spreading would break
//! the exact-partition property).

use std::collections::BTreeMap;

use crate::{TraceRecord, TraceSink};

/// Configuration of a [`PowerTimelineSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineConfig {
    /// Window width, cycles. Clamped to ≥ 1 at construction.
    pub window_cycles: u64,
    /// Master clock, hertz — converts window energies to power.
    /// Clamped to a positive finite value at construction.
    pub clock_hz: f64,
}

impl TimelineConfig {
    /// A validated configuration: `window_cycles` is clamped to ≥ 1
    /// and a non-finite or non-positive clock falls back to 1 Hz (the
    /// sink must never panic — it lives behind a trace attach point).
    pub fn new(window_cycles: u64, clock_hz: f64) -> Self {
        TimelineConfig {
            window_cycles: window_cycles.max(1),
            clock_hz: if clock_hz.is_finite() && clock_hz > 0.0 {
                clock_hz
            } else {
                1.0
            },
        }
    }
}

/// Per-window activity counters — the `MetricsSink`-style aggregates,
/// resolved in time. One row of the calibration dataset (ROADMAP item
/// 5a) is one window's counters paired with its energies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Firings started in the window.
    pub firings: u64,
    /// Gate-kernel work units (kernel-dependent, see
    /// [`TraceRecord::GateActivity`]).
    pub gate_evals: u64,
    /// Committed gate output changes (kernel-invariant).
    pub gate_events: u64,
    /// Bus words granted in blocks starting in the window.
    pub bus_words: u64,
    /// Instruction fetches observed.
    pub icache_fetches: u64,
    /// Instruction-cache misses observed.
    pub icache_misses: u64,
}

impl WindowCounters {
    fn add(&mut self, other: &WindowCounters) {
        self.firings += other.firings;
        self.gate_evals += other.gate_evals;
        self.gate_events += other.gate_events;
        self.bus_words += other.bus_words;
        self.icache_fetches += other.icache_fetches;
        self.icache_misses += other.icache_misses;
    }
}

/// One observed power-state change of a process component (including
/// the synthetic cycle-0 record the master emits for components whose
/// base state is not `active`, which makes the stream self-describing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateChange {
    /// Transition time, cycles.
    pub at: u64,
    /// Process (= component) index.
    pub process: u32,
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
}

/// A timestamped anomaly mark (injected fault or watchdog trip) for
/// the exporters' instant-event tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyMark {
    /// Event time, cycles.
    pub at: u64,
    /// Human-readable label.
    pub label: String,
}

/// Per-component timeline state: the arrival-order mirror total and
/// the window buckets.
#[derive(Debug, Clone, Default)]
struct CompTimeline {
    /// Arrival-order mirror of the ledger accumulator (bit-exact).
    total_j: f64,
    /// Charges observed.
    records: u64,
    /// Window index → bucketed energy (reassociated partition).
    windows: BTreeMap<u64, f64>,
}

/// The windowed power-timeline sink. Attach it through the master's
/// ordinary trace seam; like every sink it is strictly observational —
/// golden reports stay bit-identical whether it is attached or not.
#[derive(Debug, Clone)]
pub struct PowerTimelineSink {
    config: TimelineConfig,
    comps: Vec<CompTimeline>,
    /// Provenance tag → window index → energy.
    provenance: BTreeMap<&'static str, BTreeMap<u64, f64>>,
    counters: BTreeMap<u64, WindowCounters>,
    transitions: Vec<StateChange>,
    anomalies: Vec<AnomalyMark>,
    /// Highest cycle seen in any record (run horizon lower bound).
    max_cycle: u64,
}

impl PowerTimelineSink {
    /// An empty timeline with the given windowing configuration.
    pub fn new(config: TimelineConfig) -> Self {
        PowerTimelineSink {
            config,
            comps: Vec::new(),
            provenance: BTreeMap::new(),
            counters: BTreeMap::new(),
            transitions: Vec::new(),
            anomalies: Vec::new(),
            max_cycle: 0,
        }
    }

    /// The windowing configuration.
    pub fn config(&self) -> TimelineConfig {
        self.config
    }

    /// Components observed so far.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// The arrival-order mirror total of component `comp`, joules —
    /// bit-exact against the ledger total (`f64::to_bits` equality).
    pub fn component_total_j(&self, comp: usize) -> f64 {
        self.comps.get(comp).map_or(0.0, |c| c.total_j)
    }

    /// The reassociated sum of component `comp`'s window buckets,
    /// joules (equal to the mirror up to reassociation noise).
    pub fn component_window_sum_j(&self, comp: usize) -> f64 {
        self.comps
            .get(comp)
            .map_or(0.0, |c| c.windows.values().sum())
    }

    /// Highest cycle observed in any record.
    pub fn max_cycle(&self) -> u64 {
        self.max_cycle
    }

    fn comp_mut(&mut self, comp: u32) -> &mut CompTimeline {
        let idx = comp as usize;
        if idx >= self.comps.len() {
            self.comps.resize_with(idx + 1, CompTimeline::default);
        }
        &mut self.comps[idx]
    }

    /// Snapshots the timeline into a dense [`TimelineReport`].
    ///
    /// `names` labels components in ledger order (missing entries fall
    /// back to `comp<i>`); `end_cycle` is the run horizon (the
    /// report's `total_cycles`) — windows are materialized up to
    /// `max(end_cycle, last observed cycle)`.
    pub fn report(&self, names: &[String], end_cycle: u64) -> TimelineReport {
        let w = self.config.window_cycles;
        let horizon = end_cycle.max(self.max_cycle).max(1);
        // Window count covers the horizon; `horizon` itself is an
        // exclusive end, so the last window holds cycle `horizon - 1`.
        let windows = ((horizon - 1) / w + 1) as usize;
        let dense = |map: &BTreeMap<u64, f64>| -> Vec<f64> {
            let mut v = vec![0.0; windows];
            for (&i, &e) in map {
                if let Some(slot) = v.get_mut(i as usize) {
                    *slot += e;
                } else if let Some(last) = v.last_mut() {
                    // A charge past the horizon (defensive): keep the
                    // partition exact by folding into the last window.
                    *last += e;
                }
            }
            v
        };
        let components = self
            .comps
            .iter()
            .enumerate()
            .map(|(i, c)| ComponentWaveform {
                name: names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("comp{i}")),
                total_j: c.total_j,
                records: c.records,
                window_energy_j: dense(&c.windows),
            })
            .collect();
        let provenance = self
            .provenance
            .iter()
            .map(|(tag, map)| (*tag, dense(map)))
            .collect();
        let mut counters = vec![WindowCounters::default(); windows];
        for (&i, c) in &self.counters {
            if let Some(slot) = counters.get_mut(i as usize) {
                slot.add(c);
            } else if let Some(last) = counters.last_mut() {
                last.add(c);
            }
        }
        let mut transitions = self.transitions.clone();
        transitions.sort_by_key(|t| (t.at, t.process));
        TimelineReport {
            window_cycles: w,
            clock_hz: self.config.clock_hz,
            end_cycle: horizon,
            components,
            provenance,
            counters,
            transitions,
            anomalies: self.anomalies.clone(),
        }
    }
}

impl TraceSink for PowerTimelineSink {
    fn record(&mut self, rec: &TraceRecord) {
        let w = self.config.window_cycles;
        match rec {
            TraceRecord::EnergySample {
                component,
                start,
                end,
                energy_j,
                provenance,
            } => {
                let win = start / w;
                let c = self.comp_mut(*component);
                // The mirror: same f64, same order as the ledger.
                c.total_j += energy_j;
                c.records += 1;
                *c.windows.entry(win).or_insert(0.0) += energy_j;
                *self
                    .provenance
                    .entry(provenance)
                    .or_default()
                    .entry(win)
                    .or_insert(0.0) += energy_j;
                self.max_cycle = self.max_cycle.max(*end).max(*start);
            }
            TraceRecord::FiringStart { at, .. } => {
                self.counters.entry(at / w).or_default().firings += 1;
                self.max_cycle = self.max_cycle.max(*at);
            }
            TraceRecord::GateActivity { at, evals, events, .. } => {
                let c = self.counters.entry(at / w).or_default();
                c.gate_evals += evals;
                c.gate_events += events;
                self.max_cycle = self.max_cycle.max(*at);
            }
            TraceRecord::BusGrant { start, end, words, .. } => {
                self.counters.entry(start / w).or_default().bus_words += words;
                self.max_cycle = self.max_cycle.max(*end);
            }
            TraceRecord::IcacheBatch { at, fetches, misses, .. } => {
                let c = self.counters.entry(at / w).or_default();
                c.icache_fetches += fetches;
                c.icache_misses += misses;
                self.max_cycle = self.max_cycle.max(*at);
            }
            TraceRecord::PowerTransition { at, process, from, to } => {
                self.transitions.push(StateChange {
                    at: *at,
                    process: *process,
                    from,
                    to,
                });
                self.max_cycle = self.max_cycle.max(*at);
            }
            TraceRecord::FaultInjected { at, description } => {
                self.anomalies.push(AnomalyMark {
                    at: *at,
                    label: format!("fault: {description}"),
                });
                self.max_cycle = self.max_cycle.max(*at);
            }
            TraceRecord::WatchdogTrip { at, reason } => {
                self.anomalies.push(AnomalyMark {
                    at: *at,
                    label: format!("watchdog: {reason}"),
                });
                self.max_cycle = self.max_cycle.max(*at);
            }
            _ => {}
        }
    }
}

/// One component's dense power waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentWaveform {
    /// Component name (ledger order: processes, then bus, then icache).
    pub name: String,
    /// Arrival-order mirror total, joules — bit-exact against the
    /// ledger ([`f64::to_bits`] equality with the report total).
    pub total_j: f64,
    /// Ledger charges observed.
    pub records: u64,
    /// Energy per window, joules (exact partition, reassociated).
    pub window_energy_j: Vec<f64>,
}

/// The system peak-power window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakWindow {
    /// Window index.
    pub window: usize,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// System energy in the window, joules.
    pub energy_j: f64,
    /// System average power over the window, watts.
    pub power_w: f64,
}

/// Energy and residency of one power state across managed components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatePower {
    /// State tag (`"active"`, `"dvfs"`, `"clock_gated"`,
    /// `"power_gated"`).
    pub state: &'static str,
    /// Component-cycles spent in the state (summed over components).
    pub cycles: u64,
    /// Energy booked to windows whose start cycle fell in the state,
    /// joules.
    pub energy_j: f64,
}

impl StatePower {
    /// Average power while resident in the state, watts (0 when the
    /// state was never occupied).
    pub fn average_power_w(&self, clock_hz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.energy_j / (self.cycles as f64 / clock_hz)
        }
    }
}

/// A dense snapshot of a [`PowerTimelineSink`]: per-component and
/// per-provenance waveforms, per-window counters, the power-state
/// timeline, and anomaly marks — plus the derived transient statistics
/// (peak window, moving-average maximum, residency-weighted power).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Window width, cycles.
    pub window_cycles: u64,
    /// Master clock, hertz.
    pub clock_hz: f64,
    /// Run horizon, cycles (exclusive end of the last window's data).
    pub end_cycle: u64,
    /// One waveform per ledger component.
    pub components: Vec<ComponentWaveform>,
    /// Energy per window per provenance tag (stable tag order).
    pub provenance: Vec<(&'static str, Vec<f64>)>,
    /// Activity counters per window.
    pub counters: Vec<WindowCounters>,
    /// Power-state changes, ordered by `(at, process)`.
    pub transitions: Vec<StateChange>,
    /// Fault/watchdog marks, in emission order.
    pub anomalies: Vec<AnomalyMark>,
}

impl TimelineReport {
    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.components
            .first()
            .map_or(self.counters.len(), |c| c.window_energy_j.len())
            .max(self.counters.len())
    }

    /// Duration of one window, seconds.
    pub fn window_seconds(&self) -> f64 {
        self.window_cycles as f64 / self.clock_hz
    }

    /// Total energy, joules (sum of the per-component mirrors;
    /// reassociated across components).
    pub fn total_energy_j(&self) -> f64 {
        self.components.iter().map(|c| c.total_j).sum()
    }

    /// System energy per window, joules (summed over components).
    pub fn system_window_energy_j(&self) -> Vec<f64> {
        let n = self.window_count();
        let mut v = vec![0.0; n];
        for c in &self.components {
            for (slot, e) in v.iter_mut().zip(&c.window_energy_j) {
                *slot += e;
            }
        }
        v
    }

    /// System average power per window, watts. Every window, including
    /// the last, is treated as full-width (the windowing rule bins by
    /// start cycle, so a partial tail window under-reads rather than
    /// inventing power).
    pub fn system_window_power_w(&self) -> Vec<f64> {
        let dt = self.window_seconds();
        self.system_window_energy_j()
            .iter()
            .map(|e| e / dt)
            .collect()
    }

    /// Average system power over the whole run, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.end_cycle == 0 {
            return 0.0;
        }
        self.total_energy_j() / (self.end_cycle as f64 / self.clock_hz)
    }

    /// The peak-power window (none when the timeline is empty).
    pub fn peak(&self) -> Option<PeakWindow> {
        let dt = self.window_seconds();
        self.system_window_energy_j()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, &e)| PeakWindow {
                window: i,
                start_cycle: i as u64 * self.window_cycles,
                energy_j: e,
                power_w: e / dt,
            })
    }

    /// Peak system power, watts (0 for an empty timeline).
    pub fn peak_power_w(&self) -> f64 {
        self.peak().map_or(0.0, |p| p.power_w)
    }

    /// Maximum of the `k`-window moving average of system power, watts
    /// (`k` is clamped to ≥ 1; 0 for an empty timeline). Smooths
    /// single-window spikes into a sustained-transient figure.
    pub fn moving_average_max_w(&self, k: usize) -> f64 {
        let k = k.max(1);
        let power = self.system_window_power_w();
        if power.is_empty() {
            return 0.0;
        }
        let k = k.min(power.len());
        let mut sum: f64 = power.iter().take(k).sum();
        let mut best = sum;
        for i in k..power.len() {
            sum += power[i] - power[i - k];
            best = best.max(sum);
        }
        best / k as f64
    }

    /// The power state of process `p` at `cycle`, from the observed
    /// transition stream. Components never mentioned by a transition
    /// are `"active"` (the master emits a synthetic cycle-0 record for
    /// any component whose base state differs).
    pub fn state_at(&self, process: u32, cycle: u64) -> &'static str {
        let mut state: Option<&'static str> = None;
        for t in &self.transitions {
            if t.process != process {
                continue;
            }
            if t.at > cycle {
                // Transitions are sorted; the first future one tells
                // us what the state was *before* it.
                return state.unwrap_or(t.from);
            }
            state = Some(t.to);
        }
        state.unwrap_or("active")
    }

    /// Per-state energy and residency, attributing each component
    /// window to the component's state at the window's start cycle.
    /// Residency cycles are summed over all components (bus and
    /// i-cache count as always-active), so the total is
    /// `components × end_cycle`.
    pub fn state_power(&self) -> Vec<StatePower> {
        const STATES: [&str; 4] = ["active", "dvfs", "clock_gated", "power_gated"];
        let mut energy: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut cycles: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (p, c) in self.components.iter().enumerate() {
            // Residency: walk this component's transitions.
            let mut mark = 0u64;
            let mut cur: Option<&'static str> = None;
            for t in self.transitions.iter().filter(|t| t.process == p as u32) {
                let at = t.at.min(self.end_cycle);
                *cycles.entry(cur.unwrap_or(t.from)).or_insert(0) += at - mark.min(at);
                mark = at;
                cur = Some(t.to);
            }
            *cycles.entry(cur.unwrap_or("active")).or_insert(0) +=
                self.end_cycle.saturating_sub(mark);
            // Energy: bin windows by state at window start.
            for (i, &e) in c.window_energy_j.iter().enumerate() {
                let start = i as u64 * self.window_cycles;
                *energy.entry(self.state_at(p as u32, start)).or_insert(0.0) += e;
            }
        }
        STATES
            .iter()
            .filter(|s| cycles.contains_key(*s) || energy.contains_key(*s))
            .map(|&state| StatePower {
                state,
                cycles: cycles.get(state).copied().unwrap_or(0),
                energy_j: energy.get(state).copied().unwrap_or(0.0),
            })
            .collect()
    }

    /// Residency-weighted average power, watts: each state's average
    /// power weighted by its share of component-cycles. Close to
    /// [`average_power_w`](Self::average_power_w) when every state's
    /// energy partition aligns with its residency partition; a gap
    /// between the two flags energy booked while nominally gated
    /// (e.g. leakage under a closed gate).
    pub fn residency_weighted_power_w(&self) -> f64 {
        let states = self.state_power();
        let total: u64 = states.iter().map(|s| s.cycles).sum();
        if total == 0 {
            return self.average_power_w();
        }
        states
            .iter()
            .map(|s| {
                (s.cycles as f64 / total as f64) * s.average_power_w(self.clock_hz)
            })
            .sum()
    }

    /// Renders the system power waveform as an ASCII bar chart,
    /// `width` characters wide at the peak.
    pub fn render_ascii(&self, width: usize) -> String {
        let power = self.system_window_power_w();
        let peak = power.iter().fold(0.0f64, |a, &b| a.max(b));
        let width = width.max(1);
        let mut out = format!(
            "system power, {} windows x {} cycles ({:.3e} s each), peak {:.4e} W\n",
            power.len(),
            self.window_cycles,
            self.window_seconds(),
            peak
        );
        for (i, &p) in power.iter().enumerate() {
            let bar = if peak > 0.0 {
                "#".repeat(((p / peak) * width as f64).round() as usize)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:>10} | {:>10.4e} W | {bar}\n",
                i as u64 * self.window_cycles,
                p
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(component: u32, start: u64, energy_j: f64, prov: &'static str) -> TraceRecord {
        TraceRecord::EnergySample {
            component,
            start,
            end: start + 10,
            energy_j,
            provenance: prov,
        }
    }

    #[test]
    fn bins_by_start_cycle_and_mirrors_totals() {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(100, 1_000.0));
        sink.record(&sample(0, 0, 1e-9, "measured_iss"));
        sink.record(&sample(0, 99, 2e-9, "measured_iss"));
        sink.record(&sample(0, 100, 4e-9, "bus_model"));
        sink.record(&sample(1, 250, 8e-9, "bus_model"));
        assert_eq!(sink.component_count(), 2);
        let expected0: f64 = 1e-9 + 2e-9 + 4e-9;
        assert_eq!(sink.component_total_j(0).to_bits(), expected0.to_bits());
        let report = sink.report(&["a".into(), "b".into()], 300);
        assert_eq!(report.components[0].window_energy_j.len(), 3);
        assert!((report.components[0].window_energy_j[0] - 3e-9).abs() < 1e-24);
        assert!((report.components[0].window_energy_j[1] - 4e-9).abs() < 1e-24);
        assert!((report.components[1].window_energy_j[2] - 8e-9).abs() < 1e-24);
        assert_eq!(report.provenance.len(), 2);
    }

    #[test]
    fn peak_and_moving_average() {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(10, 1_000.0));
        // 1 nJ, 5 nJ, 1 nJ over three windows of 10 ms each.
        sink.record(&sample(0, 0, 1e-9, "measured_iss"));
        sink.record(&sample(0, 10, 5e-9, "measured_iss"));
        sink.record(&sample(0, 20, 1e-9, "measured_iss"));
        let r = sink.report(&["a".into()], 30);
        let peak = r.peak().expect("nonempty");
        assert_eq!(peak.window, 1);
        assert_eq!(peak.start_cycle, 10);
        assert!((peak.power_w - 5e-9 / 0.01).abs() < 1e-12);
        // 2-window moving average max covers windows 1..=2.
        let ma = r.moving_average_max_w(2);
        assert!((ma - (5e-9 + 1e-9) / 2.0 / 0.01).abs() < 1e-12);
        assert!(r.moving_average_max_w(1) >= ma);
    }

    #[test]
    fn state_timeline_attributes_windows() {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(10, 1_000.0));
        sink.record(&sample(0, 0, 1e-9, "measured_iss"));
        sink.record(&TraceRecord::PowerTransition {
            at: 10,
            process: 0,
            from: "active",
            to: "clock_gated",
        });
        sink.record(&sample(0, 15, 2e-9, "leakage"));
        sink.record(&TraceRecord::PowerTransition {
            at: 20,
            process: 0,
            from: "clock_gated",
            to: "active",
        });
        let r = sink.report(&["a".into()], 30);
        assert_eq!(r.state_at(0, 5), "active");
        assert_eq!(r.state_at(0, 15), "clock_gated");
        assert_eq!(r.state_at(0, 25), "active");
        let states = r.state_power();
        let gated = states
            .iter()
            .find(|s| s.state == "clock_gated")
            .expect("gated state present");
        assert_eq!(gated.cycles, 10);
        assert!((gated.energy_j - 2e-9).abs() < 1e-24);
        let active = states.iter().find(|s| s.state == "active").expect("active");
        assert_eq!(active.cycles, 20);
    }

    #[test]
    fn anomalies_and_counters_are_collected() {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(100, 1_000.0));
        sink.record(&TraceRecord::FiringStart { at: 5, process: 0, transition: 0 });
        sink.record(&TraceRecord::GateActivity { at: 7, process: 0, evals: 12, events: 3 });
        sink.record(&TraceRecord::BusGrant {
            at: 110,
            master: 0,
            start: 110,
            end: 120,
            words: 8,
            energy_j: 1e-10,
            request_done: true,
        });
        sink.record(&TraceRecord::IcacheBatch {
            at: 8,
            process: 0,
            fetches: 6,
            hits: 5,
            misses: 1,
            stall_cycles: 4,
            energy_j: 1e-11,
        });
        sink.record(&TraceRecord::FaultInjected { at: 50, description: "stall".into() });
        sink.record(&TraceRecord::WatchdogTrip { at: 60, reason: "budget".into() });
        let r = sink.report(&[], 200);
        assert_eq!(r.counters.len(), 2);
        assert_eq!(r.counters[0].firings, 1);
        assert_eq!(r.counters[0].gate_evals, 12);
        assert_eq!(r.counters[0].icache_fetches, 6);
        assert_eq!(r.counters[0].icache_misses, 1);
        assert_eq!(r.counters[1].bus_words, 8);
        assert_eq!(r.anomalies.len(), 2);
        assert!(r.anomalies[0].label.starts_with("fault:"));
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let c = TimelineConfig::new(0, f64::NAN);
        assert_eq!(c.window_cycles, 1);
        assert_eq!(c.clock_hz, 1.0);
        let sink = PowerTimelineSink::new(c);
        let r = sink.report(&[], 0);
        assert_eq!(r.peak_power_w(), 0.0);
        assert_eq!(r.average_power_w(), 0.0);
        assert!(r.render_ascii(40).contains("system power"));
    }

    #[test]
    fn render_ascii_marks_the_peak() {
        let mut sink = PowerTimelineSink::new(TimelineConfig::new(10, 1_000.0));
        sink.record(&sample(0, 0, 1e-9, "measured_iss"));
        sink.record(&sample(0, 10, 4e-9, "measured_iss"));
        let text = sink.report(&["a".into()], 20).render_ascii(40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].ends_with(&"#".repeat(40)), "{text}");
    }
}
