//! `soctrace` — the structured trace-sink observability layer of the
//! co-estimation stack.
//!
//! Every layer of the simulator (desim kernel, co-simulation master,
//! acceleration pipeline, bus, cache) can emit structured
//! [`TraceRecord`]s into a user-supplied [`TraceSink`]. The hook is
//! **zero-cost when disabled**: emission goes through a [`Tracer`]
//! handle whose [`emit`](Tracer::emit) takes a closure, so a disabled
//! tracer costs one `Option` check and never constructs the record.
//! Attaching a sink is strictly observational — a traced run is
//! bit-for-bit identical to an untraced one (the golden-report suite
//! enforces this in CI with `TRACE=ndjson`).
//!
//! Three sinks ship with the crate:
//!
//! * [`MetricsSink`] — counting/aggregating: per-layer answer counts,
//!   cache hit/miss, bus traffic, energy totals; renders itself as JSON
//!   for benchmark artifacts ([`MetricsSink::to_json`]).
//! * [`NdjsonSink`] — one JSON object per record, newline-delimited, to
//!   any [`std::io::Write`] (files, pipes, in-memory buffers).
//! * [`MemorySink`] — keeps the records in a `Vec` for tests.
//!
//! [`SharedSink`] wraps any sink in `Rc<RefCell<…>>` so the caller can
//! keep a handle while the simulator owns the attached clone.
//!
//! # Examples
//!
//! ```
//! use soctrace::{MetricsSink, SharedSink, TraceRecord, TraceSink, Tracer};
//!
//! let shared = SharedSink::new(MetricsSink::new());
//! let mut tracer = Tracer::new(Box::new(shared.clone()));
//! tracer.emit(|| TraceRecord::FiringStart { at: 10, process: 0, transition: 2 });
//! assert_eq!(shared.with(|m| m.firings), 1);
//!
//! let mut off = Tracer::disabled();
//! off.emit(|| unreachable!("never constructed when disabled"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::rc::Rc;

/// One structured observation from the simulation stack.
///
/// Identifiers are plain integers (process/component/master indices as
/// assigned by the emitting layer) so the crate stays dependency-free;
/// the emitting layer documents the mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A CFSM transition firing began.
    FiringStart {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Transition index within the process.
        transition: u32,
    },
    /// A firing's cost was settled (by whichever layer answered).
    FiringEnd {
        /// Simulation time the firing started, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Execution cycles charged.
        cycles: u64,
        /// Energy charged, joules.
        energy_j: f64,
        /// Which estimator answered: `"detailed"`, `"cache"`,
        /// `"macromodel"` or `"sampling"`.
        source: &'static str,
    },
    /// An acceleration layer answered a firing instead of delegating.
    LayerAnswered {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Layer name (`"cache"`, `"macromodel"`, `"sampling"`).
        layer: &'static str,
        /// Cycles of the answer.
        cycles: u64,
        /// Energy of the answer, joules.
        energy_j: f64,
    },
    /// The energy cache was consulted.
    EnergyCacheLookup {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Computation-path id within the process.
        path: u64,
        /// Whether the lookup was served.
        hit: bool,
    },
    /// An energy quantum was recorded into the accounting ledger.
    EnergySample {
        /// Component index in the ledger.
        component: u32,
        /// First cycle of the charged window.
        start: u64,
        /// One past the last cycle of the charged window.
        end: u64,
        /// Energy, joules.
        energy_j: f64,
    },
    /// The bus arbiter granted one DMA block.
    BusGrant {
        /// Time the grant was issued, cycles.
        at: u64,
        /// Bus-master index.
        master: u32,
        /// First cycle of the block (arbitration included).
        start: u64,
        /// One past the last cycle.
        end: u64,
        /// Words transferred in this block.
        words: u64,
        /// Energy of the block, joules.
        energy_j: f64,
        /// Whether this was the owning request's final block.
        request_done: bool,
    },
    /// One behavioral fetch batch went through the instruction cache.
    IcacheBatch {
        /// Simulation time, cycles.
        at: u64,
        /// Process index whose firing drove the fetches.
        process: u32,
        /// Fetches in the batch.
        fetches: u64,
        /// Hits among them.
        hits: u64,
        /// Misses among them.
        misses: u64,
        /// Stall cycles caused.
        stall_cycles: u64,
        /// Energy charged, joules.
        energy_j: f64,
    },
    /// A scheduled fault was injected.
    FaultInjected {
        /// Simulation time, cycles.
        at: u64,
        /// Human-readable fault description.
        description: String,
    },
    /// A watchdog budget tripped; the run degrades.
    WatchdogTrip {
        /// Simulation time, cycles.
        at: u64,
        /// Trip reason.
        reason: String,
    },
    /// The discrete-event kernel delivered one event.
    KernelEvent {
        /// Delivery time, cycles.
        at: u64,
        /// Target process index.
        process: u32,
    },
    /// Gate-level simulation activity behind one detailed firing: how
    /// many combinational gates the power simulator evaluated and how
    /// many net-value events it observed.
    GateActivity {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Combinational gate evaluations performed.
        evals: u64,
        /// Net value changes observed.
        events: u64,
    },
    /// The RTOS scheduler granted CPU time to a task.
    RtosGrant {
        /// Grant start, cycles.
        at: u64,
        /// Task index.
        task: u32,
        /// Registered task name.
        name: String,
        /// One past the last granted cycle.
        end: u64,
        /// Whether the request is fully served.
        completes: bool,
    },
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceRecord {
    /// The record's kind tag (the `"kind"` field of the NDJSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::FiringStart { .. } => "firing_start",
            TraceRecord::FiringEnd { .. } => "firing_end",
            TraceRecord::LayerAnswered { .. } => "layer_answered",
            TraceRecord::EnergyCacheLookup { .. } => "energy_cache_lookup",
            TraceRecord::EnergySample { .. } => "energy_sample",
            TraceRecord::BusGrant { .. } => "bus_grant",
            TraceRecord::IcacheBatch { .. } => "icache_batch",
            TraceRecord::FaultInjected { .. } => "fault_injected",
            TraceRecord::WatchdogTrip { .. } => "watchdog_trip",
            TraceRecord::KernelEvent { .. } => "kernel_event",
            TraceRecord::GateActivity { .. } => "gate_activity",
            TraceRecord::RtosGrant { .. } => "rtos_grant",
        }
    }

    /// Renders the record as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let kind = self.kind();
        match self {
            TraceRecord::FiringStart { at, process, transition } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"transition\":{transition}}}"
            ),
            TraceRecord::FiringEnd { at, process, cycles, energy_j, source } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"cycles\":{cycles},\
                 \"energy_j\":{energy_j:e},\"source\":\"{source}\"}}"
            ),
            TraceRecord::LayerAnswered { at, process, layer, cycles, energy_j } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"layer\":\"{layer}\",\
                 \"cycles\":{cycles},\"energy_j\":{energy_j:e}}}"
            ),
            TraceRecord::EnergyCacheLookup { at, process, path, hit } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"path\":{path},\"hit\":{hit}}}"
            ),
            TraceRecord::EnergySample { component, start, end, energy_j } => format!(
                "{{\"kind\":\"{kind}\",\"component\":{component},\"start\":{start},\"end\":{end},\
                 \"energy_j\":{energy_j:e}}}"
            ),
            TraceRecord::BusGrant { at, master, start, end, words, energy_j, request_done } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"master\":{master},\"start\":{start},\
                     \"end\":{end},\"words\":{words},\"energy_j\":{energy_j:e},\
                     \"request_done\":{request_done}}}"
                )
            }
            TraceRecord::IcacheBatch { at, process, fetches, hits, misses, stall_cycles, energy_j } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"fetches\":{fetches},\
                     \"hits\":{hits},\"misses\":{misses},\"stall_cycles\":{stall_cycles},\
                     \"energy_j\":{energy_j:e}}}"
                )
            }
            TraceRecord::FaultInjected { at, description } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"description\":\"{}\"}}",
                json_escape(description)
            ),
            TraceRecord::WatchdogTrip { at, reason } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            TraceRecord::KernelEvent { at, process } => {
                format!("{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process}}}")
            }
            TraceRecord::GateActivity { at, process, evals, events } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"evals\":{evals},\
                 \"events\":{events}}}"
            ),
            TraceRecord::RtosGrant { at, task, name, end, completes } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"task\":{task},\"name\":\"{}\",\"end\":{end},\
                 \"completes\":{completes}}}",
                json_escape(name)
            ),
        }
    }
}

/// A consumer of [`TraceRecord`]s. Object-safe so the simulator can hold
/// `Box<dyn TraceSink>` without caring what is listening.
pub trait TraceSink {
    /// Consumes one record. Must not panic: tracing is observational and
    /// a sink failure must not poison the simulation.
    fn record(&mut self, rec: &TraceRecord);
}

/// The emission handle threaded through the simulation layers.
///
/// A disabled tracer (the default) costs one branch per emission site
/// and never constructs the record — the closure passed to
/// [`emit`](Tracer::emit) is only invoked when a sink is attached.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sink: every emission is a no-op.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer forwarding every record to `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Attaches (or replaces) the sink.
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink, disabling the tracer.
    pub fn detach(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one record. `build` runs only when a sink is attached.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceRecord) {
        if let Some(sink) = &mut self.sink {
            sink.record(&build());
        }
    }
}

/// A counting/aggregating sink: per-layer answer counts, cache hit/miss
/// ratios, bus traffic and ledger energy — the cheap always-on metrics
/// companion to the full NDJSON stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSink {
    /// Total records consumed.
    pub records: u64,
    /// Firings started.
    pub firings: u64,
    /// Firings answered by the detailed estimators.
    pub detailed_calls: u64,
    /// Firings answered per acceleration layer, keyed by layer name.
    pub answered_by_layer: BTreeMap<&'static str, u64>,
    /// Energy-cache lookups that hit.
    pub cache_hits: u64,
    /// Energy-cache lookups that missed.
    pub cache_misses: u64,
    /// Ledger records observed.
    pub energy_samples: u64,
    /// Total energy observed through ledger records, joules.
    pub sampled_energy_j: f64,
    /// Bus DMA blocks granted.
    pub bus_grants: u64,
    /// Bus words transferred under observed grants.
    pub bus_words: u64,
    /// Instruction-cache fetch batches observed.
    pub icache_batches: u64,
    /// Instruction fetches observed.
    pub icache_fetches: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Watchdog trips.
    pub watchdog_trips: u64,
    /// Kernel event deliveries.
    pub kernel_events: u64,
    /// RTOS grants.
    pub rtos_grants: u64,
    /// Combinational gate evaluations behind observed detailed firings.
    pub gate_evals: u64,
    /// Gate-level net value changes behind observed detailed firings.
    pub gate_events: u64,
}

impl MetricsSink {
    /// An empty metrics aggregator.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Firings answered by any acceleration layer.
    pub fn accelerated_calls(&self) -> u64 {
        self.answered_by_layer.values().sum()
    }

    /// Energy-cache hit rate over observed lookups (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the aggregates as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut layers = String::new();
        for (i, (layer, n)) in self.answered_by_layer.iter().enumerate() {
            if i > 0 {
                layers.push_str(", ");
            }
            layers.push_str(&format!("\"{layer}\": {n}"));
        }
        format!(
            "{{\"records\": {}, \"firings\": {}, \"detailed_calls\": {}, \
             \"accelerated_calls\": {}, \"answered_by_layer\": {{{layers}}}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"energy_samples\": {}, \
             \"sampled_energy_j\": {:e}, \"bus_grants\": {}, \"bus_words\": {}, \
             \"icache_batches\": {}, \"icache_fetches\": {}, \"faults_injected\": {}, \
             \"watchdog_trips\": {}, \"gate_evals\": {}, \"gate_events\": {}}}",
            self.records,
            self.firings,
            self.detailed_calls,
            self.accelerated_calls(),
            self.cache_hits,
            self.cache_misses,
            self.energy_samples,
            self.sampled_energy_j,
            self.bus_grants,
            self.bus_words,
            self.icache_batches,
            self.icache_fetches,
            self.faults_injected,
            self.watchdog_trips,
            self.gate_evals,
            self.gate_events,
        )
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records += 1;
        match rec {
            TraceRecord::FiringStart { .. } => self.firings += 1,
            TraceRecord::FiringEnd { source, .. } => {
                if *source == "detailed" {
                    self.detailed_calls += 1;
                }
            }
            TraceRecord::LayerAnswered { layer, .. } => {
                *self.answered_by_layer.entry(layer).or_insert(0) += 1;
            }
            TraceRecord::EnergyCacheLookup { hit, .. } => {
                if *hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            TraceRecord::EnergySample { energy_j, .. } => {
                self.energy_samples += 1;
                self.sampled_energy_j += energy_j;
            }
            TraceRecord::BusGrant { words, .. } => {
                self.bus_grants += 1;
                self.bus_words += words;
            }
            TraceRecord::IcacheBatch { fetches, .. } => {
                self.icache_batches += 1;
                self.icache_fetches += fetches;
            }
            TraceRecord::FaultInjected { .. } => self.faults_injected += 1,
            TraceRecord::WatchdogTrip { .. } => self.watchdog_trips += 1,
            TraceRecord::KernelEvent { .. } => self.kernel_events += 1,
            TraceRecord::GateActivity { evals, events, .. } => {
                self.gate_evals += evals;
                self.gate_events += events;
            }
            TraceRecord::RtosGrant { .. } => self.rtos_grants += 1,
        }
    }
}

/// A sink writing one JSON object per record to any writer.
///
/// Write errors are swallowed after the first (tracing must never poison
/// the simulation); [`error`](NdjsonSink::error) exposes the first one.
#[derive(Debug)]
pub struct NdjsonSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::ErrorKind>,
}

impl<W: Write> NdjsonSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        NdjsonSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for NdjsonSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{}", rec.to_ndjson()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e.kind()),
        }
    }
}

/// A sink keeping every record in memory (tests and post-hoc analysis).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records of one kind, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.kind() == kind).collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

/// A shareable sink: the caller keeps one handle, the simulator owns the
/// other. Single-threaded (`Rc`) by design — the co-simulation master is
/// single-threaded, and parallel sweeps attach one sink per worker.
pub struct SharedSink<T>(Rc<RefCell<T>>);

impl<T> Clone for SharedSink<T> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedSink").field(&self.0).finish()
    }
}

impl<T> SharedSink<T> {
    /// Wraps `sink` for sharing.
    pub fn new(sink: T) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Runs `f` with a shared borrow of the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Extracts the inner sink if this is the last handle, otherwise a
    /// clone of it.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl<T: TraceSink> TraceSink for SharedSink<T> {
    fn record(&mut self, rec: &TraceRecord) {
        // A sink must not panic; skip the record if the caller holds a
        // borrow at emission time (not possible from the simulator side).
        if let Ok(mut inner) = self.0.try_borrow_mut() {
            inner.record(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::FiringStart { at: 1, process: 0, transition: 0 },
            TraceRecord::LayerAnswered {
                at: 1,
                process: 0,
                layer: "cache",
                cycles: 10,
                energy_j: 1e-9,
            },
            TraceRecord::FiringEnd {
                at: 1,
                process: 0,
                cycles: 10,
                energy_j: 1e-9,
                source: "cache",
            },
            TraceRecord::FiringStart { at: 2, process: 1, transition: 3 },
            TraceRecord::FiringEnd {
                at: 2,
                process: 1,
                cycles: 20,
                energy_j: 2e-9,
                source: "detailed",
            },
            TraceRecord::EnergyCacheLookup { at: 2, process: 1, path: 7, hit: false },
            TraceRecord::EnergySample { component: 1, start: 2, end: 22, energy_j: 2e-9 },
            TraceRecord::BusGrant {
                at: 5,
                master: 1,
                start: 5,
                end: 9,
                words: 4,
                energy_j: 3e-10,
                request_done: true,
            },
            TraceRecord::FaultInjected { at: 6, description: "freeze \"p\"".into() },
            TraceRecord::WatchdogTrip { at: 9, reason: "cycle budget".into() },
            TraceRecord::GateActivity { at: 2, process: 1, evals: 120, events: 45 },
        ]
    }

    #[test]
    fn disabled_tracer_never_builds_records() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            TraceRecord::KernelEvent { at: 0, process: 0 }
        });
        assert!(!built);
        assert!(!t.enabled());
    }

    #[test]
    fn metrics_sink_aggregates() {
        let mut m = MetricsSink::new();
        for r in sample_records() {
            m.record(&r);
        }
        assert_eq!(m.firings, 2);
        assert_eq!(m.detailed_calls, 1);
        assert_eq!(m.accelerated_calls(), 1);
        assert_eq!(m.answered_by_layer.get("cache"), Some(&1));
        assert_eq!((m.cache_hits, m.cache_misses), (0, 1));
        assert_eq!(m.bus_grants, 1);
        assert_eq!(m.bus_words, 4);
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.watchdog_trips, 1);
        assert_eq!(m.gate_evals, 120);
        assert_eq!(m.gate_events, 45);
        assert!((m.sampled_energy_j - 2e-9).abs() < 1e-20);
        let json = m.to_json();
        assert!(json.contains("\"detailed_calls\": 1"), "{json}");
        assert!(json.contains("\"cache\": 1"), "{json}");
        assert!(json.contains("\"gate_evals\": 120"), "{json}");
    }

    #[test]
    fn ndjson_lines_are_valid_shape() {
        let mut sink = NdjsonSink::new(Vec::new());
        for r in sample_records() {
            sink.record(&r);
        }
        assert_eq!(sink.written(), 11);
        assert!(sink.error().is_none());
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 11);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""), "{line}");
        }
        // Escaping: the quoted fault description must stay one line and
        // escape its inner quotes.
        assert!(text.contains("freeze \\\"p\\\""));
    }

    #[test]
    fn memory_sink_filters_by_kind() {
        let mut m = MemorySink::new();
        for r in sample_records() {
            m.record(&r);
        }
        assert_eq!(m.of_kind("firing_start").len(), 2);
        assert_eq!(m.of_kind("bus_grant").len(), 1);
        assert_eq!(m.records.len(), 11);
    }

    #[test]
    fn shared_sink_observes_through_clone() {
        let shared = SharedSink::new(MetricsSink::new());
        let mut tracer = Tracer::new(Box::new(shared.clone()));
        tracer.emit(|| TraceRecord::KernelEvent { at: 3, process: 0 });
        tracer.emit(|| TraceRecord::KernelEvent { at: 4, process: 1 });
        assert_eq!(shared.with(|m| m.kernel_events), 2);
        let inner = shared.into_inner();
        assert_eq!(inner.records, 2);
    }

    #[test]
    fn tracer_attach_detach_roundtrip() {
        let mut t = Tracer::disabled();
        t.attach(Box::new(MemorySink::new()));
        assert!(t.enabled());
        t.emit(|| TraceRecord::KernelEvent { at: 0, process: 0 });
        let sink = t.detach();
        assert!(sink.is_some());
        assert!(!t.enabled());
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
