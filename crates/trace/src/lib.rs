//! `soctrace` — the structured trace-sink observability layer of the
//! co-estimation stack.
//!
//! Every layer of the simulator (desim kernel, co-simulation master,
//! acceleration pipeline, bus, cache) can emit structured
//! [`TraceRecord`]s into a user-supplied [`TraceSink`]. The hook is
//! **zero-cost when disabled**: emission goes through a [`Tracer`]
//! handle whose [`emit`](Tracer::emit) takes a closure, so a disabled
//! tracer costs one `Option` check and never constructs the record.
//! Attaching a sink is strictly observational — a traced run is
//! bit-for-bit identical to an untraced one (the golden-report suite
//! enforces this in CI with `TRACE=ndjson`).
//!
//! Three sinks ship with the crate:
//!
//! * [`MetricsSink`] — counting/aggregating: per-layer answer counts,
//!   cache hit/miss, bus traffic, energy totals; renders itself as JSON
//!   for benchmark artifacts ([`MetricsSink::to_json`]).
//! * [`NdjsonSink`] — one JSON object per record, newline-delimited, to
//!   any [`std::io::Write`] (files, pipes, in-memory buffers).
//! * [`MemorySink`] — keeps the records in a `Vec` for tests.
//!
//! [`SharedSink`] wraps any sink in `Rc<RefCell<…>>` so the caller can
//! keep a handle while the simulator owns the attached clone;
//! [`ArcSharedSink`] is its `Arc<Mutex<…>>` counterpart for sinks shared
//! across a worker pool (parallel exploration sweeps).
//!
//! The [`timeline`] module adds the fourth sink:
//! [`PowerTimelineSink`] bins every ledger charge into fixed-width
//! cycle windows — per-component / per-provenance power waveforms,
//! per-window activity counters, and power-state timelines — with
//! exporters to VCD ([`vcd::write_vcd`], GTKWave-viewable) and Chrome
//! Trace Event / Perfetto JSON ([`perfetto::write_perfetto`]). The
//! [`json`] module carries the dependency-free parser used to
//! round-trip validate emitted artifacts.
//!
//! Alongside the record stream, the crate carries the **span profiler**:
//! a [`Profiler`] handle emits monotonic-clock [`SpanKind`] timings into
//! a [`ProfileSink`] — typically a [`ProfileReport`], which aggregates
//! count/total/mean/max per kind. Like the tracer, a detached profiler
//! is near-free: one `Option` check per site and **zero clock reads**.
//! Wall-clock figures never enter golden snapshots — profiling, like
//! tracing, must not perturb a single bit of the simulation results.
//!
//! # Examples
//!
//! ```
//! use soctrace::{MetricsSink, SharedSink, TraceRecord, TraceSink, Tracer};
//!
//! let shared = SharedSink::new(MetricsSink::new());
//! let mut tracer = Tracer::new(Box::new(shared.clone()));
//! tracer.emit(|| TraceRecord::FiringStart { at: 10, process: 0, transition: 2 });
//! assert_eq!(shared.with(|m| m.firings), 1);
//!
//! let mut off = Tracer::disabled();
//! off.emit(|| unreachable!("never constructed when disabled"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod perfetto;
pub mod timeline;
pub mod vcd;

pub use perfetto::write_perfetto;
pub use timeline::{
    AnomalyMark, ComponentWaveform, PeakWindow, PowerTimelineSink, StateChange, StatePower,
    TimelineConfig, TimelineReport, WindowCounters,
};
pub use vcd::{check_vcd, write_vcd, VcdSummary};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One structured observation from the simulation stack.
///
/// Identifiers are plain integers (process/component/master indices as
/// assigned by the emitting layer) so the crate stays dependency-free;
/// the emitting layer documents the mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A CFSM transition firing began.
    FiringStart {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Transition index within the process.
        transition: u32,
    },
    /// A firing's cost was settled (by whichever layer answered).
    FiringEnd {
        /// Simulation time the firing started, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Execution cycles charged.
        cycles: u64,
        /// Energy charged, joules.
        energy_j: f64,
        /// Which estimator answered: `"detailed"`, `"cache"`,
        /// `"macromodel"` or `"sampling"`.
        source: &'static str,
    },
    /// An acceleration layer answered a firing instead of delegating.
    LayerAnswered {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Layer name (`"cache"`, `"macromodel"`, `"sampling"`).
        layer: &'static str,
        /// Cycles of the answer.
        cycles: u64,
        /// Energy of the answer, joules.
        energy_j: f64,
    },
    /// The energy cache was consulted.
    EnergyCacheLookup {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Computation-path id within the process.
        path: u64,
        /// Whether the lookup was served.
        hit: bool,
    },
    /// An energy quantum was recorded into the accounting ledger.
    EnergySample {
        /// Component index in the ledger.
        component: u32,
        /// First cycle of the charged window.
        start: u64,
        /// One past the last cycle of the charged window.
        end: u64,
        /// Energy, joules.
        energy_j: f64,
        /// Provenance tag: which estimation technique produced this
        /// quantum (`"measured_iss"`, `"gate_level"`, `"cache_reuse"`,
        /// `"macro_model"`, `"sampled_scaled"`, `"bus_model"`,
        /// `"cache_model"` — see the emitting layer's `Provenance`).
        provenance: &'static str,
    },
    /// The bus arbiter granted one DMA block.
    BusGrant {
        /// Time the grant was issued, cycles.
        at: u64,
        /// Bus-master index.
        master: u32,
        /// First cycle of the block (arbitration included).
        start: u64,
        /// One past the last cycle.
        end: u64,
        /// Words transferred in this block.
        words: u64,
        /// Energy of the block, joules.
        energy_j: f64,
        /// Whether this was the owning request's final block.
        request_done: bool,
    },
    /// One behavioral fetch batch went through the instruction cache.
    IcacheBatch {
        /// Simulation time, cycles.
        at: u64,
        /// Process index whose firing drove the fetches.
        process: u32,
        /// Fetches in the batch.
        fetches: u64,
        /// Hits among them.
        hits: u64,
        /// Misses among them.
        misses: u64,
        /// Stall cycles caused.
        stall_cycles: u64,
        /// Energy charged, joules.
        energy_j: f64,
    },
    /// A scheduled fault was injected.
    FaultInjected {
        /// Simulation time, cycles.
        at: u64,
        /// Human-readable fault description.
        description: String,
    },
    /// A watchdog budget tripped; the run degrades.
    WatchdogTrip {
        /// Simulation time, cycles.
        at: u64,
        /// Trip reason.
        reason: String,
    },
    /// The discrete-event kernel delivered one event.
    KernelEvent {
        /// Delivery time, cycles.
        at: u64,
        /// Target process index.
        process: u32,
    },
    /// Gate-level simulation activity behind one detailed firing: how
    /// many combinational gates the power simulator evaluated and how
    /// many net-value events it observed.
    ///
    /// `evals` counts kernel *work units* and so depends on the
    /// selected gate-simulation kernel (a word-parallel evaluation
    /// covers up to 64 cycles in one unit); `events` counts committed
    /// per-cycle gate output changes and is kernel-invariant — it is
    /// the number to compare across `GATESIM_KERNEL` selections.
    GateActivity {
        /// Simulation time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// Combinational gate evaluations performed (kernel work
        /// units; kernel-dependent).
        evals: u64,
        /// Net value changes observed (kernel-invariant).
        events: u64,
    },
    /// A component's power-management state changed (gate closed after
    /// the idle timeout, or the component woke to fire).
    PowerTransition {
        /// Transition time, cycles.
        at: u64,
        /// Process index.
        process: u32,
        /// State left (`"active"`, `"dvfs"`, `"clock_gated"`,
        /// `"power_gated"`).
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// The RTOS scheduler granted CPU time to a task.
    RtosGrant {
        /// Grant start, cycles.
        at: u64,
        /// Task index.
        task: u32,
        /// Registered task name.
        name: String,
        /// One past the last granted cycle.
        end: u64,
        /// Whether the request is fully served.
        completes: bool,
    },
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceRecord {
    /// The record's kind tag (the `"kind"` field of the NDJSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::FiringStart { .. } => "firing_start",
            TraceRecord::FiringEnd { .. } => "firing_end",
            TraceRecord::LayerAnswered { .. } => "layer_answered",
            TraceRecord::EnergyCacheLookup { .. } => "energy_cache_lookup",
            TraceRecord::EnergySample { .. } => "energy_sample",
            TraceRecord::BusGrant { .. } => "bus_grant",
            TraceRecord::IcacheBatch { .. } => "icache_batch",
            TraceRecord::FaultInjected { .. } => "fault_injected",
            TraceRecord::WatchdogTrip { .. } => "watchdog_trip",
            TraceRecord::KernelEvent { .. } => "kernel_event",
            TraceRecord::GateActivity { .. } => "gate_activity",
            TraceRecord::PowerTransition { .. } => "power_transition",
            TraceRecord::RtosGrant { .. } => "rtos_grant",
        }
    }

    /// Renders the record as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let kind = self.kind();
        match self {
            TraceRecord::FiringStart { at, process, transition } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"transition\":{transition}}}"
            ),
            TraceRecord::FiringEnd { at, process, cycles, energy_j, source } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"cycles\":{cycles},\
                 \"energy_j\":{energy_j:e},\"source\":\"{source}\"}}"
            ),
            TraceRecord::LayerAnswered { at, process, layer, cycles, energy_j } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"layer\":\"{layer}\",\
                 \"cycles\":{cycles},\"energy_j\":{energy_j:e}}}"
            ),
            TraceRecord::EnergyCacheLookup { at, process, path, hit } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"path\":{path},\"hit\":{hit}}}"
            ),
            TraceRecord::EnergySample { component, start, end, energy_j, provenance } => format!(
                "{{\"kind\":\"{kind}\",\"component\":{component},\"start\":{start},\"end\":{end},\
                 \"energy_j\":{energy_j:e},\"provenance\":\"{provenance}\"}}"
            ),
            TraceRecord::BusGrant { at, master, start, end, words, energy_j, request_done } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"master\":{master},\"start\":{start},\
                     \"end\":{end},\"words\":{words},\"energy_j\":{energy_j:e},\
                     \"request_done\":{request_done}}}"
                )
            }
            TraceRecord::IcacheBatch { at, process, fetches, hits, misses, stall_cycles, energy_j } => {
                format!(
                    "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"fetches\":{fetches},\
                     \"hits\":{hits},\"misses\":{misses},\"stall_cycles\":{stall_cycles},\
                     \"energy_j\":{energy_j:e}}}"
                )
            }
            TraceRecord::FaultInjected { at, description } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"description\":\"{}\"}}",
                json_escape(description)
            ),
            TraceRecord::WatchdogTrip { at, reason } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            TraceRecord::KernelEvent { at, process } => {
                format!("{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process}}}")
            }
            TraceRecord::GateActivity { at, process, evals, events } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"evals\":{evals},\
                 \"events\":{events}}}"
            ),
            TraceRecord::PowerTransition { at, process, from, to } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"process\":{process},\"from\":\"{from}\",\
                 \"to\":\"{to}\"}}"
            ),
            TraceRecord::RtosGrant { at, task, name, end, completes } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{at},\"task\":{task},\"name\":\"{}\",\"end\":{end},\
                 \"completes\":{completes}}}",
                json_escape(name)
            ),
        }
    }
}

/// A consumer of [`TraceRecord`]s. Object-safe so the simulator can hold
/// `Box<dyn TraceSink>` without caring what is listening.
pub trait TraceSink {
    /// Consumes one record. Must not panic: tracing is observational and
    /// a sink failure must not poison the simulation.
    fn record(&mut self, rec: &TraceRecord);
}

/// The emission handle threaded through the simulation layers.
///
/// A disabled tracer (the default) costs one branch per emission site
/// and never constructs the record — the closure passed to
/// [`emit`](Tracer::emit) is only invoked when a sink is attached.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sink: every emission is a no-op.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer forwarding every record to `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Attaches (or replaces) the sink.
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink, disabling the tracer.
    pub fn detach(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one record. `build` runs only when a sink is attached.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceRecord) {
        if let Some(sink) = &mut self.sink {
            sink.record(&build());
        }
    }
}

/// A counting/aggregating sink: per-layer answer counts, cache hit/miss
/// ratios, bus traffic and ledger energy — the cheap always-on metrics
/// companion to the full NDJSON stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSink {
    /// Total records consumed.
    pub records: u64,
    /// Firings started.
    pub firings: u64,
    /// Firings answered by the detailed estimators.
    pub detailed_calls: u64,
    /// Firings answered per acceleration layer, keyed by layer name.
    pub answered_by_layer: BTreeMap<&'static str, u64>,
    /// Energy-cache lookups that hit.
    pub cache_hits: u64,
    /// Energy-cache lookups that missed.
    pub cache_misses: u64,
    /// Ledger records observed.
    pub energy_samples: u64,
    /// Total energy observed through ledger records, joules.
    pub sampled_energy_j: f64,
    /// Ledger energy per provenance tag, joules.
    pub energy_by_provenance: BTreeMap<&'static str, f64>,
    /// Bus DMA blocks granted.
    pub bus_grants: u64,
    /// Bus words transferred under observed grants.
    pub bus_words: u64,
    /// Instruction-cache fetch batches observed.
    pub icache_batches: u64,
    /// Instruction fetches observed.
    pub icache_fetches: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Watchdog trips.
    pub watchdog_trips: u64,
    /// Kernel event deliveries.
    pub kernel_events: u64,
    /// RTOS grants.
    pub rtos_grants: u64,
    /// Combinational gate evaluations behind observed detailed
    /// firings. Kernel work units: the word-parallel kernel covers up
    /// to 64 cycles per evaluation, so this aggregate depends on the
    /// selected gate-simulation kernel.
    pub gate_evals: u64,
    /// Gate-level net value changes behind observed detailed firings.
    /// Kernel-invariant: identical under every `GATESIM_KERNEL`
    /// selection, so cross-kernel runs stay comparable on this column.
    pub gate_events: u64,
    /// Power-management state transitions observed.
    pub power_transitions: u64,
    /// Power-state residency settled by observed transitions: cycles
    /// per `(process, state)` pair, closed at each transition (the
    /// span from the last transition to the end of the run is *not*
    /// here — it needs the run horizon; see
    /// [`power_residency`](MetricsSink::power_residency)).
    pub state_cycles: BTreeMap<(u32, &'static str), u64>,
    /// Per-process open state span: `(since_cycle, state)` as of the
    /// last observed transition.
    pub open_states: BTreeMap<u32, (u64, &'static str)>,
}

impl MetricsSink {
    /// An empty metrics aggregator.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Firings answered by any acceleration layer.
    pub fn accelerated_calls(&self) -> u64 {
        self.answered_by_layer.values().sum()
    }

    /// Cycles process `process` spent in `state` over `[0, end_cycle)`,
    /// reconstructed from the observed [`TraceRecord::PowerTransition`]
    /// stream: closed spans plus the tail from the last transition to
    /// `end_cycle`. A process never mentioned by a transition is
    /// assumed `active` for the whole run — the master emits a
    /// synthetic cycle-0 transition for any component whose base state
    /// differs (e.g. a DVFS operating point), so the stream is
    /// self-describing.
    pub fn power_residency(&self, process: u32, state: &str, end_cycle: u64) -> u64 {
        let closed: u64 = self
            .state_cycles
            .iter()
            .filter(|((p, s), _)| *p == process && *s == state)
            .map(|(_, c)| *c)
            .sum();
        match self.open_states.get(&process) {
            Some((since, open)) if *open == state => {
                closed + end_cycle.saturating_sub(*since)
            }
            Some(_) => closed,
            None if state == "active" => end_cycle,
            None => 0,
        }
    }

    /// Energy-cache hit rate over observed lookups (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the aggregates as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut layers = String::new();
        for (i, (layer, n)) in self.answered_by_layer.iter().enumerate() {
            if i > 0 {
                layers.push_str(", ");
            }
            layers.push_str(&format!("\"{layer}\": {n}"));
        }
        let mut prov = String::new();
        for (i, (tag, e)) in self.energy_by_provenance.iter().enumerate() {
            if i > 0 {
                prov.push_str(", ");
            }
            prov.push_str(&format!("\"{tag}\": {e:e}"));
        }
        // Settled residency per state, aggregated over processes (the
        // open tail spans need the run horizon and are not included —
        // `power_residency` reconciles those).
        let mut residency = String::new();
        for (i, state) in ["active", "dvfs", "clock_gated", "power_gated"]
            .iter()
            .enumerate()
        {
            let cycles: u64 = self
                .state_cycles
                .iter()
                .filter(|((_, s), _)| s == state)
                .map(|(_, c)| *c)
                .sum();
            if i > 0 {
                residency.push_str(", ");
            }
            residency.push_str(&format!("\"{state}\": {cycles}"));
        }
        format!(
            "{{\"records\": {}, \"firings\": {}, \"detailed_calls\": {}, \
             \"accelerated_calls\": {}, \"answered_by_layer\": {{{layers}}}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"energy_samples\": {}, \
             \"sampled_energy_j\": {:e}, \"energy_by_provenance\": {{{prov}}}, \
             \"bus_grants\": {}, \"bus_words\": {}, \
             \"icache_batches\": {}, \"icache_fetches\": {}, \"faults_injected\": {}, \
             \"watchdog_trips\": {}, \"gate_evals\": {}, \"gate_events\": {}, \
             \"power_transitions\": {}, \"state_cycles\": {{{residency}}}}}",
            self.records,
            self.firings,
            self.detailed_calls,
            self.accelerated_calls(),
            self.cache_hits,
            self.cache_misses,
            self.energy_samples,
            self.sampled_energy_j,
            self.bus_grants,
            self.bus_words,
            self.icache_batches,
            self.icache_fetches,
            self.faults_injected,
            self.watchdog_trips,
            self.gate_evals,
            self.gate_events,
            self.power_transitions,
        )
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records += 1;
        match rec {
            TraceRecord::FiringStart { .. } => self.firings += 1,
            TraceRecord::FiringEnd { source, .. } => {
                if *source == "detailed" {
                    self.detailed_calls += 1;
                }
            }
            TraceRecord::LayerAnswered { layer, .. } => {
                *self.answered_by_layer.entry(layer).or_insert(0) += 1;
            }
            TraceRecord::EnergyCacheLookup { hit, .. } => {
                if *hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            TraceRecord::EnergySample { energy_j, provenance, .. } => {
                self.energy_samples += 1;
                self.sampled_energy_j += energy_j;
                *self.energy_by_provenance.entry(provenance).or_insert(0.0) += energy_j;
            }
            TraceRecord::BusGrant { words, .. } => {
                self.bus_grants += 1;
                self.bus_words += words;
            }
            TraceRecord::IcacheBatch { fetches, .. } => {
                self.icache_batches += 1;
                self.icache_fetches += fetches;
            }
            TraceRecord::FaultInjected { .. } => self.faults_injected += 1,
            TraceRecord::WatchdogTrip { .. } => self.watchdog_trips += 1,
            TraceRecord::KernelEvent { .. } => self.kernel_events += 1,
            TraceRecord::GateActivity { evals, events, .. } => {
                self.gate_evals += evals;
                self.gate_events += events;
            }
            TraceRecord::PowerTransition { at, process, from, to } => {
                self.power_transitions += 1;
                // Close the open span (a process first seen here was in
                // `from` since cycle 0) and open one in the new state.
                let (since, state) =
                    self.open_states.get(process).copied().unwrap_or((0, from));
                *self.state_cycles.entry((*process, state)).or_insert(0) +=
                    at.saturating_sub(since);
                self.open_states.insert(*process, (*at, to));
            }
            TraceRecord::RtosGrant { .. } => self.rtos_grants += 1,
        }
    }
}

/// A sink writing one JSON object per record to any writer.
///
/// Write errors are swallowed after the first (tracing must never poison
/// the simulation); [`error`](NdjsonSink::error) exposes the first one.
#[derive(Debug)]
pub struct NdjsonSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::ErrorKind>,
}

impl<W: Write> NdjsonSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        NdjsonSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Flushes the underlying writer in place. A flush failure is
    /// recorded like a write failure (first error wins, subsequent
    /// records are dropped) — never propagated as a panic.
    pub fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e.kind());
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for NdjsonSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{}", rec.to_ndjson()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e.kind()),
        }
    }
}

/// A sink keeping every record in memory (tests and post-hoc analysis).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records of one kind, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.kind() == kind).collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

/// A shareable sink: the caller keeps one handle, the simulator owns the
/// other. Single-threaded (`Rc`) by design — the co-simulation master is
/// single-threaded, and parallel sweeps attach one sink per worker.
pub struct SharedSink<T>(Rc<RefCell<T>>);

impl<T> Clone for SharedSink<T> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedSink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedSink").field(&self.0).finish()
    }
}

impl<T> SharedSink<T> {
    /// Wraps `sink` for sharing.
    pub fn new(sink: T) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Runs `f` with a shared borrow of the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Extracts the inner sink if this is the last handle, otherwise a
    /// clone of it.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl<T: TraceSink> TraceSink for SharedSink<T> {
    fn record(&mut self, rec: &TraceRecord) {
        // A sink must not panic; skip the record if the caller holds a
        // borrow at emission time (not possible from the simulator side).
        if let Ok(mut inner) = self.0.try_borrow_mut() {
            inner.record(rec);
        }
    }
}

impl<T: ProfileSink> ProfileSink for SharedSink<T> {
    fn span(&mut self, kind: SpanKind, wall: Duration) {
        if let Ok(mut inner) = self.0.try_borrow_mut() {
            inner.span(kind, wall);
        }
    }
}

/// A thread-safe shareable sink: the `Arc<Mutex<…>>` counterpart of
/// [`SharedSink`], for sinks that must cross a worker pool (one handle
/// per `explore_parallel` worker, all aggregating into the same inner
/// sink). For the single-threaded master, [`SharedSink`] stays cheaper.
pub struct ArcSharedSink<T>(Arc<Mutex<T>>);

impl<T> Clone for ArcSharedSink<T> {
    fn clone(&self) -> Self {
        ArcSharedSink(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSharedSink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcSharedSink").field(&self.0).finish()
    }
}

impl<T> ArcSharedSink<T> {
    /// Wraps `sink` for sharing across threads.
    pub fn new(sink: T) -> Self {
        ArcSharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Runs `f` with a shared view of the inner sink. Recovers the sink
    /// from a poisoned lock (a panicked peer thread) rather than
    /// propagating the panic.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        match self.0.lock() {
            Ok(guard) => f(&guard),
            Err(poisoned) => f(&poisoned.into_inner()),
        }
    }

    /// Runs `f` with exclusive access to the inner sink.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        match self.0.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }

    /// Extracts the inner sink if this is the last handle, otherwise a
    /// clone of it.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        match Arc::try_unwrap(self.0) {
            Ok(mutex) => match mutex.into_inner() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            },
            Err(arc) => match arc.lock() {
                Ok(guard) => guard.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            },
        }
    }
}

impl<T: TraceSink> TraceSink for ArcSharedSink<T> {
    fn record(&mut self, rec: &TraceRecord) {
        // A sink must not panic: a poisoned lock (panicked peer) still
        // yields the inner sink.
        match self.0.lock() {
            Ok(mut inner) => inner.record(rec),
            Err(poisoned) => poisoned.into_inner().record(rec),
        }
    }
}

impl<T: ProfileSink> ProfileSink for ArcSharedSink<T> {
    fn span(&mut self, kind: SpanKind, wall: Duration) {
        match self.0.lock() {
            Ok(mut inner) => inner.span(kind, wall),
            Err(poisoned) => poisoned.into_inner().span(kind, wall),
        }
    }
}

// ---------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------

/// The instrumented span kinds of the co-estimation stack.
///
/// Spans nest: an [`AccelDecision`](SpanKind::AccelDecision) includes
/// the time of the [`EstimatorFiring`](SpanKind::EstimatorFiring) it may
/// delegate to, which for a hardware component is also reported as
/// [`GateSimKernel`](SpanKind::GateSimKernel); a
/// [`MasterRun`](SpanKind::MasterRun) covers the whole event loop, and a
/// [`SweepPoint`](SpanKind::SweepPoint) covers one design point of an
/// exploration (construction included). Totals of different kinds
/// therefore must not be added together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One detailed estimator invocation (ISS / gate-level / linear).
    EstimatorFiring,
    /// One walk of the acceleration pipeline for one firing (includes
    /// any nested detailed invocation).
    AccelDecision,
    /// One gate-level kernel run behind a detailed hardware firing.
    GateSimKernel,
    /// One design point of an exploration sweep, end to end.
    SweepPoint,
    /// One complete master event loop (run to quiescence).
    MasterRun,
}

impl SpanKind {
    /// Every span kind, in rendering order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::EstimatorFiring,
        SpanKind::AccelDecision,
        SpanKind::GateSimKernel,
        SpanKind::SweepPoint,
        SpanKind::MasterRun,
    ];

    /// Stable lowercase tag, used in reports and JSON artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::EstimatorFiring => "estimator_firing",
            SpanKind::AccelDecision => "accel_decision",
            SpanKind::GateSimKernel => "gatesim_kernel",
            SpanKind::SweepPoint => "sweep_point",
            SpanKind::MasterRun => "master_run",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::EstimatorFiring => 0,
            SpanKind::AccelDecision => 1,
            SpanKind::GateSimKernel => 2,
            SpanKind::SweepPoint => 3,
            SpanKind::MasterRun => 4,
        }
    }
}

/// A consumer of timed spans. Object-safe, like [`TraceSink`], and under
/// the same contract: must not panic, and must never feed back into the
/// simulation (wall-clock figures stay out of golden snapshots).
pub trait ProfileSink {
    /// Consumes one completed span.
    fn span(&mut self, kind: SpanKind, wall: Duration);
}

/// The span-emission handle, mirroring [`Tracer`]: detached (the
/// default) it costs one `Option` check per site and performs **zero
/// clock reads** — [`start`](Profiler::start) returns `None` without
/// touching the monotonic clock.
#[derive(Default)]
pub struct Profiler {
    sink: Option<Box<dyn ProfileSink>>,
}

impl fmt::Debug for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Profiler {
    /// A profiler with no sink: every span is a no-op and no clock is
    /// ever read.
    pub fn disabled() -> Self {
        Profiler { sink: None }
    }

    /// A profiler forwarding every span to `sink`.
    pub fn new(sink: Box<dyn ProfileSink>) -> Self {
        Profiler { sink: Some(sink) }
    }

    /// Attaches (or replaces) the sink.
    pub fn attach(&mut self, sink: Box<dyn ProfileSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink, disabling the profiler.
    pub fn detach(&mut self) -> Option<Box<dyn ProfileSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span: reads the monotonic clock only when a sink is
    /// attached. The returned token is passed to
    /// [`finish`](Profiler::finish) (a `start`/`finish` pair instead of
    /// a guard object, so call sites with tangled borrows — the master's
    /// estimator closures — need no lifetime gymnastics).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.sink.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened by [`start`](Profiler::start) and emits it.
    /// A `None` token (profiler was detached at open time) is a no-op.
    #[inline]
    pub fn finish(&mut self, kind: SpanKind, start: Option<Instant>) {
        if let (Some(sink), Some(t0)) = (&mut self.sink, start) {
            sink.span(kind, t0.elapsed());
        }
    }

    /// Emits an already-measured span (used to mirror one measurement
    /// under a second kind, e.g. a detailed hardware firing doubling as
    /// a gate-kernel span).
    #[inline]
    pub fn record(&mut self, kind: SpanKind, wall: Option<Duration>) {
        if let (Some(sink), Some(w)) = (&mut self.sink, wall) {
            sink.span(kind, w);
        }
    }
}

/// Aggregate statistics of one span kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans observed.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u128,
    /// Longest single span, nanoseconds.
    pub max_ns: u128,
}

impl SpanStats {
    /// Mean span wall time, nanoseconds (0 when no spans).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A [`ProfileSink`] aggregating spans into count/total/mean/max per
/// kind — the profiling counterpart of [`MetricsSink`]. Thread-safe
/// sharing across a worker pool goes through
/// [`ArcSharedSink<ProfileReport>`](ArcSharedSink).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    stats: [SpanStats; 5],
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> Self {
        ProfileReport::default()
    }

    /// Aggregates one span.
    pub fn record(&mut self, kind: SpanKind, wall: Duration) {
        let s = &mut self.stats[kind.index()];
        let ns = wall.as_nanos();
        s.count += 1;
        s.total_ns += ns;
        s.max_ns = s.max_ns.max(ns);
    }

    /// The aggregate statistics of one span kind.
    pub fn stats(&self, kind: SpanKind) -> SpanStats {
        self.stats[kind.index()]
    }

    /// Total spans observed across all kinds.
    pub fn total_spans(&self) -> u64 {
        self.stats.iter().map(|s| s.count).sum()
    }

    /// Folds another report into this one (per-kind sums; max of maxes).
    pub fn merge(&mut self, other: &ProfileReport) {
        for (mine, theirs) in self.stats.iter_mut().zip(&other.stats) {
            mine.count += theirs.count;
            mine.total_ns += theirs.total_ns;
            mine.max_ns = mine.max_ns.max(theirs.max_ns);
        }
    }

    /// Renders the aggregates as a JSON object (stable key order; kinds
    /// with zero spans included so the shape is fixed).
    pub fn to_json(&self) -> String {
        let mut body = String::new();
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            let s = self.stats(*kind);
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}}",
                kind.as_str(),
                s.count,
                s.total_ns,
                s.mean_ns(),
                s.max_ns
            ));
        }
        format!("{{{body}}}")
    }

    /// Renders a human-readable table (kinds with zero spans omitted).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>17} | {:>8} | {:>12} | {:>12} | {:>12}\n",
            "span", "count", "total (ms)", "mean (us)", "max (us)"
        );
        out.push_str(&"-".repeat(72));
        out.push('\n');
        for kind in SpanKind::ALL {
            let s = self.stats(kind);
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:>17} | {:>8} | {:>12.3} | {:>12.2} | {:>12.2}\n",
                kind.as_str(),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() / 1e3,
                s.max_ns as f64 / 1e3
            ));
        }
        out
    }
}

impl ProfileSink for ProfileReport {
    fn span(&mut self, kind: SpanKind, wall: Duration) {
        self.record(kind, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::FiringStart { at: 1, process: 0, transition: 0 },
            TraceRecord::LayerAnswered {
                at: 1,
                process: 0,
                layer: "cache",
                cycles: 10,
                energy_j: 1e-9,
            },
            TraceRecord::FiringEnd {
                at: 1,
                process: 0,
                cycles: 10,
                energy_j: 1e-9,
                source: "cache",
            },
            TraceRecord::FiringStart { at: 2, process: 1, transition: 3 },
            TraceRecord::FiringEnd {
                at: 2,
                process: 1,
                cycles: 20,
                energy_j: 2e-9,
                source: "detailed",
            },
            TraceRecord::EnergyCacheLookup { at: 2, process: 1, path: 7, hit: false },
            TraceRecord::EnergySample {
                component: 1,
                start: 2,
                end: 22,
                energy_j: 2e-9,
                provenance: "measured_iss",
            },
            TraceRecord::BusGrant {
                at: 5,
                master: 1,
                start: 5,
                end: 9,
                words: 4,
                energy_j: 3e-10,
                request_done: true,
            },
            TraceRecord::FaultInjected { at: 6, description: "freeze \"p\"".into() },
            TraceRecord::WatchdogTrip { at: 9, reason: "cycle budget".into() },
            TraceRecord::GateActivity { at: 2, process: 1, evals: 120, events: 45 },
        ]
    }

    #[test]
    fn disabled_tracer_never_builds_records() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            TraceRecord::KernelEvent { at: 0, process: 0 }
        });
        assert!(!built);
        assert!(!t.enabled());
    }

    #[test]
    fn metrics_sink_aggregates() {
        let mut m = MetricsSink::new();
        for r in sample_records() {
            m.record(&r);
        }
        assert_eq!(m.firings, 2);
        assert_eq!(m.detailed_calls, 1);
        assert_eq!(m.accelerated_calls(), 1);
        assert_eq!(m.answered_by_layer.get("cache"), Some(&1));
        assert_eq!((m.cache_hits, m.cache_misses), (0, 1));
        assert_eq!(m.bus_grants, 1);
        assert_eq!(m.bus_words, 4);
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.watchdog_trips, 1);
        assert_eq!(m.gate_evals, 120);
        assert_eq!(m.gate_events, 45);
        assert!((m.sampled_energy_j - 2e-9).abs() < 1e-20);
        let json = m.to_json();
        assert!(json.contains("\"detailed_calls\": 1"), "{json}");
        assert!(json.contains("\"cache\": 1"), "{json}");
        assert!(json.contains("\"gate_evals\": 120"), "{json}");
    }

    #[test]
    fn ndjson_lines_are_valid_shape() {
        let mut sink = NdjsonSink::new(Vec::new());
        for r in sample_records() {
            sink.record(&r);
        }
        assert_eq!(sink.written(), 11);
        assert!(sink.error().is_none());
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 11);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""), "{line}");
        }
        // Escaping: the quoted fault description must stay one line and
        // escape its inner quotes.
        assert!(text.contains("freeze \\\"p\\\""));
    }

    #[test]
    fn memory_sink_filters_by_kind() {
        let mut m = MemorySink::new();
        for r in sample_records() {
            m.record(&r);
        }
        assert_eq!(m.of_kind("firing_start").len(), 2);
        assert_eq!(m.of_kind("bus_grant").len(), 1);
        assert_eq!(m.records.len(), 11);
    }

    #[test]
    fn shared_sink_observes_through_clone() {
        let shared = SharedSink::new(MetricsSink::new());
        let mut tracer = Tracer::new(Box::new(shared.clone()));
        tracer.emit(|| TraceRecord::KernelEvent { at: 3, process: 0 });
        tracer.emit(|| TraceRecord::KernelEvent { at: 4, process: 1 });
        assert_eq!(shared.with(|m| m.kernel_events), 2);
        let inner = shared.into_inner();
        assert_eq!(inner.records, 2);
    }

    #[test]
    fn tracer_attach_detach_roundtrip() {
        let mut t = Tracer::disabled();
        t.attach(Box::new(MemorySink::new()));
        assert!(t.enabled());
        t.emit(|| TraceRecord::KernelEvent { at: 0, process: 0 });
        let sink = t.detach();
        assert!(sink.is_some());
        assert!(!t.enabled());
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn metrics_sink_buckets_energy_by_provenance() {
        let mut m = MetricsSink::new();
        for (tag, e) in [("measured_iss", 2e-9), ("bus_model", 1e-9), ("measured_iss", 3e-9)] {
            m.record(&TraceRecord::EnergySample {
                component: 0,
                start: 0,
                end: 1,
                energy_j: e,
                provenance: tag,
            });
        }
        assert_eq!(m.energy_samples, 3);
        assert!((m.energy_by_provenance["measured_iss"] - 5e-9).abs() < 1e-20);
        assert!((m.energy_by_provenance["bus_model"] - 1e-9).abs() < 1e-20);
        let json = m.to_json();
        assert!(json.contains("\"energy_by_provenance\": {\"bus_model\":"), "{json}");
    }

    #[test]
    fn power_transition_renders_and_counts() {
        let rec = TraceRecord::PowerTransition {
            at: 42,
            process: 1,
            from: "active",
            to: "clock_gated",
        };
        assert_eq!(rec.kind(), "power_transition");
        assert_eq!(
            rec.to_ndjson(),
            "{\"kind\":\"power_transition\",\"at\":42,\"process\":1,\
             \"from\":\"active\",\"to\":\"clock_gated\"}"
        );
        let mut m = MetricsSink::new();
        m.record(&rec);
        assert_eq!(m.power_transitions, 1);
        assert!(m.to_json().contains("\"power_transitions\": 1"));
        // The span before the first observed transition is settled in
        // its `from` state, counted from cycle 0.
        assert_eq!(m.state_cycles.get(&(1, "active")), Some(&42));
        assert_eq!(m.open_states.get(&1), Some(&(42, "clock_gated")));
        assert!(m.to_json().contains("\"state_cycles\": {\"active\": 42, \"dvfs\": 0, \
             \"clock_gated\": 0, \"power_gated\": 0}"));
    }

    #[test]
    fn power_residency_reconstructs_spans_and_tails() {
        let mut m = MetricsSink::new();
        let tr = |at, from, to| TraceRecord::PowerTransition { at, process: 0, from, to };
        m.record(&tr(100, "active", "clock_gated"));
        m.record(&tr(150, "clock_gated", "active"));
        m.record(&tr(300, "active", "clock_gated"));
        // Closed: active 100 + 150, gated 50; open: gated since 300.
        assert_eq!(m.power_residency(0, "active", 400), 250);
        assert_eq!(m.power_residency(0, "clock_gated", 400), 150);
        assert_eq!(m.power_residency(0, "power_gated", 400), 0);
        // Residency partitions the horizon exactly.
        assert_eq!(
            m.power_residency(0, "active", 400) + m.power_residency(0, "clock_gated", 400),
            400
        );
        // A process never mentioned is active for the whole run; a
        // synthetic cycle-0 record pins a non-active base state.
        assert_eq!(m.power_residency(7, "active", 400), 400);
        assert_eq!(m.power_residency(7, "dvfs", 400), 0);
        m.record(&TraceRecord::PowerTransition {
            at: 0,
            process: 2,
            from: "active",
            to: "dvfs",
        });
        assert_eq!(m.power_residency(2, "dvfs", 400), 400);
        assert_eq!(m.power_residency(2, "active", 400), 0);
    }

    #[test]
    fn metrics_to_json_shape_is_stable() {
        // Golden-ish shape pin: the key set and order of the JSON form
        // are part of the benchmark-artifact contract. An empty sink
        // renders every key with its zero value.
        let expected = "{\"records\": 0, \"firings\": 0, \"detailed_calls\": 0, \
             \"accelerated_calls\": 0, \"answered_by_layer\": {}, \
             \"cache_hits\": 0, \"cache_misses\": 0, \"energy_samples\": 0, \
             \"sampled_energy_j\": 0e0, \"energy_by_provenance\": {}, \
             \"bus_grants\": 0, \"bus_words\": 0, \
             \"icache_batches\": 0, \"icache_fetches\": 0, \"faults_injected\": 0, \
             \"watchdog_trips\": 0, \"gate_evals\": 0, \"gate_events\": 0, \
             \"power_transitions\": 0, \"state_cycles\": {\"active\": 0, \
             \"dvfs\": 0, \"clock_gated\": 0, \"power_gated\": 0}}";
        assert_eq!(MetricsSink::new().to_json(), expected);
    }

    /// A writer that fails after `ok_writes` successful writes.
    struct FailingWriter {
        ok_writes: usize,
        fail_flush: bool,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "full"))
            } else {
                self.ok_writes -= 1;
                Ok(buf.len())
            }
        }

        fn flush(&mut self) -> std::io::Result<()> {
            if self.fail_flush {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn ndjson_sink_swallows_write_errors_after_the_first() {
        // `writeln!` issues two writes per record (payload, then the
        // newline), so a budget of 4 admits exactly two records.
        let mut sink = NdjsonSink::new(FailingWriter { ok_writes: 4, fail_flush: false });
        for _ in 0..5 {
            sink.record(&TraceRecord::KernelEvent { at: 0, process: 0 });
        }
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.error(), Some(std::io::ErrorKind::WriteZero));
        // Recording after the first error is a silent no-op.
        sink.record(&TraceRecord::KernelEvent { at: 9, process: 0 });
        assert_eq!(sink.written(), 2);
    }

    #[test]
    fn ndjson_sink_flush_records_flush_errors() {
        let mut sink = NdjsonSink::new(FailingWriter { ok_writes: 10, fail_flush: true });
        sink.record(&TraceRecord::KernelEvent { at: 0, process: 0 });
        assert!(sink.error().is_none());
        sink.flush();
        assert_eq!(sink.error(), Some(std::io::ErrorKind::BrokenPipe));
        // A later write error must not overwrite the first failure.
        let mut sink = NdjsonSink::new(FailingWriter { ok_writes: 0, fail_flush: true });
        sink.record(&TraceRecord::KernelEvent { at: 0, process: 0 });
        sink.flush();
        assert_eq!(sink.error(), Some(std::io::ErrorKind::WriteZero));
    }

    #[test]
    fn ndjson_sink_flush_is_clean_on_healthy_writer() {
        let mut sink = NdjsonSink::new(Vec::new());
        sink.record(&TraceRecord::KernelEvent { at: 0, process: 0 });
        sink.flush();
        assert!(sink.error().is_none());
        assert_eq!(sink.written(), 1);
    }

    #[test]
    fn arc_shared_sink_observes_through_clone() {
        let shared = ArcSharedSink::new(MetricsSink::new());
        let mut tracer = Tracer::new(Box::new(shared.clone()));
        tracer.emit(|| TraceRecord::KernelEvent { at: 3, process: 0 });
        tracer.emit(|| TraceRecord::KernelEvent { at: 4, process: 1 });
        assert_eq!(shared.with(|m| m.kernel_events), 2);
        drop(tracer);
        let inner = shared.into_inner();
        assert_eq!(inner.records, 2);
    }

    #[test]
    fn arc_shared_sink_aggregates_across_threads() {
        let shared = ArcSharedSink::new(MetricsSink::new());
        std::thread::scope(|s| {
            for worker in 0..4u32 {
                let mut sink = shared.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        sink.record(&TraceRecord::KernelEvent { at: i, process: worker });
                    }
                });
            }
        });
        assert_eq!(shared.with(|m| m.kernel_events), 100);
    }

    #[test]
    fn profiler_disabled_reads_no_clock_and_emits_nothing() {
        let prof = Profiler::disabled();
        assert!(!prof.enabled());
        assert!(prof.start().is_none(), "no clock read when detached");
        let mut prof = prof;
        prof.finish(SpanKind::MasterRun, None);
        prof.record(SpanKind::GateSimKernel, None);
    }

    #[test]
    fn profiler_aggregates_spans_into_report() {
        let shared = SharedSink::new(ProfileReport::new());
        let mut prof = Profiler::new(Box::new(shared.clone()));
        assert!(prof.enabled());
        for _ in 0..3 {
            let t0 = prof.start();
            assert!(t0.is_some());
            prof.finish(SpanKind::EstimatorFiring, t0);
        }
        prof.record(SpanKind::GateSimKernel, Some(Duration::from_micros(5)));
        let report = shared.with(|r| r.clone());
        assert_eq!(report.stats(SpanKind::EstimatorFiring).count, 3);
        assert_eq!(report.stats(SpanKind::GateSimKernel).count, 1);
        assert_eq!(report.stats(SpanKind::GateSimKernel).total_ns, 5_000);
        assert_eq!(report.stats(SpanKind::SweepPoint).count, 0);
        assert_eq!(report.total_spans(), 4);
    }

    #[test]
    fn profile_report_stats_and_merge() {
        let mut a = ProfileReport::new();
        a.record(SpanKind::SweepPoint, Duration::from_nanos(100));
        a.record(SpanKind::SweepPoint, Duration::from_nanos(300));
        let s = a.stats(SpanKind::SweepPoint);
        assert_eq!((s.count, s.total_ns, s.max_ns), (2, 400, 300));
        assert!((s.mean_ns() - 200.0).abs() < 1e-9);

        let mut b = ProfileReport::new();
        b.record(SpanKind::SweepPoint, Duration::from_nanos(700));
        b.record(SpanKind::MasterRun, Duration::from_nanos(50));
        a.merge(&b);
        let s = a.stats(SpanKind::SweepPoint);
        assert_eq!((s.count, s.total_ns, s.max_ns), (3, 1_100, 700));
        assert_eq!(a.stats(SpanKind::MasterRun).count, 1);
    }

    #[test]
    fn profile_report_render_and_json_shape() {
        let mut r = ProfileReport::new();
        r.record(SpanKind::AccelDecision, Duration::from_micros(2));
        let json = r.to_json();
        for kind in SpanKind::ALL {
            assert!(json.contains(&format!("\"{}\"", kind.as_str())), "{json}");
        }
        let text = r.render();
        assert!(text.contains("accel_decision"));
        assert!(!text.contains("sweep_point"), "zero-count kinds omitted:\n{text}");
    }

    #[test]
    fn arc_shared_profile_report_across_threads() {
        let shared = ArcSharedSink::new(ProfileReport::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sink = shared.clone();
                s.spawn(move || {
                    let mut prof = Profiler::new(Box::new(sink));
                    for _ in 0..10 {
                        let t0 = prof.start();
                        prof.finish(SpanKind::SweepPoint, t0);
                    }
                });
            }
        });
        assert_eq!(shared.with(|r| r.stats(SpanKind::SweepPoint).count), 40);
    }
}
