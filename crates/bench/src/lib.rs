//! `soc-bench` — the evaluation harness: one regeneration routine per
//! table and figure of the paper's §5, shared between the printable
//! binaries (`cargo run -p soc-bench --bin table1` etc.) and the
//! Criterion benchmarks.
//!
//! | Paper result | Routine | Binary |
//! |---|---|---|
//! | Fig. 1(b) | [`fig1b`] | `fig1b` |
//! | Fig. 4(b) | [`fig4_histograms`] | `fig4_histograms` |
//! | Table 1 | [`table1`] | `table1` |
//! | Table 2 | [`table2`] | `table2` |
//! | Fig. 6 | [`fig6`] | `fig6` |
//! | Fig. 7 | [`fig7`] | `fig7` |
//! | §5.2 (DSP caching error) | [`caching_dsp_ablation`] | `ablation_caching_dsp` |
//! | §4.3 (compaction) | [`sampling_ablation`] | `ablation_sampling` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// This crate is the evaluation/benchmark harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{
    estimate_separately, Acceleration, CachingConfig, CoSimConfig, CoSimReport, CoSimulator,
    ExplorationPoint, ExploreOptions, SamplingConfig, SweepReport, SweepStats, TimelineOptions,
};
use soctrace::{ArcSharedSink, PowerTimelineSink, ProfileReport, TimelineConfig, TimelineReport};
use std::time::Instant;
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

/// The caching thresholds used in the Table 1 reproduction (the paper
/// exposes them as user knobs; these reproduce its speedup band with
/// negligible error).
pub fn table1_caching() -> CachingConfig {
    CachingConfig {
        thresh_variance: 0.20,
        thresh_iss_calls: 2,
        keep_samples: false,
    }
}

/// The DMA block sizes swept in Tables 1 and 2.
pub const TABLE_DMA_SIZES: [u32; 6] = [2, 4, 8, 16, 32, 64];

/// The DMA block sizes swept in Figure 7 (6 priority orders × 8 sizes =
/// 48 design points).
pub const FIG7_DMA_SIZES: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Runs one co-estimation and measures its wall-clock cost.
pub fn timed_run(soc: co_estimation::SocDescription, config: CoSimConfig) -> (CoSimReport, f64) {
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let t0 = Instant::now();
    let report = sim.run();
    (report, t0.elapsed().as_secs_f64())
}

/// Runs one co-estimation with a [`MetricsSink`](soctrace::MetricsSink)
/// attached and returns the report plus the aggregated trace counters
/// (detailed vs. accelerated calls per layer, cache hit rate, bus and
/// i-cache traffic) — the observability cross-check the benchmark
/// reports alongside its timings.
pub fn run_with_metrics(
    soc: co_estimation::SocDescription,
    config: CoSimConfig,
) -> (CoSimReport, soctrace::MetricsSink) {
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let shared = soctrace::SharedSink::new(soctrace::MetricsSink::new());
    sim.attach_trace(Box::new(shared.clone()));
    let report = sim.run();
    drop(sim);
    (report, shared.into_inner())
}

// ---------------------------------------------------------------------
// Observability: accuracy vs. speedup with provenance attribution
// ---------------------------------------------------------------------

/// The acceleration modes the observability report compares: the
/// all-detailed baseline and one mode per §4 technique.
pub fn observe_modes() -> Vec<(&'static str, Acceleration)> {
    vec![
        ("baseline", Acceleration::none()),
        ("caching", Acceleration::caching(table1_caching())),
        ("macromodel", Acceleration::macromodel()),
        ("sampling", Acceleration::sampling(SamplingConfig { period: 4 })),
    ]
}

/// Runs one co-estimation with the full observability stack attached —
/// span profiler, metrics trace sink, provenance verification — and
/// returns `(report, profile, metrics)`. Panics if the provenance
/// breakdown fails its bit-identity contract.
pub fn run_observed(
    soc: co_estimation::SocDescription,
    config: CoSimConfig,
) -> (CoSimReport, ProfileReport, soctrace::MetricsSink) {
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let metrics = soctrace::SharedSink::new(soctrace::MetricsSink::new());
    let profile = soctrace::SharedSink::new(ProfileReport::new());
    sim.attach_trace(Box::new(metrics.clone()));
    sim.attach_profile(Box::new(profile.clone()));
    let report = sim.run();
    report
        .verify_provenance()
        .expect("provenance sums bit-exactly to report totals");
    drop(sim);
    (report, profile.into_inner(), metrics.into_inner())
}

/// One technique row of the paper-style accuracy-vs-speedup table.
#[derive(Debug, Clone)]
pub struct ObserveRow {
    /// Technique name (`baseline`, `caching`, `macromodel`, `sampling`).
    pub technique: &'static str,
    /// Total energy under this technique, joules.
    pub energy_j: f64,
    /// Absolute relative energy error vs. the all-detailed baseline, %.
    pub error_pct: f64,
    /// Wall-clock speedup vs. the baseline (detached runs both sides).
    pub speedup: f64,
    /// Wall-clock of the (detached) run, seconds.
    pub wall_s: f64,
    /// Fraction of firings answered without a detailed ISS/gate-level
    /// call, percent.
    pub iss_reduction_pct: f64,
    /// The full observed report (provenance, effectiveness counters).
    pub report: CoSimReport,
}

/// Builds the accuracy-vs-speedup rows on the TCP/IP system: for each
/// mode, one detached timed run (honest speedup) plus one fully observed
/// run (provenance + profile + metrics, results bit-identical).
pub fn observe_rows(params: &TcpIpParams) -> Vec<ObserveRow> {
    let config = CoSimConfig::date2000_defaults();
    let mut rows: Vec<ObserveRow> = Vec::new();
    let mut baseline: Option<(f64, f64)> = None; // (energy, wall)
    for (name, accel) in observe_modes() {
        let cfg = config.clone().with_accel(accel);
        let (timed, wall_s) = timed_run(tcpip::build(params).expect("valid params"), cfg.clone());
        let (observed, _profile, _metrics) =
            run_observed(tcpip::build(params).expect("valid params"), cfg);
        assert_eq!(
            timed.golden_snapshot(),
            observed.golden_snapshot(),
            "observability must not perturb results ({name})"
        );
        let (base_e, base_wall) = *baseline.get_or_insert((timed.total_energy_j(), wall_s));
        let iss_reduction_pct = if observed.firings == 0 {
            0.0
        } else {
            100.0 * observed.accelerated_calls as f64 / observed.firings as f64
        };
        rows.push(ObserveRow {
            technique: name,
            energy_j: timed.total_energy_j(),
            error_pct: 100.0 * ((timed.total_energy_j() - base_e) / base_e).abs(),
            speedup: base_wall / wall_s,
            wall_s,
            iss_reduction_pct,
            report: observed,
        });
    }
    rows
}

/// Renders the accuracy-vs-speedup table in the paper's style.
pub fn render_observe_table(rows: &[ObserveRow]) -> String {
    let mut s = format!(
        "{:<11} | {:>12} | {:>7} | {:>8} | {:>10}\n",
        "Technique", "Energy (J)", "Err %", "Speedup", "ISS red. %"
    );
    s.push_str(&"-".repeat(62));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<11} | {:>12.4e} | {:>6.2}% | {:>7.2}x | {:>9.1}%\n",
            r.technique, r.energy_j, r.error_pct, r.speedup, r.iss_reduction_pct
        ));
    }
    s
}

/// Passes per timing side of the overhead measurements. Each side
/// reports its *minimum* wall over the passes (the `bench_gatesim`
/// idiom): the minimum estimates the sweep's cost rather than the
/// host's transient load, which a single pass per side cannot — the
/// one-pass version of this measurement reported negative overheads on
/// busy hosts.
const OVERHEAD_PASSES: usize = 3;

/// Runs `passes` timed calls of `sweep` and returns the best (minimum)
/// wall time together with the last pass's result.
fn best_of<T>(passes: usize, mut sweep: impl FnMut() -> T) -> (f64, T) {
    let mut best_s = f64::INFINITY;
    let mut last = None;
    for _ in 0..passes {
        let t0 = Instant::now();
        let out = sweep();
        best_s = best_s.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best_s, last.expect("at least one pass"))
}

/// Measures the profiler's cost on the Fig. 7 sweep: best-of-N detached
/// passes vs. best-of-N attached passes of the same serial sweep,
/// asserted bit-identical. Each attached pass gets a fresh sink so the
/// returned profile's span counts describe a single sweep. Returns
/// `(detached_s, attached_s, profile)`.
pub fn fig7_profile_overhead(params: &TcpIpParams) -> (f64, f64, ProfileReport) {
    let _ = fig7_parallel(params, &ExploreOptions::serial()); // warm-up
    let (detached_s, detached) =
        best_of(OVERHEAD_PASSES, || fig7_parallel(params, &ExploreOptions::serial()));
    let (attached_s, (attached, sink)) = best_of(OVERHEAD_PASSES, || {
        let sink = ArcSharedSink::new(ProfileReport::new());
        let sweep = fig7_parallel(params, &ExploreOptions::serial().profiled(sink.clone()));
        (sweep, sink)
    });
    assert_eq!(detached.points.len(), attached.points.len());
    assert!(
        detached
            .points
            .iter()
            .zip(&attached.points)
            .all(|(a, b)| a.report.golden_snapshot() == b.report.golden_snapshot()),
        "profiling must not perturb the sweep"
    );
    (detached_s, attached_s, sink.with(|r| r.clone()))
}

/// Measures the power-timeline sink's cost on the Fig. 7 sweep:
/// best-of-N detached passes vs. best-of-N passes with a per-point
/// [`soctrace::PowerTimelineSink`] attached
/// ([`ExploreOptions::with_timeline`]), asserted bit-identical.
/// Returns `(detached_s, timed_s, point_peaks_w)` — the per-point
/// peak-window powers from the last timed pass.
pub fn fig7_timeline_overhead(params: &TcpIpParams) -> (f64, f64, Vec<f64>) {
    let _ = fig7_parallel(params, &ExploreOptions::serial()); // warm-up
    let (detached_s, detached) =
        best_of(OVERHEAD_PASSES, || fig7_parallel(params, &ExploreOptions::serial()));
    let (timed_s, timed) = best_of(OVERHEAD_PASSES, || {
        fig7_parallel(
            params,
            &ExploreOptions::serial().with_timeline(TimelineOptions::default()),
        )
    });
    assert_eq!(detached.points.len(), timed.points.len());
    assert!(
        detached
            .points
            .iter()
            .zip(&timed.points)
            .all(|(a, b)| a.report.golden_snapshot() == b.report.golden_snapshot()),
        "the timeline sink must not perturb the sweep"
    );
    assert_eq!(timed.stats.point_peak_power_w.len(), timed.points.len());
    (detached_s, timed_s, timed.stats.point_peak_power_w)
}

/// Runs one co-estimation with a [`PowerTimelineSink`] attached and
/// returns the (bit-identical) report plus the binned timeline.
pub fn timeline_run(
    soc: co_estimation::SocDescription,
    config: CoSimConfig,
    window_cycles: u64,
) -> (CoSimReport, TimelineReport) {
    let clock_hz = config.clock_hz;
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let sink = soctrace::SharedSink::new(PowerTimelineSink::new(TimelineConfig::new(
        window_cycles,
        clock_hz,
    )));
    sim.attach_trace(Box::new(sink.clone()));
    let report = sim.run();
    let names = sim.component_names();
    let timeline = sink.with(|s| s.report(&names, report.total_cycles));
    (report, timeline)
}

// ---------------------------------------------------------------------
// Fig. 1(b)
// ---------------------------------------------------------------------

/// One row of the Fig. 1(b) comparison.
#[derive(Debug, Clone)]
pub struct Fig1bRow {
    /// Process name.
    pub name: String,
    /// Energy from separate estimation, joules.
    pub separate_j: f64,
    /// Energy from co-estimation, joules.
    pub coest_j: f64,
}

impl Fig1bRow {
    /// Relative error of the separate estimate vs. co-estimation.
    pub fn separate_error(&self) -> f64 {
        (self.separate_j - self.coest_j) / self.coest_j
    }
}

/// Reproduces Fig. 1(b): separate vs. co-estimated energies of the
/// producer / timer / consumer system.
pub fn fig1b(params: &ProducerConsumerParams) -> Vec<Fig1bRow> {
    let soc = producer_consumer::build(params).expect("valid params");
    let config = CoSimConfig::date2000_defaults();
    let sep = estimate_separately(&soc, &config).expect("separate estimation");
    let (co, _) = timed_run(soc, config);
    co.processes
        .iter()
        .map(|p| Fig1bRow {
            name: p.name.clone(),
            separate_j: sep.process_energy_j(&p.name),
            coest_j: p.energy_j,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 4(b)
// ---------------------------------------------------------------------

/// A per-path energy histogram.
#[derive(Debug, Clone)]
pub struct PathHistogram {
    /// Process name.
    pub process: String,
    /// Number of executions observed.
    pub count: usize,
    /// Coefficient of variation of the energies.
    pub cv: f64,
    /// Histogram bin counts.
    pub bins: Vec<u32>,
    /// Bin width, joules.
    pub bin_width_j: f64,
    /// Lowest bin edge, joules.
    pub origin_j: f64,
}

/// Reproduces Fig. 4(b): runs the TCP/IP system in profiling mode and
/// returns the energy histograms of the most-executed low-variance and
/// high-variance paths.
pub fn fig4_histograms(params: &TcpIpParams, n_bins: usize) -> Vec<PathHistogram> {
    let soc = tcpip::build(params).expect("valid params");
    let config = CoSimConfig::date2000_defaults()
        .with_accel(Acceleration::caching(CachingConfig::profiling()));
    let names: Vec<String> = soc
        .network
        .process_ids()
        .map(|p| soc.network.cfsm(p).name().to_string())
        .collect();
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let _ = sim.run();
    let cache = sim.energy_cache().expect("profiling cache present");
    // Most-executed path with CV below 1e-6 (flat) and the most-executed
    // path with the largest CV (spread).
    let mut flat: Option<(&co_estimation::PathStats, cfsm::ProcId)> = None;
    let mut spread: Option<(&co_estimation::PathStats, cfsm::ProcId)> = None;
    for (&(p, _), st) in cache.iter() {
        if st.samples.len() < 6 {
            continue;
        }
        let cv = st.energy.coeff_of_variation();
        if cv < 1e-6 {
            if flat.is_none_or(|(f, _)| st.samples.len() > f.samples.len()) {
                flat = Some((st, p));
            }
        } else if spread.is_none_or(|(s, _)| {
            cv * (st.samples.len() as f64) > s.energy.coeff_of_variation() * s.samples.len() as f64
        }) {
            spread = Some((st, p));
        }
    }
    [flat, spread]
        .into_iter()
        .flatten()
        .map(|(st, p)| {
            let lo = st.energy.min();
            let hi = st.energy.max();
            let width = ((hi - lo) / n_bins as f64).max(f64::MIN_POSITIVE);
            let mut bins = vec![0u32; n_bins];
            for &s in &st.samples {
                let b = (((s - lo) / width) as usize).min(n_bins - 1);
                bins[b] += 1;
            }
            PathHistogram {
                process: names[p.0 as usize].clone(),
                count: st.samples.len(),
                cv: st.energy.coeff_of_variation(),
                bins,
                bin_width_j: width,
                origin_j: lo,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Tables 1 and 2
// ---------------------------------------------------------------------

/// One row of a Table 1/2-style sweep.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// DMA block size.
    pub dma: u32,
    /// Baseline ("Orig.") energy, joules.
    pub orig_energy_j: f64,
    /// Baseline wall-clock time, seconds.
    pub orig_secs: f64,
    /// Accelerated energy, joules.
    pub accel_energy_j: f64,
    /// Accelerated wall-clock time, seconds.
    pub accel_secs: f64,
}

impl SpeedupRow {
    /// Wall-clock speedup of the accelerated run.
    pub fn speedup(&self) -> f64 {
        self.orig_secs / self.accel_secs
    }

    /// Absolute relative energy error of the accelerated run, percent.
    pub fn error_pct(&self) -> f64 {
        100.0 * ((self.accel_energy_j - self.orig_energy_j) / self.orig_energy_j).abs()
    }
}

/// Sweeps DMA sizes with one acceleration setting against the baseline.
pub fn speedup_sweep(
    params: &TcpIpParams,
    accel: Acceleration,
    dma_sizes: &[u32],
) -> Vec<SpeedupRow> {
    dma_sizes
        .iter()
        .map(|&dma| {
            let config = CoSimConfig::date2000_defaults().with_dma_block_size(dma);
            let (orig, orig_secs) = timed_run(tcpip::build(params).expect("valid params"), config.clone());
            let (fast, accel_secs) =
                timed_run(tcpip::build(params).expect("valid params"), config.with_accel(accel.clone()));
            SpeedupRow {
                dma,
                orig_energy_j: orig.total_energy_j(),
                orig_secs,
                accel_energy_j: fast.total_energy_j(),
                accel_secs,
            }
        })
        .collect()
}

/// Table 1: energy caching speedup/accuracy over the DMA sweep.
pub fn table1(params: &TcpIpParams) -> Vec<SpeedupRow> {
    speedup_sweep(
        params,
        Acceleration::caching(table1_caching()),
        &TABLE_DMA_SIZES,
    )
}

/// Table 2: macro-modeling speedup/accuracy over the DMA sweep.
pub fn table2(params: &TcpIpParams) -> Vec<SpeedupRow> {
    speedup_sweep(params, Acceleration::macromodel(), &TABLE_DMA_SIZES)
}

// ---------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------

/// One point of the Fig. 6 relative-accuracy scatter.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// DMA block size of the configuration.
    pub dma: u32,
    /// Energy from the vanilla framework, joules.
    pub orig_j: f64,
    /// Energy with macro-modeling, joules.
    pub macro_j: f64,
}

/// Reproduces Fig. 6: macro-model vs. original energy per configuration.
pub fn fig6(params: &TcpIpParams) -> Vec<Fig6Point> {
    table2(params)
        .into_iter()
        .map(|r| Fig6Point {
            dma: r.dma,
            orig_j: r.orig_energy_j,
            macro_j: r.accel_energy_j,
        })
        .collect()
}

/// Whether two energy vectors rank their configurations identically
/// (the "tracking fidelity" property of Fig. 6).
pub fn ranks_agree(points: &[Fig6Point]) -> bool {
    let rank = |key: &dyn Fn(&Fig6Point) -> f64| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| {
            key(&points[a])
                .partial_cmp(&key(&points[b]))
                .expect("energies are not NaN")
        });
        idx
    };
    rank(&|p| p.orig_j) == rank(&|p| p.macro_j)
}

// ---------------------------------------------------------------------
// Fig. 7
// ---------------------------------------------------------------------

/// Reproduces Fig. 7: the 6-permutation × 8-DMA-size exploration of the
/// TCP/IP communication architecture (48 points), evaluated on the
/// parallel sweep engine with the given options. The returned points are
/// bit-for-bit identical to the serial sweep's at any worker count.
pub fn fig7_parallel(
    params: &TcpIpParams,
    options: &ExploreOptions,
) -> SweepReport<ExplorationPoint> {
    let soc = tcpip::build(params).expect("valid params");
    let procs: Vec<cfsm::ProcId> = ["create_pack", "ip_check", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect();
    co_estimation::explore_bus_architecture_parallel(
        &soc,
        &CoSimConfig::date2000_defaults(),
        &procs,
        &FIG7_DMA_SIZES,
        options,
    )
    .expect("exploration builds")
}

/// Reproduces Fig. 7 with all the parallelism the host offers, returning
/// just the 48 points (identical to the serial sweep's).
pub fn fig7(params: &TcpIpParams) -> Vec<ExplorationPoint> {
    fig7_parallel(params, &ExploreOptions::default()).points
}

/// The serial-reference Fig. 7 sweep (kept for differential testing and
/// the throughput baseline of `bench_explore`).
pub fn fig7_serial(params: &TcpIpParams) -> Vec<ExplorationPoint> {
    let soc = tcpip::build(params).expect("valid params");
    let procs: Vec<cfsm::ProcId> = ["create_pack", "ip_check", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect();
    co_estimation::explore_bus_architecture(
        &soc,
        &CoSimConfig::date2000_defaults(),
        &procs,
        &FIG7_DMA_SIZES,
    )
    .expect("exploration builds")
}

/// Renders sweep metrics as a one-line summary for the bench binaries.
pub fn render_sweep_stats(stats: &SweepStats) -> String {
    format!(
        "{} points in {:.1} ms ({:.1} points/s, {} workers, {} degraded)",
        stats.points, stats.wall_ms, stats.points_per_sec, stats.workers, stats.degraded
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// The caching-error ablation of §5.2: with a data-dependent (DSP-like)
/// instruction power model, caching is no longer free. Returns
/// `(sparclite_error_pct, dsp_error_pct)`.
pub fn caching_dsp_ablation(params: &TcpIpParams) -> (f64, f64) {
    let mut errors = [0.0f64; 2];
    for (i, kind) in [
        iss::PowerModelKind::SparcLite,
        iss::PowerModelKind::DataDependent,
    ]
    .into_iter()
    .enumerate()
    {
        let mut config = CoSimConfig::date2000_defaults();
        config.sw_power = kind;
        let (orig, _) = timed_run(tcpip::build(params).expect("valid params"), config.clone());
        let (cached, _) = timed_run(
            tcpip::build(params).expect("valid params"),
            config.with_accel(Acceleration::caching(table1_caching())),
        );
        errors[i] = 100.0
            * ((cached.total_energy_j() - orig.total_energy_j()) / orig.total_energy_j()).abs();
    }
    (errors[0], errors[1])
}

/// Firing-level sampling sweep: error and detailed-call reduction per
/// sampling period. Returns `(period, error_pct, detailed_fraction)`.
pub fn sampling_ablation(params: &TcpIpParams, periods: &[u32]) -> Vec<(u32, f64, f64)> {
    let config = CoSimConfig::date2000_defaults();
    let (orig, _) = timed_run(tcpip::build(params).expect("valid params"), config.clone());
    periods
        .iter()
        .map(|&period| {
            let (s, _) = timed_run(
                tcpip::build(params).expect("valid params"),
                config.with_accel(Acceleration::sampling(SamplingConfig { period })),
            );
            let err = 100.0
                * ((s.total_energy_j() - orig.total_energy_j()) / orig.total_energy_j()).abs();
            let frac = s.detailed_calls as f64 / s.firings as f64;
            (period, err, frac)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------

/// Renders a speedup table in the paper's layout.
pub fn render_speedup_table(rows: &[SpeedupRow], accel_name: &str, with_error: bool) -> String {
    let mut s = String::new();
    if with_error {
        s.push_str(&format!(
            "{:>4} | {:>12} {:>10} | {:>12} {:>10} | {:>8} | {:>7}\n",
            "DMA", "Orig E (J)", "CPU (s)", format!("{accel_name} E (J)"), "CPU (s)", "Speedup", "Err %"
        ));
    } else {
        s.push_str(&format!(
            "{:>4} | {:>12} {:>10} | {:>10} | {:>8}\n",
            "DMA", "Orig E (J)", "CPU (s)", "CPU (s)", "Speedup"
        ));
    }
    s.push_str(&"-".repeat(78));
    s.push('\n');
    for r in rows {
        if with_error {
            s.push_str(&format!(
                "{:>4} | {:>12.4e} {:>10.3} | {:>12.4e} {:>10.3} | {:>7.1}x | {:>6.1}%\n",
                r.dma,
                r.orig_energy_j,
                r.orig_secs,
                r.accel_energy_j,
                r.accel_secs,
                r.speedup(),
                r.error_pct(),
            ));
        } else {
            s.push_str(&format!(
                "{:>4} | {:>12.4e} {:>10.3} | {:>10.3} | {:>7.1}x\n",
                r.dma,
                r.orig_energy_j,
                r.orig_secs,
                r.accel_secs,
                r.speedup(),
            ));
        }
    }
    let avg: f64 = rows.iter().map(SpeedupRow::speedup).sum::<f64>() / rows.len().max(1) as f64;
    s.push_str(&format!("average speedup: {avg:.1}x\n"));
    if with_error {
        let avg_err: f64 =
            rows.iter().map(SpeedupRow::error_pct).sum::<f64>() / rows.len().max(1) as f64;
        s.push_str(&format!("average |error|: {avg_err:.1}%\n"));
    }
    s
}

/// Renders an ASCII histogram.
pub fn render_histogram(h: &PathHistogram) -> String {
    let mut s = format!(
        "process {}  ({} executions, CV = {:.3})\n",
        h.process, h.count, h.cv
    );
    let max = *h.bins.iter().max().unwrap_or(&1) as f64;
    for (i, &b) in h.bins.iter().enumerate() {
        let lo = h.origin_j + i as f64 * h.bin_width_j;
        let bar = "#".repeat(((b as f64 / max) * 50.0).round() as usize);
        s.push_str(&format!("{:>10.3e} J | {:>4} {}\n", lo, b, bar));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tcpip() -> TcpIpParams {
        TcpIpParams {
            num_packets: 12,
            len_range: (8, 24),
            pkt_period: 5_000,
            seed: 3,
        }
    }

    #[test]
    fn fig1b_reproduces_consumer_underestimate() {
        let rows = fig1b(&ProducerConsumerParams {
            num_pkts: 6,
            pkt_bytes: 64,
            start_period: 600,
            tick_period: 150,
            num_starts: 40,
        });
        let producer = rows.iter().find(|r| r.name == "producer").expect("row");
        let consumer = rows.iter().find(|r| r.name == "consumer").expect("row");
        assert!(
            producer.separate_error().abs() < 0.01,
            "producer energies agree"
        );
        assert!(
            consumer.separate_error() < -0.2,
            "separate under-estimates the consumer (got {:.1}%)",
            100.0 * consumer.separate_error()
        );
    }

    #[test]
    fn table1_caching_has_negligible_error_and_speedup() {
        let rows = table1(&small_tcpip());
        assert_eq!(rows.len(), TABLE_DMA_SIZES.len());
        for r in &rows {
            assert!(r.error_pct() < 1.0, "caching error {}%", r.error_pct());
        }
        // Energy decreases with DMA size (endpoints; intermediate points
        // may wiggle slightly with contention patterns on tiny workloads).
        let first = rows.first().expect("nonempty");
        let last = rows.last().expect("nonempty");
        assert!(
            first.orig_energy_j > last.orig_energy_j,
            "DMA {} should cost more than DMA {}",
            first.dma,
            last.dma
        );
    }

    #[test]
    fn table2_macromodel_overestimates_consistently() {
        let rows = table2(&small_tcpip());
        for r in &rows {
            assert!(
                r.accel_energy_j > r.orig_energy_j,
                "macro-model is conservative"
            );
            assert!(r.error_pct() < 60.0, "error stays bounded");
        }
    }

    #[test]
    fn fig6_preserves_ranking() {
        let points = fig6(&small_tcpip());
        assert!(ranks_agree(&points), "macro-model must preserve ranking");
    }

    #[test]
    fn fig7_covers_48_points_and_finds_minimum() {
        let points = fig7(&TcpIpParams::fig7_defaults());
        assert_eq!(points.len(), 6 * 8);
        let min = co_estimation::minimum_energy(&points).expect("nonempty");
        assert!(min.energy_j() > 0.0);
        // The energy-minimal point uses a large DMA block (the paper
        // finds DMA = 128; with ≤48-word packets, 64 and 128 tie).
        assert!(
            min.dma_block_size >= 64,
            "minimum at DMA {}",
            min.dma_block_size
        );
    }

    #[test]
    fn histograms_distinguish_flat_and_spread_paths() {
        let hs = fig4_histograms(
            &TcpIpParams {
                num_packets: 24,
                ..small_tcpip()
            },
            12,
        );
        assert!(!hs.is_empty());
        // At least one flat (CV ~ 0) path must exist (SW paths).
        assert!(hs.iter().any(|h| h.cv < 1e-6));
        for h in &hs {
            assert_eq!(h.bins.iter().sum::<u32>() as usize, h.count);
        }
    }

    #[test]
    fn render_helpers_do_not_panic() {
        let rows = table1(&TcpIpParams {
            num_packets: 4,
            len_range: (8, 16),
            pkt_period: 5_000,
            seed: 1,
        });
        let t = render_speedup_table(&rows, "Caching", true);
        assert!(t.contains("Speedup"));
    }
}
