//! Verification benchmark: what does the static liveness checker cost,
//! and what watchdog-timeout cost does it avoid?
//!
//! Three measurements, written as `BENCH_verify.json`:
//!
//! 1. checker wall time on the three reference systems (must be clean);
//! 2. checker wall time across a generated fuzz sweep (live +
//!    deadlocking), asserting zero false positives / false negatives;
//! 3. the dynamic alternative: simulating doomed specs until the
//!    watchdog trips, i.e. the per-spec cost the checker's microseconds
//!    replace.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_verify [out.json]
//!   cargo run --release -p soc-bench --bin bench_verify -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{verify_soc, CoSimConfig, CoSimulator, SocDescription};
use desim::WatchdogConfig;
use socverify::gen::{generate_deadlocking, generate_live, GeneratedSystem};
use std::time::Instant;
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

fn reference_systems() -> Vec<(&'static str, SocDescription)> {
    vec![
        (
            "tcpip",
            tcpip::build(&TcpIpParams {
                num_packets: 8,
                len_range: (8, 24),
                pkt_period: 5_000,
                seed: 3,
            })
            .expect("valid params"),
        ),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

fn to_soc(g: GeneratedSystem) -> SocDescription {
    SocDescription {
        name: g.name,
        network: g.network,
        stimulus: g.stimulus,
        priorities: g.priorities,
    }
}

/// Average checker wall time over `reps` runs, microseconds.
fn time_check_us(soc: &SocDescription, reps: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(verify_soc(std::hint::black_box(soc)));
    }
    t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_verify.json".to_string());
    let (n_fuzz, n_watchdog, reps) = if smoke { (25, 3, 20) } else { (200, 10, 200) };

    // 1. Reference systems: must verify clean, timed.
    println!("== bench_verify: static checker vs. watchdog timeout ==\n");
    let mut sys_rows = Vec::new();
    for (name, soc) in reference_systems() {
        let report = verify_soc(&soc);
        assert!(
            !report.has_errors(),
            "{name} must be clean, got:\n{report}"
        );
        let us = time_check_us(&soc, reps);
        println!(
            "{name:<20} {:>2} procs  {:>2} events  check {us:>8.1} us  \
             (0 errors, {} advisory warnings)",
            soc.network.process_count(),
            soc.network.events().len(),
            report.warnings().count()
        );
        sys_rows.push(format!(
            "    {{\"system\": \"{name}\", \"processes\": {}, \"events\": {}, \
             \"check_us\": {us:.3}, \"warnings\": {}}}",
            soc.network.process_count(),
            soc.network.events().len(),
            report.warnings().count()
        ));
    }

    // 2. Fuzz sweep: both directions, zero false verdicts, timed.
    let mut check_total_us = 0.0;
    let (mut false_pos, mut false_neg) = (0u32, 0u32);
    for seed in 0..n_fuzz {
        let live = to_soc(generate_live(seed).expect("generator"));
        let t0 = Instant::now();
        let r = verify_soc(&live);
        check_total_us += t0.elapsed().as_secs_f64() * 1e6;
        if r.has_errors() {
            false_pos += 1;
        }
        let dead = to_soc(generate_deadlocking(seed).expect("generator"));
        let t0 = Instant::now();
        let r = verify_soc(&dead);
        check_total_us += t0.elapsed().as_secs_f64() * 1e6;
        if !r.has_errors() {
            false_neg += 1;
        }
    }
    let avg_check_us = check_total_us / f64::from(2 * n_fuzz as u32);
    assert_eq!(false_pos, 0, "checker flagged a known-live spec");
    assert_eq!(false_neg, 0, "checker missed a known-deadlocking spec");
    println!(
        "\nfuzz sweep: {n_fuzz} live + {n_fuzz} deadlocking specs, \
         0 false verdicts, avg check {avg_check_us:.1} us"
    );

    // 3. The avoided cost: a doomed spec burning its watchdog budget.
    let dead_guard = WatchdogConfig {
        max_cycles: Some(2_000_000),
        max_events: Some(4_000),
        max_stagnant_events: Some(2_000),
        ..WatchdogConfig::unlimited()
    };
    let mut timeout_total_ms = 0.0;
    for seed in 0..n_watchdog {
        let soc = to_soc(generate_deadlocking(seed).expect("generator"));
        let config = CoSimConfig::date2000_defaults().with_watchdog(dead_guard.clone());
        let t0 = Instant::now();
        let run = CoSimulator::new(soc, config).expect("builds").run();
        timeout_total_ms += t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            run.outcome.is_degraded(),
            "seed {seed}: doomed spec must trip the watchdog"
        );
    }
    let avg_timeout_ms = timeout_total_ms / f64::from(n_watchdog as u32);
    let avoidance = avg_timeout_ms * 1e3 / avg_check_us;
    println!(
        "watchdog alternative: {n_watchdog} doomed specs simulated to Degraded, \
         avg {avg_timeout_ms:.2} ms each"
    );
    println!(
        "=> one static check costs 1/{avoidance:.0} of one watchdog timeout \
         (and the production budget is far larger than this bench's)"
    );

    let json = format!(
        "{{\n  \"bench\": \"verify\",\n  \"mode\": \"{}\",\n  \"systems\": [\n{}\n  ],\n  \
         \"fuzz\": {{\"live\": {n_fuzz}, \"deadlocking\": {n_fuzz}, \
         \"false_positives\": {false_pos}, \"false_negatives\": {false_neg}, \
         \"avg_check_us\": {avg_check_us:.3}}},\n  \
         \"watchdog\": {{\"runs\": {n_watchdog}, \"max_events_budget\": 4000, \
         \"avg_timeout_ms\": {avg_timeout_ms:.3}}},\n  \
         \"avoidance_factor\": {avoidance:.1}\n}}\n",
        if smoke { "smoke" } else { "full" },
        sys_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
