//! Sweep-throughput benchmark: the Fig. 7 exploration (48 points),
//! measured serial and at several worker counts, written as
//! `BENCH_explore.json` so the bench trajectory tracks design-space
//! sweep throughput across PRs.
//!
//! Every parallel result is cross-checked bit-for-bit against the serial
//! sweep before its timing is recorded — a benchmark entry only exists
//! if the determinism contract held.
//!
//! Usage: `cargo run --release -p soc-bench --bin bench_explore [out.json]`

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{
    Acceleration, CoSimConfig, ExplorationPoint, ExploreOptions, SamplingConfig,
};
use soc_bench::{fig7_parallel, fig7_profile_overhead, fig7_serial, run_with_metrics, table1_caching};
use std::time::Instant;
use systems::tcpip::{self, TcpIpParams};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bitwise_equal(a: &[ExplorationPoint], b: &[ExplorationPoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.dma_block_size == y.dma_block_size
                && x.priorities == y.priorities
                && x.label == y.label
                && x.report.golden_snapshot() == y.report.golden_snapshot()
        })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_explore.json".to_string());
    let params = TcpIpParams::fig7_defaults();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("== bench_explore: Fig. 7 sweep throughput (host cpus: {host_cpus}) ==\n");

    // Warm-up run so first-touch costs (page faults, lazy init) do not
    // pollute the serial baseline.
    let _ = fig7_serial(&params);

    let t0 = Instant::now();
    let serial = fig7_serial(&params);
    let serial_s = t0.elapsed().as_secs_f64();
    let points = serial.len();
    println!("serial: {points} points in {serial_s:.3} s ({:.1} points/s)", points as f64 / serial_s);

    let mut rows = String::new();
    for (k, &workers) in WORKER_COUNTS.iter().enumerate() {
        let sweep = fig7_parallel(&params, &ExploreOptions::with_workers(workers));
        let wall_s = sweep.stats.wall_ms / 1e3;
        let identical = bitwise_equal(&serial, &sweep.points);
        assert!(
            identical,
            "determinism contract violated at workers = {workers}"
        );
        let speedup = serial_s / wall_s;
        println!(
            "workers = {workers}: {:.3} s ({:.1} points/s, speedup {speedup:.2}x, bitwise identical: {identical})",
            wall_s, sweep.stats.points_per_sec
        );
        if k > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"workers\": {workers}, \"wall_s\": {wall_s:.6}, \
             \"points_per_sec\": {:.3}, \"speedup_vs_serial\": {speedup:.3}, \
             \"degraded\": {}, \"bitwise_identical\": {identical}}}",
            sweep.stats.points_per_sec, sweep.stats.degraded
        ));
    }

    // Trace-metrics cross-check: one representative run per acceleration
    // mode with a MetricsSink attached, reporting detailed vs.
    // accelerated calls per layer alongside the sweep timings.
    let mut metric_rows = String::new();
    let modes: [(&str, Acceleration); 4] = [
        ("baseline", Acceleration::none()),
        ("caching", Acceleration::caching(table1_caching())),
        ("macromodel", Acceleration::macromodel()),
        ("sampling", Acceleration::sampling(SamplingConfig { period: 4 })),
    ];
    println!();
    for (k, (mode, accel)) in modes.iter().enumerate() {
        let soc = tcpip::build(&params).expect("valid params");
        let config = CoSimConfig::date2000_defaults().with_accel(accel.clone());
        let (report, metrics) = run_with_metrics(soc, config);
        assert_eq!(metrics.firings, report.firings, "trace/report firing drift");
        assert_eq!(
            metrics.detailed_calls, report.detailed_calls,
            "trace/report detailed-call drift"
        );
        println!(
            "trace metrics [{mode}]: {} firings, {} detailed, {} accelerated",
            metrics.firings,
            metrics.detailed_calls,
            metrics.accelerated_calls()
        );
        if k > 0 {
            metric_rows.push_str(",\n");
        }
        metric_rows.push_str(&format!("    {{\"mode\": \"{mode}\", \"metrics\": {}}}", metrics.to_json()));
    }

    // Span-profiler cost on the same sweep: the observability layer must
    // stay invisible when detached and cheap when attached, and the
    // attached run must remain bit-identical (asserted inside the helper).
    let (detached_s, attached_s, _profile) = fig7_profile_overhead(&params);
    let profiler_overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
    println!(
        "\nprofiler: detached {detached_s:.3} s, attached {attached_s:.3} s \
         ({profiler_overhead_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"explore_fig7_sweep\",\n  \"system\": \"tcpip\",\n  \
         \"points\": {points},\n  \"host_cpus\": {host_cpus},\n  \
         \"serial\": {{\"wall_s\": {serial_s:.6}, \"points_per_sec\": {:.3}}},\n  \
         \"parallel\": [\n{rows}\n  ],\n  \
         \"trace_metrics\": [\n{metric_rows}\n  ],\n  \
         \"profiler_overhead\": {{\"detached_wall_s\": {detached_s:.6}, \
         \"attached_wall_s\": {attached_s:.6}, \
         \"attached_overhead_pct\": {profiler_overhead_pct:.3}, \
         \"bitwise_identical\": true}}\n}}\n",
        points as f64 / serial_s
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
