//! Gate-simulation kernel benchmark: the event-driven levelized kernel
//! against the oblivious reference path, on the synthesized TCP/IP
//! checksum netlist, written as `BENCH_gatesim.json` so the perf
//! trajectory tracks the hot inner loop across PRs.
//!
//! A timing entry only exists if the two kernels agreed bit for bit
//! (per-cycle energy bit patterns and all output values) over the same
//! stimulus first. The full run also times the end-to-end Fig. 7 sweep
//! under each kernel.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_gatesim [out.json]
//!   cargo run --release -p soc-bench --bin bench_gatesim -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cfsm::TransitionId;
use co_estimation::CoSimConfig;
use detrand::Rng;
use gatesim::{HwCfsm, NetId, Netlist, PowerConfig, SimKernel, Simulator};
use soc_bench::{fig7_profile_overhead, fig7_serial};
use std::sync::Arc;
use std::time::Instant;
use systems::tcpip::{self, TcpIpParams};

/// Per-input probability of changing value each cycle. Low, matching
/// the firing protocol's mostly-held ports (load/start pulses, stable
/// operand buses).
const P_TOGGLE: f64 = 0.1;

/// The synthesized checksum netlist of the TCP/IP system — the largest
/// transition, simulated on every detailed firing of the sweep's
/// hottest hardware process.
fn checksum_netlist() -> Arc<Netlist> {
    let soc = tcpip::build(&TcpIpParams::fig7_defaults()).expect("valid params");
    let config = CoSimConfig::date2000_defaults();
    let p = soc
        .network
        .process_by_name("checksum")
        .expect("tcpip has a checksum process");
    let hw = HwCfsm::synthesize(soc.network.cfsm(p), &config.synth, &config.hw_power)
        .expect("checksum synthesizes");
    let largest = (0..hw.transition_count())
        .max_by_key(|&k| hw.transition(TransitionId(k as u32)).gate_count())
        .expect("at least one transition");
    Arc::clone(hw.transition(TransitionId(largest as u32)).netlist())
}

/// Pre-rolled stimulus: the same input assignments drive every kernel.
fn stimulus(netlist: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<(NetId, bool)>> {
    let primary = netlist.primary_inputs();
    let mut rng = Rng::new(seed);
    (0..cycles)
        .map(|_| {
            let mut changes = Vec::new();
            for &p in &primary {
                if rng.bool_with(P_TOGGLE) {
                    changes.push((p, rng.bool_with(0.5)));
                }
            }
            changes
        })
        .collect()
}

/// Drives one kernel over the stimulus, observing per-cycle energy bit
/// patterns and output values (the bitwise-equivalence evidence).
fn observe(
    netlist: &Arc<Netlist>,
    kernel: SimKernel,
    stim: &[Vec<(NetId, bool)>],
) -> (Vec<(u64, u64)>, u64, u64) {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        kernel,
    )
    .expect("valid netlist");
    let outputs: Vec<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    let mut trace = Vec::with_capacity(stim.len());
    for inputs in stim {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        let e = sim.step();
        trace.push((e.to_bits(), sim.value_bus(&outputs)));
    }
    (trace, sim.gate_evals(), sim.gate_events())
}

/// Times one kernel over the stimulus with no per-cycle observation.
fn timed(netlist: &Arc<Netlist>, kernel: SimKernel, stim: &[Vec<(NetId, bool)>]) -> (f64, u64) {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        kernel,
    )
    .expect("valid netlist");
    let t0 = Instant::now();
    for inputs in stim {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        sim.step();
    }
    (t0.elapsed().as_secs_f64(), sim.gate_evals())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_gatesim.json".to_string());

    let netlist = checksum_netlist();
    let gates = netlist.gate_count();
    println!("== bench_gatesim: tcpip checksum netlist ({gates} gates) ==\n");

    // Bitwise cross-check first: no timing without equivalence.
    let check_cycles = if smoke { 2_000 } else { 5_000 };
    let check_stim = stimulus(&netlist, check_cycles, 0xBE9C);
    let (ev_trace, ev_evals, ev_events) = observe(&netlist, SimKernel::EventDriven, &check_stim);
    let (ob_trace, ob_evals, ob_events) = observe(&netlist, SimKernel::Oblivious, &check_stim);
    let bitwise_identical = ev_trace == ob_trace && ev_events == ob_events;
    assert!(bitwise_identical, "kernels diverged on the checksum netlist");
    assert!(
        ev_evals < ob_evals,
        "event-driven must evaluate strictly fewer gates ({ev_evals} vs {ob_evals})"
    );
    let ev_epc = ev_evals as f64 / check_cycles as f64;
    let ob_epc = ob_evals as f64 / check_cycles as f64;
    println!("bitwise identical over {check_cycles} cycles: {bitwise_identical}");
    println!(
        "gate evals/cycle: oblivious {ob_epc:.1}, event-driven {ev_epc:.1} \
         ({:.1}x reduction)\n",
        ob_epc / ev_epc.max(1e-12)
    );

    if smoke {
        println!("smoke mode: equivalence and eval-reduction assertions passed");
        return;
    }

    // Kernel timing: warm-up pass, then a measured pass each.
    let bench_cycles = 50_000;
    let bench_stim = stimulus(&netlist, bench_cycles, 0x51D3);
    let _ = timed(&netlist, SimKernel::EventDriven, &bench_stim);
    let (ob_s, _) = timed(&netlist, SimKernel::Oblivious, &bench_stim);
    let (ev_s, _) = timed(&netlist, SimKernel::EventDriven, &bench_stim);
    let ob_cps = bench_cycles as f64 / ob_s;
    let ev_cps = bench_cycles as f64 / ev_s;
    let speedup = ev_cps / ob_cps;
    println!("oblivious:    {ob_s:.3} s ({ob_cps:.0} cycles/s)");
    println!("event-driven: {ev_s:.3} s ({ev_cps:.0} cycles/s)");
    println!("kernel speedup: {speedup:.2}x\n");

    // End-to-end: the Fig. 7 sweep (48 points) under each kernel, via
    // the same escape hatch CI's differential runs use.
    let params = TcpIpParams::fig7_defaults();
    let _ = fig7_serial(&params); // warm-up (page faults, synth memo)
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    let t0 = Instant::now();
    let oblivious_sweep = fig7_serial(&params);
    let fig7_ob_s = t0.elapsed().as_secs_f64();
    std::env::remove_var("GATESIM_OBLIVIOUS");
    let t0 = Instant::now();
    let event_sweep = fig7_serial(&params);
    let fig7_ev_s = t0.elapsed().as_secs_f64();
    let fig7_identical = oblivious_sweep.len() == event_sweep.len()
        && oblivious_sweep
            .iter()
            .zip(&event_sweep)
            .all(|(a, b)| a.report.golden_snapshot() == b.report.golden_snapshot());
    assert!(fig7_identical, "fig7 sweeps diverged between kernels");
    let fig7_speedup = fig7_ob_s / fig7_ev_s;
    println!("fig7 sweep (48 points): oblivious {fig7_ob_s:.3} s, event-driven {fig7_ev_s:.3} s");
    println!("end-to-end speedup: {fig7_speedup:.2}x (bitwise identical: {fig7_identical})");

    // Span-profiler cost on the same sweep (event-driven kernel): the
    // gate-sim spans must not perturb results (asserted inside the
    // helper) and the attached cost is recorded alongside the kernel
    // timings so both trajectories track together.
    let (detached_s, attached_s, _profile) = fig7_profile_overhead(&params);
    let profiler_overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
    println!(
        "profiler: detached {detached_s:.3} s, attached {attached_s:.3} s \
         ({profiler_overhead_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"gatesim_kernels\",\n  \"netlist\": \"tcpip_checksum\",\n  \
         \"gates\": {gates},\n  \"bench_cycles\": {bench_cycles},\n  \
         \"input_toggle_probability\": {P_TOGGLE},\n  \
         \"oblivious\": {{\"wall_s\": {ob_s:.6}, \"cycles_per_sec\": {ob_cps:.1}, \
         \"gate_evals_per_cycle\": {ob_epc:.2}}},\n  \
         \"event_driven\": {{\"wall_s\": {ev_s:.6}, \"cycles_per_sec\": {ev_cps:.1}, \
         \"gate_evals_per_cycle\": {ev_epc:.2}}},\n  \
         \"speedup\": {speedup:.3},\n  \"eval_reduction\": {:.3},\n  \
         \"bitwise_identical\": {bitwise_identical},\n  \
         \"fig7_sweep\": {{\"oblivious_wall_s\": {fig7_ob_s:.6}, \
         \"event_driven_wall_s\": {fig7_ev_s:.6}, \"speedup\": {fig7_speedup:.3}, \
         \"bitwise_identical\": {fig7_identical}}},\n  \
         \"profiler_overhead\": {{\"detached_wall_s\": {detached_s:.6}, \
         \"attached_wall_s\": {attached_s:.6}, \
         \"attached_overhead_pct\": {profiler_overhead_pct:.3}, \
         \"bitwise_identical\": true}}\n}}\n",
        ob_epc / ev_epc.max(1e-12)
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
