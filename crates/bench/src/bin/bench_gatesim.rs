//! Gate-simulation kernel benchmark: the event-driven levelized kernel,
//! the oblivious reference path, the word-parallel kernel (both the
//! single-stream block engine and the 64-stream lockstep [`LaneSim`]),
//! and the simd kernel (256-cycle windows plus the width-erased
//! [`SimdLaneSim`] lockstep engine and the lane-scheduled Monte-Carlo
//! sweep from `co-estimation`), on the synthesized TCP/IP checksum
//! netlist, written as `BENCH_gatesim.json` so the perf trajectory
//! tracks the hot inner loop across PRs.
//!
//! A timing entry only exists if the kernels agreed bit for bit
//! (per-cycle energy bit patterns and all output values) over the same
//! stimulus first — including the word kernel driven through
//! `run_block` with odd chunk sizes, and every `LaneSim`/`SimdLaneSim`
//! lane against a scalar run of its stream. The full run also times the
//! end-to-end Fig. 7 sweep under each kernel.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_gatesim [out.json]
//!   cargo run --release -p soc-bench --bin bench_gatesim -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cfsm::TransitionId;
use co_estimation::{
    run_lane_sweep, run_lane_sweep_serial, CoSimConfig, LaneSweepConfig, LaneUnit,
};
use detrand::Rng;
use gatesim::{HwCfsm, LaneSim, NetId, Netlist, PowerConfig, SimKernel, SimdLaneSim, Simulator};
use soc_bench::{fig7_profile_overhead, fig7_serial};
use std::sync::Arc;
use std::time::Instant;
use systems::tcpip::{self, TcpIpParams};

/// Per-input probability of changing value each cycle. Low, matching
/// the firing protocol's mostly-held ports (load/start pulses, stable
/// operand buses).
const P_TOGGLE: f64 = 0.1;

/// The 64-lane `LaneSim` lane throughput recorded in the committed
/// `BENCH_gatesim.json` before the simd backend landed — the
/// "existing word_parallel number" the simd acceptance bar is measured
/// against. (The same-run 64-lane number also moves with this PR's
/// charge-path optimizations, so it is reported separately.)
const BASELINE_WORD_LANE_CPS: f64 = 891_169.4;

/// Timed sections run several passes and keep the fastest wall time.
/// The bench host is a single shared core, and a co-tenant waking up
/// mid-measurement otherwise leaks into the throughput numbers; the
/// minimum over passes estimates kernel cost, not host load. Lockstep
/// passes are cheap (one wide run), scalar passes replay every stream.
const LOCKSTEP_PASSES: usize = 3;
const SCALAR_PASSES: usize = 2;

/// The synthesized checksum netlist of the TCP/IP system — the largest
/// transition, simulated on every detailed firing of the sweep's
/// hottest hardware process.
fn checksum_netlist() -> Arc<Netlist> {
    let soc = tcpip::build(&TcpIpParams::fig7_defaults()).expect("valid params");
    let config = CoSimConfig::date2000_defaults();
    let p = soc
        .network
        .process_by_name("checksum")
        .expect("tcpip has a checksum process");
    let hw = HwCfsm::synthesize(soc.network.cfsm(p), &config.synth, &config.hw_power)
        .expect("checksum synthesizes");
    let largest = (0..hw.transition_count())
        .max_by_key(|&k| hw.transition(TransitionId(k as u32)).gate_count())
        .expect("at least one transition");
    Arc::clone(hw.transition(TransitionId(largest as u32)).netlist())
}

/// Pre-rolled stimulus: the same input assignments drive every kernel.
fn stimulus(netlist: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<(NetId, bool)>> {
    let primary = netlist.primary_inputs();
    let mut rng = Rng::new(seed);
    (0..cycles)
        .map(|_| {
            let mut changes = Vec::new();
            for &p in &primary {
                if rng.bool_with(P_TOGGLE) {
                    changes.push((p, rng.bool_with(0.5)));
                }
            }
            changes
        })
        .collect()
}

/// Drives one kernel over the stimulus, observing per-cycle energy bit
/// patterns and output values (the bitwise-equivalence evidence).
fn observe(
    netlist: &Arc<Netlist>,
    kernel: SimKernel,
    stim: &[Vec<(NetId, bool)>],
) -> (Vec<(u64, u64)>, u64, u64) {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        kernel,
    )
    .expect("valid netlist");
    let outputs: Vec<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    let mut trace = Vec::with_capacity(stim.len());
    for inputs in stim {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        let e = sim.step();
        trace.push((e.to_bits(), sim.value_bus(&outputs)));
    }
    (trace, sim.gate_evals(), sim.gate_events())
}

/// Times one kernel over the stimulus with no per-cycle observation.
fn timed(netlist: &Arc<Netlist>, kernel: SimKernel, stim: &[Vec<(NetId, bool)>]) -> (f64, u64) {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        kernel,
    )
    .expect("valid netlist");
    let t0 = Instant::now();
    for inputs in stim {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        sim.step();
    }
    (t0.elapsed().as_secs_f64(), sim.gate_evals())
}

/// Drives the word kernel through `run_block` over a repeating pattern
/// of odd chunk sizes (seams land everywhere relative to the 64-cycle
/// lane width), returning per-cycle energy bit patterns, the final
/// output-bus value, and the gate-event counter.
fn observe_word_blocks(
    netlist: &Arc<Netlist>,
    stim: &[Vec<(NetId, bool)>],
) -> (Vec<u64>, u64, u64) {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        SimKernel::WordParallel,
    )
    .expect("valid netlist");
    let outputs: Vec<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    let chunks = [1usize, 7, 63, 64, 65, 100];
    let mut at = 0usize;
    let mut k = 0usize;
    while at < stim.len() {
        let len = chunks[k % chunks.len()].min(stim.len() - at);
        k += 1;
        sim.run_block(&stim[at..at + len]);
        at += len;
    }
    let energy: Vec<u64> = sim
        .report()
        .per_cycle_j
        .iter()
        .map(|e| e.to_bits())
        .collect();
    (energy, sim.value_bus(&outputs), sim.gate_events())
}

/// Times the word kernel over the stimulus, driven in 64-cycle blocks.
fn timed_word_blocks(netlist: &Arc<Netlist>, stim: &[Vec<(NetId, bool)>]) -> f64 {
    let mut sim = Simulator::with_kernel(
        Arc::clone(netlist),
        PowerConfig::date2000_defaults(),
        SimKernel::WordParallel,
    )
    .expect("valid netlist");
    let t0 = Instant::now();
    for block in stim.chunks(64) {
        sim.run_block(block);
    }
    t0.elapsed().as_secs_f64()
}

/// Independent per-lane stimulus streams for the lockstep runs.
fn lane_streams(
    netlist: &Netlist,
    lanes: usize,
    cycles: usize,
    seed: u64,
) -> Vec<Vec<Vec<(NetId, bool)>>> {
    (0..lanes)
        .map(|l| stimulus(netlist, cycles, seed ^ ((l as u64) << 16)))
        .collect()
}

/// Bitwise evidence for the lockstep simulator: every lane must match a
/// scalar event-driven run of its stream — per-cycle energy bit
/// patterns, all net values, and per-net toggle counts.
fn lanes_bitwise_identical(netlist: &Arc<Netlist>, lanes: usize, cycles: usize) -> bool {
    let streams = lane_streams(netlist, lanes, cycles, 0xC9EC);
    let mut ls = LaneSim::new(Arc::clone(netlist), PowerConfig::date2000_defaults(), lanes)
        .expect("valid netlist");
    for j in 0..cycles {
        for (l, stream) in streams.iter().enumerate() {
            for &(net, v) in &stream[j] {
                ls.set_input(l, net, v);
            }
        }
        ls.step();
    }
    streams.iter().enumerate().all(|(l, stream)| {
        let mut scalar = Simulator::with_kernel(
            Arc::clone(netlist),
            PowerConfig::date2000_defaults(),
            SimKernel::EventDriven,
        )
        .expect("valid netlist");
        for inputs in stream {
            for &(net, v) in inputs {
                scalar.set_input(net, v);
            }
            scalar.step();
        }
        let scalar_bits: Vec<u64> = scalar
            .report()
            .per_cycle_j
            .iter()
            .map(|e| e.to_bits())
            .collect();
        let lane_bits: Vec<u64> = ls
            .report(l)
            .per_cycle_j
            .iter()
            .map(|e| e.to_bits())
            .collect();
        scalar_bits == lane_bits
            && (0..netlist.gate_count()).all(|i| {
                let net = NetId(i as u32);
                ls.value(net, l) == scalar.value(net)
                    && ls.toggle_count(net, l) == scalar.toggle_count(net)
            })
    })
}

/// Lockstep lane throughput: `lanes` independent stimulus streams
/// simulated together by [`LaneSim`] versus one event-driven scalar run
/// per stream. Returns (lockstep wall, summed scalar wall) over the
/// same streams.
fn lane_throughput(netlist: &Arc<Netlist>, lanes: usize, cycles: usize) -> (f64, f64) {
    let streams = lane_streams(netlist, lanes, cycles, 0x1A9E);
    let mut lane_s = f64::INFINITY;
    for _ in 0..LOCKSTEP_PASSES {
        let mut ls = LaneSim::new(Arc::clone(netlist), PowerConfig::date2000_defaults(), lanes)
            .expect("valid netlist");
        let t0 = Instant::now();
        for j in 0..cycles {
            for (l, stream) in streams.iter().enumerate() {
                for &(net, v) in &stream[j] {
                    ls.set_input(l, net, v);
                }
            }
            ls.step();
        }
        lane_s = lane_s.min(t0.elapsed().as_secs_f64());
    }
    let mut scalar_s = 0.0;
    for stream in &streams {
        let s = (0..SCALAR_PASSES)
            .map(|_| timed(netlist, SimKernel::EventDriven, stream).0)
            .fold(f64::INFINITY, f64::min);
        scalar_s += s;
    }
    (lane_s, scalar_s)
}

/// Bitwise evidence for the width-erased simd lockstep engine: same
/// contract as [`lanes_bitwise_identical`], at lane counts past the
/// 64-lane `u64` word so the wide `[u64; N]` paths are exercised.
fn simd_lanes_bitwise_identical(netlist: &Arc<Netlist>, lanes: usize, cycles: usize) -> bool {
    let streams = lane_streams(netlist, lanes, cycles, 0x51D0);
    let mut ls = SimdLaneSim::new(Arc::clone(netlist), PowerConfig::date2000_defaults(), lanes)
        .expect("valid netlist");
    for j in 0..cycles {
        for (l, stream) in streams.iter().enumerate() {
            for &(net, v) in &stream[j] {
                ls.set_input(l, net, v);
            }
        }
        ls.step();
    }
    streams.iter().enumerate().all(|(l, stream)| {
        let mut scalar = Simulator::with_kernel(
            Arc::clone(netlist),
            PowerConfig::date2000_defaults(),
            SimKernel::EventDriven,
        )
        .expect("valid netlist");
        for inputs in stream {
            for &(net, v) in inputs {
                scalar.set_input(net, v);
            }
            scalar.step();
        }
        let scalar_bits: Vec<u64> = scalar
            .report()
            .per_cycle_j
            .iter()
            .map(|e| e.to_bits())
            .collect();
        let lane_bits: Vec<u64> = ls
            .report(l)
            .per_cycle_j
            .iter()
            .map(|e| e.to_bits())
            .collect();
        scalar_bits == lane_bits
            && (0..netlist.gate_count()).all(|i| {
                let net = NetId(i as u32);
                ls.value(net, l) == scalar.value(net)
                    && ls.toggle_count(net, l) == scalar.toggle_count(net)
            })
    })
}

/// Simd lane throughput: `lanes` independent streams in one wide
/// lockstep word versus one event-driven scalar run per stream.
/// Returns (lockstep wall, summed scalar wall) over the same streams.
fn simd_lane_throughput(netlist: &Arc<Netlist>, lanes: usize, cycles: usize) -> (f64, f64) {
    let streams = lane_streams(netlist, lanes, cycles, 0x51D1);
    let mut lane_s = f64::INFINITY;
    for _ in 0..LOCKSTEP_PASSES {
        let mut ls =
            SimdLaneSim::new(Arc::clone(netlist), PowerConfig::date2000_defaults(), lanes)
                .expect("valid netlist");
        let t0 = Instant::now();
        for j in 0..cycles {
            for (l, stream) in streams.iter().enumerate() {
                for &(net, v) in &stream[j] {
                    ls.set_input(l, net, v);
                }
            }
            ls.step();
        }
        lane_s = lane_s.min(t0.elapsed().as_secs_f64());
    }
    let mut scalar_s = 0.0;
    for stream in &streams {
        let s = (0..SCALAR_PASSES)
            .map(|_| timed(netlist, SimKernel::EventDriven, stream).0)
            .fold(f64::INFINITY, f64::min);
        scalar_s += s;
    }
    (lane_s, scalar_s)
}

/// Times the lane-scheduled Monte-Carlo sweep (units packed onto simd
/// lanes) against the serial scalar reference, asserting the demuxed
/// per-unit points are bitwise identical first. Returns (lane wall,
/// serial wall).
fn mc_sweep_throughput(netlist: &Arc<Netlist>, units: usize, cycles: usize) -> (f64, f64) {
    let units: Vec<LaneUnit> = (0..units)
        .map(|i| LaneUnit::MonteCarlo {
            seed: 0x5EED ^ ((i as u64) << 8),
        })
        .collect();
    let config = LaneSweepConfig {
        cycles,
        toggle_probability: P_TOGGLE,
        max_lanes: 256,
    };
    let power = PowerConfig::date2000_defaults();
    let mut lane_s = f64::INFINITY;
    let mut lanes = None;
    for _ in 0..LOCKSTEP_PASSES {
        let t0 = Instant::now();
        let r = run_lane_sweep(netlist, &power, &units, &config).expect("valid netlist");
        lane_s = lane_s.min(t0.elapsed().as_secs_f64());
        lanes.get_or_insert(r);
    }
    let lanes = lanes.expect("at least one lockstep pass");
    let mut serial_s = f64::INFINITY;
    let mut serial = None;
    for _ in 0..SCALAR_PASSES {
        let t0 = Instant::now();
        let r = run_lane_sweep_serial(netlist, &power, &units, &config).expect("valid netlist");
        serial_s = serial_s.min(t0.elapsed().as_secs_f64());
        serial.get_or_insert(r);
    }
    let serial = serial.expect("at least one serial pass");
    assert_eq!(
        lanes.points, serial.points,
        "lane-scheduled MC sweep diverged from serial scalar runs"
    );
    (lane_s, serial_s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_gatesim.json".to_string());

    let netlist = checksum_netlist();
    let gates = netlist.gate_count();
    println!("== bench_gatesim: tcpip checksum netlist ({gates} gates) ==\n");

    // Bitwise cross-check first: no timing without equivalence. The
    // word kernel is checked twice — step-driven (1-cycle windows) and
    // through `run_block` with odd chunk sizes.
    let check_cycles = if smoke { 2_000 } else { 5_000 };
    let check_stim = stimulus(&netlist, check_cycles, 0xBE9C);
    let (ev_trace, ev_evals, ev_events) = observe(&netlist, SimKernel::EventDriven, &check_stim);
    let (ob_trace, ob_evals, ob_events) = observe(&netlist, SimKernel::Oblivious, &check_stim);
    let (wd_trace, _wd_evals, wd_events) = observe(&netlist, SimKernel::WordParallel, &check_stim);
    let (sd_trace, _sd_evals, sd_events) = observe(&netlist, SimKernel::Simd, &check_stim);
    let (blk_energy, blk_bus, blk_events) = observe_word_blocks(&netlist, &check_stim);
    let word_step_identical = wd_trace == ev_trace && wd_events == ev_events;
    let simd_step_identical = sd_trace == ev_trace && sd_events == ev_events;
    let word_block_identical = blk_energy
        == ev_trace.iter().map(|&(e, _)| e).collect::<Vec<u64>>()
        && Some(blk_bus) == ev_trace.last().map(|&(_, v)| v)
        && blk_events == ev_events;
    let bitwise_identical = ev_trace == ob_trace
        && ev_events == ob_events
        && word_step_identical
        && simd_step_identical
        && word_block_identical;
    assert!(bitwise_identical, "kernels diverged on the checksum netlist");
    assert!(
        ev_evals < ob_evals,
        "event-driven must evaluate strictly fewer gates ({ev_evals} vs {ob_evals})"
    );
    let ev_epc = ev_evals as f64 / check_cycles as f64;
    let ob_epc = ob_evals as f64 / check_cycles as f64;
    println!("bitwise identical over {check_cycles} cycles (4 kernels + word blocks): {bitwise_identical}");
    println!(
        "gate evals/cycle: oblivious {ob_epc:.1}, event-driven {ev_epc:.1} \
         ({:.1}x reduction)\n",
        ob_epc / ev_epc.max(1e-12)
    );

    // Lockstep-lane evidence: every lane bit-identical to a scalar run.
    let (eq_lanes, eq_cycles) = if smoke { (8, 300) } else { (64, 300) };
    let lanes_identical = lanes_bitwise_identical(&netlist, eq_lanes, eq_cycles);
    assert!(lanes_identical, "LaneSim lanes diverged from scalar runs");
    println!("LaneSim: {eq_lanes} lanes bit-identical to scalar runs over {eq_cycles} cycles");

    // Lockstep-lane throughput: the word kernel's headline number. The
    // checksum netlist changes flop state on ~90% of cycles under this
    // stimulus, so single-stream windows stay short; 64 independent
    // streams in lockstep is where the 64x lane width pays off.
    let (tp_lanes, tp_cycles) = if smoke { (16, 1_500) } else { (64, 6_000) };
    let _ = lane_throughput(&netlist, tp_lanes, 200); // warm-up
    let (lane_s, lane_scalar_s) = lane_throughput(&netlist, tp_lanes, tp_cycles);
    let lane_speedup = lane_scalar_s / lane_s;
    let lane_cps = (tp_lanes * tp_cycles) as f64 / lane_s;
    println!(
        "LaneSim {tp_lanes} lanes x {tp_cycles} cycles: {lane_s:.3} s \
         ({lane_cps:.0} lane-cycles/s); event-driven scalar: {lane_scalar_s:.3} s \
         -> {lane_speedup:.2}x"
    );
    // Simd lockstep evidence at lane counts past the 64-lane u64 word,
    // so the wide `[u64; N]` words (and their inter-word carry paths)
    // are the thing being checked.
    let (sd_eq_lanes, sd_eq_cycles) = if smoke { (80, 200) } else { (256, 300) };
    let simd_lanes_identical = simd_lanes_bitwise_identical(&netlist, sd_eq_lanes, sd_eq_cycles);
    assert!(
        simd_lanes_identical,
        "SimdLaneSim lanes diverged from scalar runs"
    );
    println!(
        "SimdLaneSim: {sd_eq_lanes} lanes bit-identical to scalar runs over {sd_eq_cycles} cycles"
    );

    // Simd lane throughput: one wide word carries 4x the lanes of the
    // u64 engine per gate visit, amortizing the per-gate walk (index
    // loads, truth-table dispatch) that dominates the u64 inner loop.
    let (sd_lanes, sd_cycles) = if smoke { (128, 800) } else { (256, 3_000) };
    let _ = simd_lane_throughput(&netlist, sd_lanes, 100); // warm-up
    let (sd_s, sd_scalar_s) = simd_lane_throughput(&netlist, sd_lanes, sd_cycles);
    let sd_speedup = sd_scalar_s / sd_s;
    let sd_cps = (sd_lanes * sd_cycles) as f64 / sd_s;
    let sd_vs_word_lanes = sd_cps / lane_cps;
    println!(
        "SimdLaneSim {sd_lanes} lanes x {sd_cycles} cycles: {sd_s:.3} s \
         ({sd_cps:.0} lane-cycles/s); event-driven scalar: {sd_scalar_s:.3} s \
         -> {sd_speedup:.2}x vs event, {sd_vs_word_lanes:.2}x vs 64-lane word"
    );

    // Lane-scheduled Monte-Carlo sweep: independent seeded stimulus
    // units packed onto simd lanes versus one scalar event-driven run
    // per unit. Per-unit demux bitwise identity is asserted inside.
    let (mc_units, mc_cycles) = if smoke { (32, 200) } else { (256, 400) };
    let (mc_lane_s, mc_serial_s) = mc_sweep_throughput(&netlist, mc_units, mc_cycles);
    let mc_speedup = mc_serial_s / mc_lane_s;
    println!(
        "MC lane sweep: {mc_units} units x {mc_cycles} cycles: lanes {mc_lane_s:.3} s, \
         serial scalar {mc_serial_s:.3} s -> {mc_speedup:.2}x (points bitwise identical)"
    );

    if smoke {
        assert!(
            lane_speedup > 1.0,
            "lockstep lanes must beat scalar event-driven ({lane_speedup:.2}x)"
        );
        assert!(
            sd_speedup > 1.0,
            "simd lanes must beat scalar event-driven ({sd_speedup:.2}x)"
        );
        assert!(
            mc_speedup > 1.0,
            "lane-scheduled MC sweep must beat serial scalar ({mc_speedup:.2}x)"
        );
        println!(
            "\nsmoke mode: equivalence, eval-reduction, lane-speedup, and simd assertions passed"
        );
        return;
    }
    assert!(
        lane_speedup >= 4.0,
        "lockstep lanes must deliver >=4x over event-driven ({lane_speedup:.2}x)"
    );
    assert!(
        sd_speedup >= 10.0,
        "simd lanes must deliver >=10x over event-driven ({sd_speedup:.2}x)"
    );
    let sd_vs_baseline = sd_cps / BASELINE_WORD_LANE_CPS;
    assert!(
        sd_vs_baseline >= 1.5,
        "simd lane throughput must be >=1.5x the pre-simd 64-lane word number \
         ({sd_cps:.0} vs {BASELINE_WORD_LANE_CPS:.0} lane-cycles/s, {sd_vs_baseline:.2}x)"
    );
    assert!(
        mc_speedup > 1.0,
        "lane-scheduled MC sweep must beat serial scalar ({mc_speedup:.2}x)"
    );

    // Kernel timing: warm-up pass, then a measured pass each.
    let bench_cycles = 50_000;
    let bench_stim = stimulus(&netlist, bench_cycles, 0x51D3);
    let _ = timed(&netlist, SimKernel::EventDriven, &bench_stim);
    let (ob_s, _) = timed(&netlist, SimKernel::Oblivious, &bench_stim);
    let (ev_s, _) = timed(&netlist, SimKernel::EventDriven, &bench_stim);
    let _ = timed_word_blocks(&netlist, &bench_stim); // warm-up
    let wd_s = timed_word_blocks(&netlist, &bench_stim);
    let ob_cps = bench_cycles as f64 / ob_s;
    let ev_cps = bench_cycles as f64 / ev_s;
    let wd_cps = bench_cycles as f64 / wd_s;
    let speedup = ev_cps / ob_cps;
    // Honest number: a single sequential stream commits short windows
    // whenever flop state changes, so this is NOT the word kernel's
    // headline — the lockstep-lane speedup above is.
    let wd_single_speedup = wd_cps / ev_cps;
    println!("oblivious:    {ob_s:.3} s ({ob_cps:.0} cycles/s)");
    println!("event-driven: {ev_s:.3} s ({ev_cps:.0} cycles/s)");
    println!(
        "word (single stream, 64-cycle blocks): {wd_s:.3} s ({wd_cps:.0} cycles/s, \
         {wd_single_speedup:.2}x vs event-driven)"
    );
    println!("kernel speedup: {speedup:.2}x\n");

    // End-to-end: the Fig. 7 sweep (48 points) under each kernel, via
    // the same escape hatch CI's differential runs use.
    let params = TcpIpParams::fig7_defaults();
    let _ = fig7_serial(&params); // warm-up (page faults, synth memo)
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    let t0 = Instant::now();
    let oblivious_sweep = fig7_serial(&params);
    let fig7_ob_s = t0.elapsed().as_secs_f64();
    std::env::remove_var("GATESIM_OBLIVIOUS");
    std::env::set_var("GATESIM_KERNEL", "word");
    let t0 = Instant::now();
    let word_sweep = fig7_serial(&params);
    let fig7_wd_s = t0.elapsed().as_secs_f64();
    std::env::remove_var("GATESIM_KERNEL");
    let t0 = Instant::now();
    let event_sweep = fig7_serial(&params);
    let fig7_ev_s = t0.elapsed().as_secs_f64();
    let fig7_identical = oblivious_sweep.len() == event_sweep.len()
        && word_sweep.len() == event_sweep.len()
        && oblivious_sweep
            .iter()
            .zip(&event_sweep)
            .zip(&word_sweep)
            .all(|((a, b), c)| {
                let want = b.report.golden_snapshot();
                a.report.golden_snapshot() == want && c.report.golden_snapshot() == want
            });
    assert!(fig7_identical, "fig7 sweeps diverged between kernels");
    let fig7_speedup = fig7_ob_s / fig7_ev_s;
    println!(
        "fig7 sweep (48 points): oblivious {fig7_ob_s:.3} s, event-driven {fig7_ev_s:.3} s, \
         word {fig7_wd_s:.3} s"
    );
    println!("end-to-end speedup: {fig7_speedup:.2}x (bitwise identical: {fig7_identical})");

    // Span-profiler cost on the same sweep (event-driven kernel): the
    // gate-sim spans must not perturb results (asserted inside the
    // helper) and the attached cost is recorded alongside the kernel
    // timings so both trajectories track together.
    let (detached_s, attached_s, _profile) = fig7_profile_overhead(&params);
    let profiler_overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
    println!(
        "profiler: detached {detached_s:.3} s, attached {attached_s:.3} s \
         ({profiler_overhead_pct:+.2}%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"gatesim_kernels\",\n  \"netlist\": \"tcpip_checksum\",\n  \
         \"gates\": {gates},\n  \"bench_cycles\": {bench_cycles},\n  \
         \"input_toggle_probability\": {P_TOGGLE},\n  \
         \"oblivious\": {{\"wall_s\": {ob_s:.6}, \"cycles_per_sec\": {ob_cps:.1}, \
         \"gate_evals_per_cycle\": {ob_epc:.2}}},\n  \
         \"event_driven\": {{\"wall_s\": {ev_s:.6}, \"cycles_per_sec\": {ev_cps:.1}, \
         \"gate_evals_per_cycle\": {ev_epc:.2}}},\n  \
         \"speedup\": {speedup:.3},\n  \"eval_reduction\": {:.3},\n  \
         \"bitwise_identical\": {bitwise_identical},\n  \
         \"word_parallel\": {{\"single_stream\": {{\"wall_s\": {wd_s:.6}, \
         \"cycles_per_sec\": {wd_cps:.1}, \"speedup_vs_event\": {wd_single_speedup:.3}}}, \
         \"lane_throughput\": {{\"lanes\": {tp_lanes}, \"cycles_per_lane\": {tp_cycles}, \
         \"wall_s\": {lane_s:.6}, \"scalar_event_wall_s\": {lane_scalar_s:.6}, \
         \"lane_cycles_per_sec\": {lane_cps:.1}, \"speedup_vs_event\": {lane_speedup:.3}}}, \
         \"bitwise_identical\": {bitwise_identical}}},\n  \
         \"simd\": {{\"lane_throughput\": {{\"lanes\": {sd_lanes}, \
         \"cycles_per_lane\": {sd_cycles}, \"wall_s\": {sd_s:.6}, \
         \"scalar_event_wall_s\": {sd_scalar_s:.6}, \
         \"lane_cycles_per_sec\": {sd_cps:.1}, \"speedup_vs_event\": {sd_speedup:.3}, \
         \"speedup_vs_word_lanes\": {sd_vs_word_lanes:.3}, \
         \"baseline_word_lane_cycles_per_sec\": {BASELINE_WORD_LANE_CPS:.1}, \
         \"speedup_vs_baseline_word_lanes\": {sd_vs_baseline:.3}}}, \
         \"monte_carlo_sweep\": {{\"units\": {mc_units}, \"cycles_per_unit\": {mc_cycles}, \
         \"lane_wall_s\": {mc_lane_s:.6}, \"serial_scalar_wall_s\": {mc_serial_s:.6}, \
         \"speedup\": {mc_speedup:.3}, \"bitwise_identical\": true}}, \
         \"bitwise_identical\": {simd_lanes_identical}}},\n  \
         \"fig7_sweep\": {{\"oblivious_wall_s\": {fig7_ob_s:.6}, \
         \"event_driven_wall_s\": {fig7_ev_s:.6}, \"word_wall_s\": {fig7_wd_s:.6}, \
         \"speedup\": {fig7_speedup:.3}, \
         \"bitwise_identical\": {fig7_identical}}},\n  \
         \"profiler_overhead\": {{\"detached_wall_s\": {detached_s:.6}, \
         \"attached_wall_s\": {attached_s:.6}, \
         \"attached_overhead_pct\": {profiler_overhead_pct:.3}, \
         \"bitwise_identical\": true}}\n}}\n",
        ob_epc / ev_epc.max(1e-12)
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
