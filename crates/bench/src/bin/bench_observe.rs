//! Observability benchmark: the paper-style accuracy-vs-speedup table
//! with full energy-provenance attribution, per-technique effectiveness
//! counters, and the span profiler's own overhead, written as
//! `BENCH_observe.json` (plus an NDJSON row stream) so the
//! attribution/overhead trajectory tracks across PRs.
//!
//! Every row is double-checked before it is reported: the observed run
//! (profiler + metrics sink + provenance attached) must be bit-identical
//! to the detached run, and the provenance breakdown must sum bit-exactly
//! to the report totals.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_observe [out.json]
//!   cargo run --release -p soc-bench --bin bench_observe -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{AccelEffectiveness, CoSimConfig, Provenance, SocDescription};
use soc_bench::{
    fig7_profile_overhead, observe_modes, observe_rows, render_observe_table, run_observed,
    timed_run,
};
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

/// The documented budget for the observability layer's cost when every
/// sink is detached: under 2% of the Fig. 7 sweep.
const DETACHED_BUDGET_PCT: f64 = 2.0;

/// Hand-rolled JSON for the effectiveness counters (the workspace is
/// dependency-free; all benchmark artifacts are formatted by hand).
fn effectiveness_json(e: &AccelEffectiveness) -> String {
    let layers: Vec<String> = e
        .answered_by_layer
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect();
    let cache = match &e.cache {
        Some(c) => format!(
            "{{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
             \"distinct_paths\": {}, \"eligible_paths\": {}, \
             \"max_eligible_cv\": {:.6}, \"cv_bound\": {}}}",
            c.hits,
            c.misses,
            c.hit_rate(),
            c.distinct_paths,
            c.eligible_paths,
            c.max_eligible_cv,
            c.cv_bound
        ),
        None => "null".to_string(),
    };
    let sampling = match &e.sampling {
        Some(s) => format!(
            "{{\"period\": {}, \"served\": {}, \"samples\": {}, \
             \"compaction_ratio\": {:.3}}}",
            s.period,
            s.served,
            s.samples,
            s.compaction_ratio()
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"iss_calls_avoided\": {}, \"answered_by_layer\": {{{}}}, \
         \"cache\": {cache}, \"sampling\": {sampling}}}",
        e.iss_calls_avoided(),
        layers.join(", ")
    )
}

/// Checks one system under one acceleration mode: the observed run
/// (provenance + profiler + metrics attached) must match the plain run
/// bit for bit, and the attribution must sum bit-exactly.
fn check_system(name: &str, soc: SocDescription, config: CoSimConfig, mode: &str) {
    let (plain, _) = timed_run(soc.clone(), config.clone());
    let (observed, profile, _metrics) = run_observed(soc, config);
    assert_eq!(
        plain.golden_snapshot(),
        observed.golden_snapshot(),
        "{name}/{mode}: observability perturbed the report"
    );
    observed
        .verify_provenance()
        .unwrap_or_else(|e| panic!("{name}/{mode}: provenance mismatch: {e}"));
    assert!(
        profile.total_spans() > 0,
        "{name}/{mode}: profiler attached but recorded nothing"
    );
}

/// The three reference systems at small parameter settings.
fn systems_under_test() -> Vec<(&'static str, SocDescription)> {
    vec![
        (
            "tcpip",
            tcpip::build(&TcpIpParams {
                num_packets: 8,
                len_range: (8, 24),
                pkt_period: 5_000,
                seed: 3,
            })
            .expect("valid params"),
        ),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_observe.json".to_string());

    // Bit-identity sweep first (both modes): every system × every
    // acceleration mode must verify before anything is reported.
    let config = CoSimConfig::date2000_defaults();
    for (name, soc) in systems_under_test() {
        for (mode, accel) in observe_modes() {
            check_system(name, soc.clone(), config.clone().with_accel(accel), mode);
        }
    }
    println!(
        "provenance bit-identity: {} systems x {} accel modes verified\n",
        systems_under_test().len(),
        observe_modes().len()
    );

    if smoke {
        println!("smoke mode: provenance + bit-identity assertions passed");
        return;
    }

    // The accuracy-vs-speedup table on the TCP/IP system.
    let params = TcpIpParams::fig7_defaults();
    let rows = observe_rows(&params);
    println!("== bench_observe: tcpip accuracy vs. speedup ==\n");
    print!("{}", render_observe_table(&rows));

    // Profiler overhead on the Fig. 7 sweep (48 points, serial engine so
    // the measurement is not scheduler noise).
    let (detached_s, attached_s, sweep_profile) = fig7_profile_overhead(&params);
    let overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
    println!("\nfig7 sweep: detached {detached_s:.3} s, attached {attached_s:.3} s");
    println!(
        "profiler overhead when attached: {overhead_pct:.2}% \
         (detached budget: <{DETACHED_BUDGET_PCT}% vs. PR 4's bench_gatesim fig7 wall)"
    );
    print!("\n{}", sweep_profile.render());

    let mode_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!
            (
                "    {{\"technique\": \"{}\", \"energy_j\": {:e}, \"error_pct\": {:.4}, \
                 \"speedup\": {:.3}, \"wall_s\": {:.6}, \"iss_reduction_pct\": {:.2},\n     \
                 \"provenance\": {},\n     \"effectiveness\": {}}}",
                r.technique,
                r.energy_j,
                r.error_pct,
                r.speedup,
                r.wall_s,
                r.iss_reduction_pct,
                r.report.provenance.to_json(),
                effectiveness_json(&r.report.effectiveness)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"observe\",\n  \"system\": \"tcpip\",\n  \
         \"modes\": [\n{}\n  ],\n  \
         \"fig7_profiler\": {{\"detached_wall_s\": {detached_s:.6}, \
         \"attached_wall_s\": {attached_s:.6}, \"attached_overhead_pct\": {overhead_pct:.3}, \
         \"detached_budget_pct\": {DETACHED_BUDGET_PCT}, \"bitwise_identical\": true,\n    \
         \"profile\": {}}}\n}}\n",
        mode_objs.join(",\n"),
        sweep_profile.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");

    // NDJSON row stream: one self-contained line per technique, easy to
    // append across PRs and to load into external tooling.
    let nd_path = out_path.replace(".json", ".ndjson");
    let mut nd = String::new();
    for r in &rows {
        let measured = [Provenance::MeasuredIss, Provenance::GateLevel]
            .iter()
            .map(|&p| r.report.provenance.energy_for(p))
            .sum::<f64>();
        nd.push_str(&format!(
            "{{\"bench\": \"observe\", \"technique\": \"{}\", \"error_pct\": {:.4}, \
             \"speedup\": {:.3}, \"detailed_energy_j\": {:e}, \"total_energy_j\": {:e}}}\n",
            r.technique,
            r.error_pct,
            r.speedup,
            measured,
            r.report.total_energy_j()
        ));
    }
    std::fs::write(&nd_path, &nd).expect("write benchmark ndjson");
    println!("wrote {nd_path}");
}
