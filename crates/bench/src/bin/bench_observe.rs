//! Observability benchmark: the paper-style accuracy-vs-speedup table
//! with full energy-provenance attribution, per-technique effectiveness
//! counters, and the span profiler's own overhead, written as
//! `BENCH_observe.json` (plus an NDJSON row stream) so the
//! attribution/overhead trajectory tracks across PRs.
//!
//! Every row is double-checked before it is reported: the observed run
//! (profiler + metrics sink + provenance attached) must be bit-identical
//! to the detached run, and the provenance breakdown must sum bit-exactly
//! to the report totals.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_observe [out.json]
//!   cargo run --release -p soc-bench --bin bench_observe -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{AccelEffectiveness, CoSimConfig, Provenance, SocDescription};
use soc_bench::{
    fig7_profile_overhead, fig7_timeline_overhead, observe_modes, observe_rows,
    render_observe_table, run_observed, timed_run, timeline_run,
};
use soctrace::json::JsonValue;
use soctrace::{check_vcd, json, write_perfetto, write_vcd, TimelineReport};
use std::time::Instant;
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

/// The documented budget for the observability layer's cost when every
/// sink is detached: under 2% of the Fig. 7 sweep.
const DETACHED_BUDGET_PCT: f64 = 2.0;

/// The documented budget for the power-timeline sink's cost when
/// attached to every point of the Fig. 7 sweep.
const TIMELINE_BUDGET_PCT: f64 = 10.0;

/// Timeline window width used for the benchmark's binning, master
/// clock cycles (the ledger's default waveform bucket).
const TIMELINE_WINDOW_CYCLES: u64 = 1_000;

/// Best-of-N measurements may still come out slightly negative on a
/// noisy host; anything below this is a measurement bug (the old
/// single-pass version reported −6%).
const OVERHEAD_NOISE_FLOOR_PCT: f64 = -2.0;

/// Hand-rolled JSON for the effectiveness counters (the workspace is
/// dependency-free; all benchmark artifacts are formatted by hand).
fn effectiveness_json(e: &AccelEffectiveness) -> String {
    let layers: Vec<String> = e
        .answered_by_layer
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect();
    let cache = match &e.cache {
        Some(c) => format!(
            "{{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
             \"distinct_paths\": {}, \"eligible_paths\": {}, \
             \"max_eligible_cv\": {:.6}, \"cv_bound\": {}}}",
            c.hits,
            c.misses,
            c.hit_rate(),
            c.distinct_paths,
            c.eligible_paths,
            c.max_eligible_cv,
            c.cv_bound
        ),
        None => "null".to_string(),
    };
    let sampling = match &e.sampling {
        Some(s) => format!(
            "{{\"period\": {}, \"served\": {}, \"samples\": {}, \
             \"compaction_ratio\": {:.3}}}",
            s.period,
            s.served,
            s.samples,
            s.compaction_ratio()
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"iss_calls_avoided\": {}, \"answered_by_layer\": {{{}}}, \
         \"cache\": {cache}, \"sampling\": {sampling}}}",
        e.iss_calls_avoided(),
        layers.join(", ")
    )
}

/// Checks one system under one acceleration mode: the observed run
/// (provenance + profiler + metrics attached) must match the plain run
/// bit for bit, and the attribution must sum bit-exactly.
fn check_system(name: &str, soc: SocDescription, config: CoSimConfig, mode: &str) {
    let (plain, _) = timed_run(soc.clone(), config.clone());
    let (observed, profile, _metrics) = run_observed(soc, config);
    assert_eq!(
        plain.golden_snapshot(),
        observed.golden_snapshot(),
        "{name}/{mode}: observability perturbed the report"
    );
    observed
        .verify_provenance()
        .unwrap_or_else(|e| panic!("{name}/{mode}: provenance mismatch: {e}"));
    assert!(
        profile.total_spans() > 0,
        "{name}/{mode}: profiler attached but recorded nothing"
    );
}

/// One calibration-seed NDJSON row per timeline window: the window's
/// activity counters next to the per-component energies it produced —
/// the `(counters, energy)` pairs ROADMAP item 5a's counter-based
/// macro-model calibration will regress over.
fn calibration_rows(system: &str, technique: &str, tl: &TimelineReport) -> String {
    let mut out = String::new();
    for w in 0..tl.window_count() {
        let c = &tl.counters[w];
        let comps: Vec<String> = tl
            .components
            .iter()
            .map(|cw| format!("\"{}\": {:e}", cw.name, cw.window_energy_j[w]))
            .collect();
        let total: f64 = tl.components.iter().map(|cw| cw.window_energy_j[w]).sum();
        out.push_str(&format!(
            "{{\"bench\": \"calibration\", \"system\": \"{system}\", \
             \"technique\": \"{technique}\", \"window\": {w}, \"window_cycles\": {}, \
             \"start_cycle\": {}, \"firings\": {}, \"gate_evals\": {}, \"gate_events\": {}, \
             \"bus_words\": {}, \"icache_fetches\": {}, \"icache_misses\": {}, \
             \"energy_j\": {{{}}}, \"total_energy_j\": {total:e}}}\n",
            tl.window_cycles,
            w as u64 * tl.window_cycles,
            c.firings,
            c.gate_evals,
            c.gate_events,
            c.bus_words,
            c.icache_fetches,
            c.icache_misses,
            comps.join(", "),
        ));
    }
    out
}

/// The three reference systems at small parameter settings.
fn systems_under_test() -> Vec<(&'static str, SocDescription)> {
    vec![
        (
            "tcpip",
            tcpip::build(&TcpIpParams {
                num_packets: 8,
                len_range: (8, 24),
                pkt_period: 5_000,
                seed: 3,
            })
            .expect("valid params"),
        ),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_observe.json".to_string());

    // Bit-identity sweep first (both modes): every system × every
    // acceleration mode must verify before anything is reported.
    let config = CoSimConfig::date2000_defaults();
    for (name, soc) in systems_under_test() {
        for (mode, accel) in observe_modes() {
            check_system(name, soc.clone(), config.clone().with_accel(accel), mode);
        }
    }
    println!(
        "provenance bit-identity: {} systems x {} accel modes verified\n",
        systems_under_test().len(),
        observe_modes().len()
    );

    if smoke {
        // Satellite check on the measurement itself: best-of-N timing
        // must never report the attached sweep meaningfully faster than
        // the detached one (the single-pass version of this measurement
        // did, on busy hosts).
        let small = TcpIpParams {
            num_packets: 4,
            len_range: (8, 16),
            pkt_period: 5_000,
            seed: 3,
        };
        let (detached_s, attached_s, _) = fig7_profile_overhead(&small);
        let overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
        assert!(
            overhead_pct >= OVERHEAD_NOISE_FLOOR_PCT,
            "profiler overhead measured at {overhead_pct:.2}% — attached runs cannot be \
             this much faster than detached under best-of-N timing"
        );
        println!(
            "smoke mode: provenance + bit-identity assertions passed; \
             profiler overhead {overhead_pct:.2}% (noise floor {OVERHEAD_NOISE_FLOOR_PCT}%)"
        );
        return;
    }

    // The accuracy-vs-speedup table on the TCP/IP system.
    let params = TcpIpParams::fig7_defaults();
    let rows = observe_rows(&params);
    println!("== bench_observe: tcpip accuracy vs. speedup ==\n");
    print!("{}", render_observe_table(&rows));

    // Profiler overhead on the Fig. 7 sweep (48 points, serial engine so
    // the measurement is not scheduler noise).
    let (detached_s, attached_s, sweep_profile) = fig7_profile_overhead(&params);
    let overhead_pct = 100.0 * (attached_s - detached_s) / detached_s;
    println!("\nfig7 sweep: detached {detached_s:.3} s, attached {attached_s:.3} s");
    println!(
        "profiler overhead when attached: {overhead_pct:.2}% \
         (detached budget: <{DETACHED_BUDGET_PCT}% vs. PR 4's bench_gatesim fig7 wall)"
    );
    print!("\n{}", sweep_profile.render());

    // Timeline overhead on the same sweep: a per-point power timeline
    // attached to all 48 points must stay within its documented budget.
    let (tl_detached_s, tl_timed_s, point_peaks) = fig7_timeline_overhead(&params);
    let tl_overhead_pct = 100.0 * (tl_timed_s - tl_detached_s) / tl_detached_s;
    let sweep_peak_w = point_peaks.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nfig7 sweep with per-point timeline: detached {tl_detached_s:.3} s, \
         timed {tl_timed_s:.3} s ({tl_overhead_pct:.2}%, budget <{TIMELINE_BUDGET_PCT}%); \
         peak window power across all 48 points: {sweep_peak_w:.4} W"
    );
    assert!(
        tl_overhead_pct <= TIMELINE_BUDGET_PCT,
        "timeline sink overhead {tl_overhead_pct:.2}% exceeds the {TIMELINE_BUDGET_PCT}% budget"
    );
    assert!(
        tl_overhead_pct >= OVERHEAD_NOISE_FLOOR_PCT,
        "timeline overhead measured at {tl_overhead_pct:.2}% — attached runs cannot be \
         this much faster than detached under best-of-N timing"
    );

    // Windowed power statistics for every system × technique, the
    // per-component mirror totals checked bit-exactly against the
    // ledger on the way, plus the calibration-seed row stream.
    let mut tl_objs: Vec<String> = Vec::new();
    let mut calib = String::new();
    let mut export_source: Option<TimelineReport> = None;
    println!(
        "\n{:<17} | {:<10} | {:>10} | {:>10} | {:>6}",
        "System", "Technique", "Peak (W)", "Avg (W)", "Crest"
    );
    println!("{}", "-".repeat(64));
    for (sys_name, soc) in systems_under_test() {
        for (mode, accel) in observe_modes() {
            let cfg = config.clone().with_accel(accel);
            let (observed, tl) = timeline_run(soc.clone(), cfg, TIMELINE_WINDOW_CYCLES);
            for (i, c) in tl.components.iter().enumerate() {
                let ledger = observed
                    .account
                    .totals(co_estimation::ComponentId(i as u32))
                    .energy_j;
                assert_eq!(
                    c.total_j.to_bits(),
                    ledger.to_bits(),
                    "{sys_name}/{mode}: timeline mirror diverged from the ledger for `{}`",
                    c.name
                );
            }
            let peak = tl.peak().expect("nonempty run has a peak window");
            let avg = tl.average_power_w();
            let crest = if avg > 0.0 { peak.power_w / avg } else { 0.0 };
            println!(
                "{sys_name:<17} | {mode:<10} | {:>10.4} | {:>10.4} | {crest:>6.2}",
                peak.power_w, avg
            );
            tl_objs.push(format!(
                "    {{\"system\": \"{sys_name}\", \"technique\": \"{mode}\", \
                 \"windows\": {}, \"window_cycles\": {TIMELINE_WINDOW_CYCLES}, \
                 \"peak_w\": {:e}, \"peak_window_start_cycle\": {}, \"average_w\": {:e}, \
                 \"moving_avg3_max_w\": {:e}, \"crest_factor\": {crest:.4}}}",
                tl.window_count(),
                peak.power_w,
                peak.start_cycle,
                avg,
                tl.moving_average_max_w(3),
            ));
            calib.push_str(&calibration_rows(sys_name, mode, &tl));
            if sys_name == "tcpip" && mode == "baseline" {
                export_source = Some(tl);
            }
        }
    }

    // Exporter cost and validity on the tcpip/baseline timeline: the
    // VCD must pass the in-repo checker and the Perfetto JSON must
    // round-trip through the in-repo parser.
    let export_source = export_source.expect("tcpip/baseline ran");
    let t0 = Instant::now();
    let vcd = write_vcd(&export_source);
    let vcd_s = t0.elapsed().as_secs_f64();
    let vcd_summary = check_vcd(&vcd).expect("emitted VCD parses");
    let t0 = Instant::now();
    let perfetto = write_perfetto(&export_source, Some(&sweep_profile));
    let perfetto_s = t0.elapsed().as_secs_f64();
    let perfetto_events = json::parse(&perfetto)
        .expect("emitted Perfetto JSON parses")
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::len)
        .expect("traceEvents array");
    println!(
        "\nexporters (tcpip/baseline): VCD {} bytes, {} signals, {} changes in {:.1} ms; \
         Perfetto {} bytes, {perfetto_events} events in {:.1} ms",
        vcd.len(),
        vcd_summary.signals,
        vcd_summary.changes,
        vcd_s * 1e3,
        perfetto.len(),
        perfetto_s * 1e3
    );

    let mode_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!
            (
                "    {{\"technique\": \"{}\", \"energy_j\": {:e}, \"error_pct\": {:.4}, \
                 \"speedup\": {:.3}, \"wall_s\": {:.6}, \"iss_reduction_pct\": {:.2},\n     \
                 \"provenance\": {},\n     \"effectiveness\": {}}}",
                r.technique,
                r.energy_j,
                r.error_pct,
                r.speedup,
                r.wall_s,
                r.iss_reduction_pct,
                r.report.provenance.to_json(),
                effectiveness_json(&r.report.effectiveness)
            )
        })
        .collect();
    let timeline_json = format!(
        "{{\n   \"window_cycles\": {TIMELINE_WINDOW_CYCLES},\n   \"systems\": [\n{}\n   ],\n   \
         \"fig7_timeline\": {{\"detached_wall_s\": {tl_detached_s:.6}, \
         \"timed_wall_s\": {tl_timed_s:.6}, \"overhead_pct\": {tl_overhead_pct:.3}, \
         \"budget_pct\": {TIMELINE_BUDGET_PCT}, \"sweep_peak_w\": {sweep_peak_w:e}, \
         \"points\": {}}},\n   \
         \"exporters\": {{\"vcd_bytes\": {}, \"vcd_signals\": {}, \"vcd_changes\": {}, \
         \"vcd_write_s\": {vcd_s:.6}, \"perfetto_bytes\": {}, \
         \"perfetto_events\": {perfetto_events}, \"perfetto_write_s\": {perfetto_s:.6}}}\n  }}",
        tl_objs.join(",\n"),
        point_peaks.len(),
        vcd.len(),
        vcd_summary.signals,
        vcd_summary.changes,
        perfetto.len(),
    );
    let json = format!(
        "{{\n  \"bench\": \"observe\",\n  \"system\": \"tcpip\",\n  \
         \"modes\": [\n{}\n  ],\n  \
         \"fig7_profiler\": {{\"detached_wall_s\": {detached_s:.6}, \
         \"attached_wall_s\": {attached_s:.6}, \"attached_overhead_pct\": {overhead_pct:.3}, \
         \"detached_budget_pct\": {DETACHED_BUDGET_PCT}, \"bitwise_identical\": true,\n    \
         \"profile\": {}}},\n  \
         \"timeline\": {timeline_json}\n}}\n",
        mode_objs.join(",\n"),
        sweep_profile.to_json()
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");

    // NDJSON row stream: one self-contained line per technique, easy to
    // append across PRs and to load into external tooling.
    let nd_path = out_path.replace(".json", ".ndjson");
    let mut nd = String::new();
    for r in &rows {
        let measured = [Provenance::MeasuredIss, Provenance::GateLevel]
            .iter()
            .map(|&p| r.report.provenance.energy_for(p))
            .sum::<f64>();
        nd.push_str(&format!(
            "{{\"bench\": \"observe\", \"technique\": \"{}\", \"error_pct\": {:.4}, \
             \"speedup\": {:.3}, \"detailed_energy_j\": {:e}, \"total_energy_j\": {:e}}}\n",
            r.technique,
            r.error_pct,
            r.speedup,
            measured,
            r.report.total_energy_j()
        ));
    }
    std::fs::write(&nd_path, &nd).expect("write benchmark ndjson");
    println!("wrote {nd_path}");

    // Calibration seed: one NDJSON row per timeline window with the
    // window's activity counters and per-component energies — the
    // input contract for ROADMAP item 5a's counter-based calibration.
    let calib_path = if out_path.contains("observe") {
        out_path.replace("observe", "calibration").replace(".json", ".ndjson")
    } else {
        out_path.replace(".json", "_calibration.ndjson")
    };
    for line in calib.lines() {
        json::parse(line).expect("calibration row parses");
    }
    std::fs::write(&calib_path, &calib).expect("write calibration ndjson");
    println!("wrote {calib_path} ({} rows)", calib.lines().count());
}
