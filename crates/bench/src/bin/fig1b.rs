//! Regenerates Fig. 1(b): energy estimates obtained using separate
//! HW/SW estimation vs. co-estimation for the producer/timer/consumer
//! system.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::fig1b;
use systems::producer_consumer::ProducerConsumerParams;

fn main() {
    println!("== Fig. 1(b): separate estimation vs. co-estimation ==");
    println!("(paper: producer 6.97e-5 J in both; consumer 2.58e-9 J separate");
    println!(" vs 6.75e-9 J co-estimated — a ~62% under-estimate)\n");
    let rows = fig1b(&ProducerConsumerParams::fig1_defaults());
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "process", "separate (J)", "co-est (J)", "error"
    );
    for r in &rows {
        println!(
            "{:<10} {:>14.4e} {:>14.4e} {:>9.1}%",
            r.name,
            r.separate_j,
            r.coest_j,
            100.0 * r.separate_error()
        );
    }
    let consumer = rows
        .iter()
        .find(|r| r.name == "consumer")
        .expect("consumer row");
    println!(
        "\nseparate estimation under-estimates the consumer by {:.1}% \
         (paper: ~62%)",
        -100.0 * consumer.separate_error()
    );
}
