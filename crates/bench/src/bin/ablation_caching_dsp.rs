//! Ablation for §5.2's remark: with a processor whose per-instruction
//! energy depends on operand data (e.g. a DSP), energy caching is no
//! longer error-free; the thresholds then bound the error.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::caching_dsp_ablation;
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Ablation: caching error vs. instruction-power data dependence ==");
    println!("(paper §5.2: zero error for the SPARClite model because instruction");
    println!(" energy does not depend on data; non-zero expected for DSP-like models)\n");
    let (sparc, dsp) = caching_dsp_ablation(&TcpIpParams::table_defaults());
    println!("SPARClite model      : caching |error| = {sparc:.4}%");
    println!("data-dependent model : caching |error| = {dsp:.4}%");
    println!(
        "\n{}",
        if dsp >= sparc {
            "as predicted: data dependence introduces (bounded) caching error"
        } else {
            "UNEXPECTED: data-dependent model showed less error"
        }
    );
}
