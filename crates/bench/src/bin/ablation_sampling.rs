//! Ablation for §4.3: statistical sampling / sequence compaction.
//!
//! Part 1 — firing-level sampling in the co-estimation master: error and
//! detailed-simulation reduction vs. the sampling period.
//!
//! Part 2 — K-memory dynamic sequence compaction on a vector stream fed
//! to a gate-level netlist: the compacted stream's average power vs. the
//! full stream's, together with the preserved stream statistics.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{KMemoryCompactor, StreamStats};
use gatesim::bus::{self};
use detrand::Rng;
use gatesim::{Netlist, PowerConfig, Simulator};
use soc_bench::sampling_ablation;
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Ablation: statistical sampling / sequence compaction (§4.3) ==\n");

    println!("-- firing-level sampling on the TCP/IP co-estimation --");
    println!("{:>7} {:>10} {:>18}", "period", "error %", "detailed calls %");
    for (period, err, frac) in sampling_ablation(&TcpIpParams::table_defaults(), &[2, 4, 8, 16]) {
        println!("{period:>7} {err:>10.3} {:>17.1}%", frac * 100.0);
    }

    println!("\n-- K-memory dynamic compaction of a gate-level vector stream --");
    // A 16-bit datapath (adder + xor mix) driven by a bursty stream.
    let mut nl = Netlist::new();
    let a = bus::input_bus(&mut nl, 16);
    let b = bus::input_bus(&mut nl, 16);
    let c0 = nl.constant(false);
    let (sum, _) = bus::adder(&mut nl, &a, &b, c0);
    let _mix = bus::bitwise(&mut nl, gatesim::GateKind::Xor, &sum, &a);

    let mut rng = Rng::seed_from_u64(42);
    // Bursty: quiet phases (small values) and busy phases (wide toggling).
    let stream: Vec<(u64, u64)> = (0..4000)
        .map(|i| {
            if (i / 100) % 2 == 0 {
                (rng.u64_in(0, 8), rng.u64_in(0, 8))
            } else {
                (rng.u64_in(0, 65536), rng.u64_in(0, 65536))
            }
        })
        .collect();

    // Statistics are preserved over an *activity class* of each vector
    // (Hamming-weight bucket), matching the paper's per-signal
    // statistics criterion — whole vectors are almost never repeated.
    fn activity_class(v: &(u64, u64)) -> u64 {
        ((v.0.count_ones() + v.1.count_ones()) / 4) as u64
    }

    let run_stream = |vectors: &[(u64, u64)]| -> f64 {
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        let mut total = 0.0;
        for &(va, vb) in vectors {
            sim.set_input_bus(a.nets(), va);
            sim.set_input_bus(b.nets(), vb);
            total += sim.step();
        }
        total / vectors.len() as f64 // average energy per vector
    };

    let full_avg = run_stream(&stream);
    println!("{:>8} {:>6} {:>14} {:>10} {:>12} {:>12}", "K", "keep", "avg E/vec (J)", "error %", "freq dist", "pair dist");
    println!("{:>8} {:>6} {:>14.4e} {:>10} {:>12} {:>12}", "full", "-", full_avg, "-", "-", "-");
    let class_stream: Vec<u64> = stream.iter().map(activity_class).collect();
    for (k, keep) in [(100, 50), (100, 25), (100, 10), (200, 20)] {
        let mut comp = KMemoryCompactor::with_key(k, keep, activity_class);
        let mut out = Vec::new();
        for &v in &stream {
            if let Some(batch) = comp.push(v) {
                out.extend(batch);
            }
        }
        if let Some(batch) = comp.flush() {
            out.extend(batch);
        }
        let avg = run_stream(&out);
        let err = 100.0 * ((avg - full_avg) / full_avg).abs();
        let orig_stats = StreamStats::measure(&class_stream);
        let comp_classes: Vec<u64> = out.iter().map(activity_class).collect();
        let comp_stats = StreamStats::measure(&comp_classes);
        println!(
            "{k:>8} {keep:>6} {avg:>14.4e} {err:>10.2} {:>12.4} {:>12.4}",
            orig_stats.freq_distance(&comp_stats),
            orig_stats.pair_distance(&comp_stats),
        );
    }
    println!(
        "\nthe compacted streams reproduce the full stream's average per-vector\n\
         power within a few percent at 4x-10x fewer simulated vectors."
    );
}
