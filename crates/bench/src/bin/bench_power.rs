//! Power-management benchmark: per-technique savings (gating, DVFS,
//! combined) on the TCP/IP system versus the all-Active baseline,
//! written as `BENCH_power.json` so the savings trajectory tracks
//! across PRs.
//!
//! Nothing is reported until two contracts verify:
//!
//! * the disabled policy (`PowerPolicy::none()`) reproduces the plain
//!   run **bit-identically** — the power layer must cost nothing when
//!   off;
//! * the serial and parallel policy sweeps agree **bitwise** at every
//!   point, and every managed report passes `verify_provenance`.
//!
//! Usage:
//!   cargo run --release -p soc-bench --bin bench_power [out.json]
//!   cargo run --release -p soc-bench --bin bench_power -- --smoke

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{
    explore_power_policies, explore_power_policies_parallel, CoSimConfig, CoSimulator,
    ExploreOptions, GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy, PowerPoint,
    Provenance,
};
use systems::tcpip::{build, TcpIpParams};

/// The benchmark's static-power floor: 2 mW per process component.
const LEAK_W: f64 = 2.0e-3;

fn params() -> TcpIpParams {
    TcpIpParams {
        num_packets: 8,
        len_range: (8, 24),
        pkt_period: 5_000,
        seed: 3,
    }
}

/// The policy menu: every technique alone, then combined. The savings
/// counters are online (tracked against the same schedule all-Active),
/// so one run per policy suffices — no baseline subtraction.
fn policies() -> Vec<PowerPolicy> {
    let leakage = LeakageModel::with_default_rate(LEAK_W);
    vec![
        PowerPolicy::named("leak_only").with_leakage(leakage.clone()),
        PowerPolicy::named("clock_gating")
            .with_leakage(leakage.clone())
            .gate("create_pack", GatingPolicy::clock(300))
            .gate("packet_queue", GatingPolicy::clock(300)),
        PowerPolicy::named("power_gating")
            .with_leakage(leakage.clone())
            .gate("create_pack", GatingPolicy::power(600, 5.0e-8, 20))
            .gate("packet_queue", GatingPolicy::power(600, 5.0e-8, 20)),
        PowerPolicy::named("dvfs")
            .with_leakage(leakage.clone())
            .with_operating_point(OperatingPoint::new("0.8v_0.5f", 0.8, 0.5))
            .dvfs("create_pack", 0)
            .dvfs("packet_queue", 0),
        PowerPolicy::named("combined")
            .with_leakage(leakage)
            .with_operating_point(OperatingPoint::new("0.8v_0.5f", 0.8, 0.5))
            .dvfs("create_pack", 0)
            .dvfs("packet_queue", 0)
            .gate("create_pack", GatingPolicy::clock(300))
            .gate("packet_queue", GatingPolicy::power(600, 5.0e-8, 20)),
    ]
}

/// One verified technique row as a JSON object.
fn technique_json(pt: &PowerPoint) -> String {
    let p = pt.report.power.as_ref().expect("managed run");
    format!(
        "    {{\"technique\": \"{}\", \"energy_j\": {:e}, \"total_cycles\": {}, \
         \"leakage_j\": {:e}, \"dvfs_saved_j\": {:e}, \"gating_saved_j\": {:e}, \
         \"wake_overhead_j\": {:e}, \"net_saved_j\": {:e}, \"transitions\": {}}}",
        pt.policy_name,
        pt.energy_j(),
        pt.report.total_cycles,
        p.leakage_j,
        p.savings.dvfs_dynamic_saved_j,
        p.savings.gating_leakage_saved_j,
        p.savings.wake_overhead_j,
        p.savings.net_saved_j(),
        p.components.iter().map(|c| c.transitions).sum::<u64>(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_power.json".to_string());

    let soc = build(&params()).expect("valid params");
    let config = CoSimConfig::date2000_defaults();

    // Contract 1: the disabled policy is bit-identical to the plain run.
    let plain = CoSimulator::new(soc.clone(), config.clone())
        .expect("valid soc")
        .run();
    let disabled = CoSimulator::new(
        soc.clone(),
        config.with_power_policy(PowerPolicy::none()),
    )
    .expect("valid soc")
    .run();
    assert_eq!(
        plain.golden_snapshot(),
        disabled.golden_snapshot(),
        "PowerPolicy::none() must reproduce the plain run bit-identically"
    );
    assert!(
        disabled.power.is_none(),
        "a noop policy must not build a power report"
    );
    println!("disabled-policy bit-identity: verified");

    // Contract 2: serial and parallel sweeps agree bitwise, and every
    // managed report keeps provenance an exact partition.
    let menu = policies();
    let serial = explore_power_policies(&soc, &config, &menu).expect("serial sweep");
    let parallel = explore_power_policies_parallel(
        &soc,
        &config,
        &menu,
        &ExploreOptions::with_workers(4),
    )
    .expect("parallel sweep");
    assert_eq!(serial.len(), parallel.points.len());
    for (s, p) in serial.iter().zip(&parallel.points) {
        assert_eq!(
            s.report.golden_snapshot(),
            p.report.golden_snapshot(),
            "policy `{}`: serial and parallel sweeps diverged",
            s.policy_name
        );
        s.report
            .verify_provenance()
            .unwrap_or_else(|e| panic!("policy `{}`: {e}", s.policy_name));
        assert!(
            s.report.provenance.records_for(Provenance::Leakage) > 0,
            "policy `{}` must book leakage spans",
            s.policy_name
        );
    }
    println!(
        "serial-vs-parallel sweep: {} policies bitwise identical, provenance exact",
        serial.len()
    );

    // At least two techniques must actually save energy.
    let saving: Vec<&PowerPoint> = serial
        .iter()
        .filter(|pt| pt.net_saved_j() > 0.0)
        .collect();
    assert!(
        saving.len() >= 2,
        "expected >= 2 techniques with positive net savings, got {}",
        saving.len()
    );

    if smoke {
        println!("smoke mode: bit-identity + sweep + savings assertions passed");
        return;
    }

    println!("\n== bench_power: tcpip per-technique savings ==\n");
    println!(
        "{:>14} | {:>11} {:>9} | {:>10} {:>10} {:>10} {:>10}",
        "technique", "energy J", "cycles", "leak J", "dvfs J", "gate J", "net J"
    );
    for pt in &serial {
        let p = pt.report.power.as_ref().expect("managed run");
        println!(
            "{:>14} | {:>11.4e} {:>9} | {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}",
            pt.policy_name,
            pt.energy_j(),
            pt.report.total_cycles,
            p.leakage_j,
            p.savings.dvfs_dynamic_saved_j,
            p.savings.gating_leakage_saved_j,
            p.savings.net_saved_j(),
        );
    }

    let rows: Vec<String> = serial.iter().map(technique_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"power\",\n  \"system\": \"tcpip\",\n  \
         \"leak_w_per_component\": {LEAK_W:e},\n  \
         \"baseline_energy_j\": {:e},\n  \
         \"disabled_policy_bit_identical\": true,\n  \
         \"serial_parallel_bitwise_identical\": true,\n  \
         \"techniques\": [\n{}\n  ]\n}}\n",
        plain.total_energy_j(),
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
