//! Validates emitted observability artifacts, dispatching on extension:
//!
//! * `.vcd` — must pass [`soctrace::check_vcd`] (well-formed header,
//!   declared ids, monotonic timestamps);
//! * `.json` — must parse with the in-repo [`soctrace::json`] parser;
//!   a Chrome-trace document must additionally carry a nonempty
//!   `traceEvents` array;
//! * `.ndjson` — every line must parse as a JSON value.
//!
//! Exits nonzero on the first invalid file, so CI can gate on artifact
//! validity without any external tooling.
//!
//! Usage:
//!   `cargo run -p soc-bench --bin check_artifacts -- <file>...`

// CI gate binary: aborting loudly on an invalid artifact is the whole
// point, matching the tests-and-benches carve-out from the
// workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soctrace::json::{self, JsonValue};

fn check_one(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if path.ends_with(".vcd") {
        let s = soctrace::check_vcd(&text)?;
        Ok(format!(
            "valid VCD: {} signals, {} changes, end time {} ns",
            s.signals, s.changes, s.end_time
        ))
    } else if path.ends_with(".ndjson") {
        let mut rows = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            rows += 1;
        }
        Ok(format!("valid NDJSON: {rows} rows"))
    } else if path.ends_with(".json") {
        let doc = json::parse(&text).map_err(|e| e.to_string())?;
        match doc.get("traceEvents").and_then(JsonValue::as_array) {
            Some([]) => Err("empty traceEvents array".to_string()),
            Some(events) => Ok(format!("valid Chrome trace: {} events", events.len())),
            None => Ok("valid JSON".to_string()),
        }
    } else {
        Err("unknown extension (expected .vcd, .json or .ndjson)".to_string())
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    assert!(!paths.is_empty(), "usage: check_artifacts <file>...");
    let mut failed = false;
    for path in &paths {
        match check_one(path) {
            Ok(msg) => println!("{path}: {msg}"),
            Err(msg) => {
                eprintln!("{path}: INVALID: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
