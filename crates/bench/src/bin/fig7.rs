//! Regenerates Fig. 7: exhaustive exploration of the TCP/IP
//! communication architecture — 6 priority assignments × 8 DMA sizes =
//! 48 design points, reporting the energy surface and the minimum.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{minimum_energy, CoSimConfig, ExploreOptions};
use soc_bench::{fig7_parallel, render_sweep_stats, run_with_metrics, FIG7_DMA_SIZES};
use systems::tcpip::{self, TcpIpParams};

fn main() {
    println!("== Fig. 7: communication-architecture design-space exploration ==");
    println!("(paper: 48 points; minimum at DMA = 128 with priorities");
    println!(" Create_Pack > IP_Check > Checksum; whole sweep ≈ 180 min on an");
    println!(" Ultra Enterprise 450 — measure how long it takes here)\n");
    let options = ExploreOptions::default();
    println!("sweeping on {} worker thread(s)\n", options.workers);
    let sweep = fig7_parallel(&TcpIpParams::fig7_defaults(), &options);
    let points = sweep.points;

    // Group rows by priority label.
    let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
    labels.dedup();
    print!("{:<38}", "priorities \\ DMA");
    for dma in FIG7_DMA_SIZES {
        print!("{dma:>10}");
    }
    println!();
    for label in labels {
        print!("{label:<38}");
        for dma in FIG7_DMA_SIZES {
            let p = points
                .iter()
                .find(|p| p.label == label && p.dma_block_size == dma)
                .expect("grid point");
            print!("{:>10.3e}", p.energy_j());
        }
        println!();
    }
    let min = minimum_energy(&points).expect("nonempty sweep");
    println!(
        "\nminimum energy {:.4e} J at DMA = {} with priorities {}",
        min.energy_j(),
        min.dma_block_size,
        min.label
    );
    println!("sweep: {}", render_sweep_stats(&sweep.stats));

    // Observability cross-check at the minimum-energy configuration: a
    // single traced run whose MetricsSink aggregates must agree with the
    // report's own counters.
    let params = TcpIpParams::fig7_defaults();
    let soc = tcpip::build(&params).expect("valid params");
    let (report, metrics) = run_with_metrics(soc, CoSimConfig::date2000_defaults());
    assert_eq!(metrics.firings, report.firings, "trace/report firing drift");
    println!(
        "\ntrace metrics (default config): {} firings, {} detailed calls, \
         {} accelerated, {} bus grants ({} words), {} icache fetches",
        metrics.firings,
        metrics.detailed_calls,
        metrics.accelerated_calls(),
        metrics.bus_grants,
        metrics.bus_words,
        metrics.icache_fetches,
    );
}
