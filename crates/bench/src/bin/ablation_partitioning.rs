//! Ablation for §5.2's remark that macro-modeling's relative accuracy
//! also holds when "attempting to rank several different HW/SW
//! partitions": sweep every feasible mapping of the TCP/IP processes and
//! check that the macro-model ranks the partitions like the detailed
//! framework does.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use co_estimation::{
    explore_partitions_parallel, Acceleration, CoSimConfig, ExploreOptions,
};
use soc_bench::render_sweep_stats;
use systems::tcpip::{build, TcpIpParams};

fn main() {
    println!("== Ablation: ranking HW/SW partitions with macro-modeling ==\n");
    let params = TcpIpParams {
        num_packets: 10,
        len_range: (16, 48),
        pkt_period: 6_000,
        seed: 0xDA7E_2000,
    };
    let soc = build(&params).expect("valid params");
    let movable: Vec<cfsm::ProcId> = ["create_pack", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect();

    let base_cfg = CoSimConfig::date2000_defaults();
    let options = ExploreOptions::default();
    let detailed_sweep =
        explore_partitions_parallel(&soc, &base_cfg, &movable, &options).expect("sweep");
    let mm_sweep = explore_partitions_parallel(
        &soc,
        &base_cfg.with_accel(Acceleration::macromodel()),
        &movable,
        &options,
    )
    .expect("sweep");
    println!("detailed sweep: {}", render_sweep_stats(&detailed_sweep.stats));
    println!("macromodel sweep: {}\n", render_sweep_stats(&mm_sweep.stats));
    let (detailed, mm) = (detailed_sweep.points, mm_sweep.points);

    println!(
        "{:<44} {:>14} {:>16}",
        "partition", "detailed (J)", "macromodel (J)"
    );
    for (d, m) in detailed.iter().zip(&mm) {
        assert_eq!(d.label, m.label, "sweeps enumerate identically");
        println!(
            "{:<44} {:>14.4e} {:>16.4e}",
            d.label,
            d.energy_j(),
            m.energy_j()
        );
    }

    let rank = |pts: &[co_estimation::PartitionPoint]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        idx.sort_by(|&a, &b| {
            pts[a]
                .energy_j()
                .partial_cmp(&pts[b].energy_j())
                .expect("no NaN")
        });
        idx
    };
    let agree = rank(&detailed) == rank(&mm);
    println!(
        "\npartition ranking preserved by macro-modeling: {}",
        if agree { "YES" } else { "NO" }
    );
    let best = &detailed[rank(&detailed)[0]];
    println!("best partition (detailed): {}", best.label);
}
