//! Regenerates Table 2: speedup and accuracy of the macro-modeling
//! acceleration over the TCP/IP DMA-size sweep.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::{render_speedup_table, table2};
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Table 2: power macro-modeling — speedup and accuracy ==");
    println!("(paper: speedups 18.9x–87.1x, avg 44.8x; error 19.6%–32.9%, conservative)\n");
    let rows = table2(&TcpIpParams::table_defaults());
    print!("{}", render_speedup_table(&rows, "Macromodel", true));
    let conservative = rows.iter().all(|r| r.accel_energy_j > r.orig_energy_j);
    println!(
        "\nmacro-model estimates are {} (paper: conservative / over-estimating)",
        if conservative {
            "conservative for every configuration"
        } else {
            "NOT uniformly conservative"
        }
    );
}
