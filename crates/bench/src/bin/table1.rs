//! Regenerates Table 1: speedup and accuracy of the energy-caching
//! acceleration over the TCP/IP DMA-size sweep.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::{render_speedup_table, table1};
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Table 1: energy caching — speedup and accuracy ==");
    println!("(paper: speedups 8.6x–18.8x, avg 13x, zero energy error)\n");
    let rows = table1(&TcpIpParams::table_defaults());
    print!("{}", render_speedup_table(&rows, "Caching", true));
    println!(
        "\nNote: with the SPARClite instruction-level power model the\n\
         energy column is unchanged by caching (the paper reports the\n\
         same and therefore omits the cached-energy column)."
    );
}
