//! Regenerates Fig. 4(b): per-path energy histograms from a long
//! co-simulation — one highly clustered (low-variance) path suitable for
//! caching, one spread-out path that should keep using the detailed
//! simulator.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::{fig4_histograms, render_histogram};
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Fig. 4(b): energy histograms of frequently executed paths ==\n");
    let hists = fig4_histograms(&TcpIpParams::table_defaults(), 12);
    for h in &hists {
        println!("{}", render_histogram(h));
    }
    if let (Some(flat), Some(spread)) = (
        hists.iter().find(|h| h.cv < 1e-6),
        hists.iter().find(|h| h.cv >= 1e-6),
    ) {
        println!(
            "path in `{}` is cacheable (CV = {:.2e}); path in `{}` varies (CV = {:.3})\n\
             — the caching thresholds of §4.2 separate exactly these two cases.",
            flat.process, flat.cv, spread.process, spread.cv
        );
    }
}
