//! Regenerates Fig. 6: relative accuracy (tracking fidelity) of
//! macro-modeling — system energy with macro-modeling vs. the vanilla
//! framework across the DMA-size configurations.

// Regeneration binary for the evaluation harness: aborting loudly on a
// broken setup is correct here, matching the tests-and-benches carve-out
// from the workspace-wide panic-free policy.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use soc_bench::{fig6, ranks_agree};
use systems::tcpip::TcpIpParams;

fn main() {
    println!("== Fig. 6: relative accuracy of energy macro-modeling ==");
    println!("(paper: points fall on a near-line; ranking of configurations preserved)\n");
    let points = fig6(&TcpIpParams::table_defaults());
    println!(
        "{:>4} {:>16} {:>22}",
        "DMA", "orig energy (J)", "macromodel energy (J)"
    );
    for p in &points {
        println!("{:>4} {:>16.4e} {:>22.4e}", p.dma, p.orig_j, p.macro_j);
    }
    // Least-squares slope through the origin-shifted points, as a
    // linearity summary.
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.orig_j).sum::<f64>() / n;
    let my = points.iter().map(|p| p.macro_j).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|p| (p.orig_j - mx) * (p.macro_j - my)).sum();
    let sxx: f64 = points.iter().map(|p| (p.orig_j - mx).powi(2)).sum();
    let syy: f64 = points.iter().map(|p| (p.macro_j - my).powi(2)).sum();
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    println!("\nlinear correlation r = {r:.4} (paper shows a near-linear relationship)");
    println!(
        "configuration ranking preserved: {}",
        if ranks_agree(&points) { "YES" } else { "NO" }
    );
}
