//! Benchmarks of the substrate simulators: where the co-estimation
//! wall-clock time actually goes (gate-level simulation, ISS execution,
//! cache and bus models, sequence compaction).
//!
//! Uses the crate's own timing harness (`harness = false`) so the bench
//! suite builds without external dependencies: each benchmark runs a
//! warmup pass, then reports per-iteration wall-clock time over a fixed
//! number of batched iterations.

use cfsm::{BlockId, CfgBuilder, Cfsm, EventId, Expr, Stmt, Terminator, TransitionId, VarId};
use co_estimation::KMemoryCompactor;
use gatesim::bus as gbus;
use gatesim::{HwCfsm, Netlist, PowerConfig, Simulator, SynthConfig};
use iss::{PowerModel, SwCfsm};
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` in batches of `batch` calls and prints the best and mean
/// per-call time over `rounds` batches.
fn bench<F: FnMut()>(name: &str, rounds: u32, batch: u32, mut f: F) {
    f(); // warmup
    let mut per_call: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    let best = per_call[0];
    let mean = per_call.iter().sum::<f64>() / per_call.len() as f64;
    println!(
        "{name:<44} best {:>10.3} us   mean {:>10.3} us",
        best * 1e6,
        mean * 1e6
    );
}

/// A 16-bit accumulate loop machine shared by the HW and SW benches.
fn loop_machine() -> Cfsm {
    let v0 = VarId(0);
    let v1 = VarId(1);
    let mut cb = CfgBuilder::new();
    cb.block(
        vec![],
        Terminator::Branch {
            cond: Expr::gt(Expr::Var(v0), Expr::Const(0)),
            then_block: BlockId(1),
            else_block: BlockId(2),
        },
    );
    cb.block(
        vec![
            Stmt::Assign {
                var: v1,
                expr: Expr::bin(
                    cfsm::BinOp::And,
                    Expr::add(Expr::Var(v1), Expr::Var(v0)),
                    Expr::Const(0x7FFF),
                ),
            },
            Stmt::Assign {
                var: v0,
                expr: Expr::sub(Expr::Var(v0), Expr::Const(1)),
            },
        ],
        Terminator::Goto(BlockId(0)),
    );
    cb.block(vec![], Terminator::Return);
    let mut b = Cfsm::builder("loop");
    let s = b.state("s");
    b.var("v0", 0);
    b.var("v1", 0);
    b.transition(s, vec![EventId(0)], None, cb.finish().expect("valid"), s);
    b.finish().expect("valid machine")
}

fn gate_sim_bench() {
    // A 16-bit multiplier array — a representative datapath block.
    let mut nl = Netlist::new();
    let a = gbus::input_bus(&mut nl, 16);
    let b_ = gbus::input_bus(&mut nl, 16);
    let _p = gbus::multiplier(&mut nl, &a, &b_);
    let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
    let mut x = 1u64;
    bench("gatesim/mul16_cycle", 20, 100, || {
        x = x.wrapping_mul(48271) % 0xFFFF;
        sim.set_input_bus(a.nets(), x);
        sim.set_input_bus(b_.nets(), x ^ 0x5A5A);
        black_box(sim.step());
    });
    let mut hw = HwCfsm::synthesize(
        &loop_machine(),
        &SynthConfig::new(),
        &PowerConfig::date2000_defaults(),
    )
    .expect("synthesizable");
    bench("gatesim/hw_transition_30_iters", 20, 20, || {
        black_box(
            hw.transition_mut(TransitionId(0))
                .run(&[30, 0], &|_| 0, &[])
                .energy_j,
        );
    });
}

fn iss_bench() {
    let mut sw =
        SwCfsm::new(&loop_machine(), PowerModel::sparclite(), &|_| false).expect("compiles");
    bench("iss/sw_transition_100_iters", 20, 50, || {
        black_box(
            sw.run_transition(TransitionId(0), &[100, 0], &|_| 0, &[])
                .energy_j,
        );
    });
}

fn cache_bench() {
    let mut cache = cachesim::Cache::new(cachesim::CacheConfig::sparclite_icache());
    let mut addr = 0u64;
    bench("cachesim/access", 20, 10_000, || {
        addr = addr.wrapping_add(68) % (64 * 1024);
        black_box(cache.access(addr).hit);
    });
}

fn bus_bench() {
    let mut bus = busmodel::Bus::new(busmodel::BusConfig::date2000_defaults());
    let m = bus.register_master("m", 1);
    let ops: Vec<(u64, i64, bool)> = (0..32).map(|i| (i * 8, i as i64 * 3, i % 2 == 0)).collect();
    let mut t = 0u64;
    bench("busmodel/transfer_32_words", 20, 200, || {
        let tr = bus.transfer(m, t, &ops);
        t = tr.end;
        black_box(tr.energy_j);
    });
}

fn compaction_bench() {
    let stream: Vec<u32> = (0..10_000u32).map(|i| i * 2654435761 % 97).collect();
    bench("sampling/compact_10k_window100_keep20", 20, 5, || {
        let mut comp = KMemoryCompactor::new(100, 20);
        let mut kept = 0usize;
        for &s in &stream {
            if let Some(batch) = comp.push(s) {
                kept += batch.len();
            }
        }
        black_box(kept);
    });
}

fn main() {
    gate_sim_bench();
    iss_bench();
    cache_bench();
    bus_bench();
    compaction_bench();
}
