//! Criterion benchmarks of the substrate simulators: where the
//! co-estimation wall-clock time actually goes (gate-level simulation,
//! ISS execution, cache and bus models, sequence compaction).

use cfsm::{BlockId, CfgBuilder, Cfsm, EventId, Expr, Stmt, Terminator, TransitionId, VarId};
use co_estimation::KMemoryCompactor;
use criterion::{criterion_group, criterion_main, Criterion};
use gatesim::bus as gbus;
use gatesim::{HwCfsm, Netlist, PowerConfig, Simulator, SynthConfig};
use iss::{PowerModel, SwCfsm};
use std::hint::black_box;

/// A 16-bit accumulate loop machine shared by the HW and SW benches.
fn loop_machine() -> Cfsm {
    let v0 = VarId(0);
    let v1 = VarId(1);
    let mut cb = CfgBuilder::new();
    cb.block(
        vec![],
        Terminator::Branch {
            cond: Expr::gt(Expr::Var(v0), Expr::Const(0)),
            then_block: BlockId(1),
            else_block: BlockId(2),
        },
    );
    cb.block(
        vec![
            Stmt::Assign {
                var: v1,
                expr: Expr::bin(
                    cfsm::BinOp::And,
                    Expr::add(Expr::Var(v1), Expr::Var(v0)),
                    Expr::Const(0x7FFF),
                ),
            },
            Stmt::Assign {
                var: v0,
                expr: Expr::sub(Expr::Var(v0), Expr::Const(1)),
            },
        ],
        Terminator::Goto(BlockId(0)),
    );
    cb.block(vec![], Terminator::Return);
    let mut b = Cfsm::builder("loop");
    let s = b.state("s");
    b.var("v0", 0);
    b.var("v1", 0);
    b.transition(s, vec![EventId(0)], None, cb.finish().expect("valid"), s);
    b.finish().expect("valid machine")
}

fn gate_sim_bench(c: &mut Criterion) {
    // A 16-bit multiplier array — a representative datapath block.
    let mut nl = Netlist::new();
    let a = gbus::input_bus(&mut nl, 16);
    let b_ = gbus::input_bus(&mut nl, 16);
    let _p = gbus::multiplier(&mut nl, &a, &b_);
    let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
    let mut g = c.benchmark_group("gatesim");
    g.bench_function("mul16_cycle", |bch| {
        let mut x = 1u64;
        bch.iter(|| {
            x = x.wrapping_mul(48271) % 0xFFFF;
            sim.set_input_bus(a.nets(), x);
            sim.set_input_bus(b_.nets(), x ^ 0x5A5A);
            black_box(sim.step())
        })
    });
    g.bench_function("hw_transition_30_iters", |bch| {
        let mut hw = HwCfsm::synthesize(
            &loop_machine(),
            &SynthConfig::new(),
            &PowerConfig::date2000_defaults(),
        )
        .expect("synthesizable");
        bch.iter(|| {
            black_box(
                hw.transition_mut(TransitionId(0))
                    .run(&[30, 0], &|_| 0, &[])
                    .energy_j,
            )
        })
    });
    g.finish();
}

fn iss_bench(c: &mut Criterion) {
    let mut sw = SwCfsm::new(&loop_machine(), PowerModel::sparclite(), &|_| false)
        .expect("compiles");
    c.bench_function("iss/sw_transition_100_iters", |b| {
        b.iter(|| {
            black_box(
                sw.run_transition(TransitionId(0), &[100, 0], &|_| 0, &[])
                    .energy_j,
            )
        })
    });
}

fn cache_bench(c: &mut Criterion) {
    let mut cache = cachesim::Cache::new(cachesim::CacheConfig::sparclite_icache());
    c.bench_function("cachesim/access", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(68) % (64 * 1024);
            black_box(cache.access(addr).hit)
        })
    });
}

fn bus_bench(c: &mut Criterion) {
    let mut bus = busmodel::Bus::new(busmodel::BusConfig::date2000_defaults());
    let m = bus.register_master("m", 1);
    let ops: Vec<(u64, i64, bool)> = (0..32).map(|i| (i * 8, i as i64 * 3, i % 2 == 0)).collect();
    c.bench_function("busmodel/transfer_32_words", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let tr = bus.transfer(m, t, &ops);
            t = tr.end;
            black_box(tr.energy_j)
        })
    });
}

fn compaction_bench(c: &mut Criterion) {
    let stream: Vec<u32> = (0..10_000u32).map(|i| i * 2654435761 % 97).collect();
    c.bench_function("sampling/compact_10k_window100_keep20", |b| {
        b.iter(|| {
            let mut comp = KMemoryCompactor::new(100, 20);
            let mut kept = 0usize;
            for &s in &stream {
                if let Some(batch) = comp.push(s) {
                    kept += batch.len();
                }
            }
            black_box(kept)
        })
    });
}

criterion_group!(
    benches,
    gate_sim_bench,
    iss_bench,
    cache_bench,
    bus_bench,
    compaction_bench
);
criterion_main!(benches);
