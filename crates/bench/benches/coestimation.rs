//! Benchmarks of the co-estimation framework itself: the baseline vs.
//! each acceleration technique (the machine-measured counterpart of
//! Tables 1 and 2), plus the Fig. 7 exploration loop.
//!
//! Uses the crate's own timing harness (`harness = false`) so the bench
//! suite builds without external dependencies: each benchmark runs a
//! warmup pass, then reports the median, minimum, and mean wall-clock
//! time over a fixed number of iterations.

use co_estimation::{Acceleration, CoSimConfig, CoSimulator};
use soc_bench::table1_caching;
use std::hint::black_box;
use std::time::Instant;
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // warmup
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} median {:>10.3} ms   min {:>10.3} ms   mean {:>10.3} ms",
        median * 1e3,
        min * 1e3,
        mean * 1e3
    );
}

fn bench_params() -> TcpIpParams {
    TcpIpParams {
        num_packets: 16,
        len_range: (16, 48),
        pkt_period: 6_000,
        seed: 0xDA7E_2000,
    }
}

fn run(accel: Acceleration, dma: u32) -> f64 {
    let config = CoSimConfig::date2000_defaults()
        .with_dma_block_size(dma)
        .with_accel(accel);
    let soc = tcpip::build(&bench_params()).expect("valid params");
    let mut sim = CoSimulator::new(soc, config).expect("builds");
    sim.run().total_energy_j()
}

/// Table 1/2 as a machine benchmark: the speedup ratios reported by the
/// binaries correspond to the time ratios between these groups.
fn accel_benches() {
    for dma in [2u32, 64] {
        bench(&format!("tcpip_coestimation/orig/dma{dma}"), 10, || {
            black_box(run(Acceleration::none(), dma));
        });
        bench(&format!("tcpip_coestimation/caching/dma{dma}"), 10, || {
            black_box(run(Acceleration::caching(table1_caching()), dma));
        });
        bench(&format!("tcpip_coestimation/macromodel/dma{dma}"), 10, || {
            black_box(run(Acceleration::macromodel(), dma));
        });
    }
}

/// Fig. 1(b)'s co-simulation as a benchmark (the separate-estimation
/// baseline is dominated by the same estimator costs).
fn fig1b_bench() {
    let params = ProducerConsumerParams {
        num_pkts: 6,
        pkt_bytes: 64,
        start_period: 800,
        tick_period: 200,
        num_starts: 30,
    };
    bench("producer_consumer/coestimation", 10, || {
        let soc = producer_consumer::build(&params).expect("valid params");
        let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        black_box(sim.run().total_energy_j());
    });
}

/// One Fig. 7 exploration point (the sweep is 48 of these).
fn fig7_point_bench() {
    bench("tcpip_exploration/one_point", 10, || {
        let config = CoSimConfig::date2000_defaults().with_dma_block_size(16);
        let soc = tcpip::build(&TcpIpParams::fig7_defaults()).expect("valid params");
        let mut sim = CoSimulator::new(soc, config).expect("builds");
        black_box(sim.run().total_energy_j());
    });
}

fn main() {
    accel_benches();
    fig1b_bench();
    fig7_point_bench();
}
