//! Criterion benchmarks of the co-estimation framework itself: the
//! baseline vs. each acceleration technique (the machine-measured
//! counterpart of Tables 1 and 2), plus the Fig. 7 exploration loop.

use co_estimation::{Acceleration, CoSimConfig, CoSimulator};
use criterion::{criterion_group, criterion_main, Criterion};
use soc_bench::table1_caching;
use std::hint::black_box;
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

fn bench_params() -> TcpIpParams {
    TcpIpParams {
        num_packets: 16,
        len_range: (16, 48),
        pkt_period: 6_000,
        seed: 0xDA7E_2000,
    }
}

fn run(accel: Acceleration, dma: u32) -> f64 {
    let config = CoSimConfig::date2000_defaults()
        .with_dma_block_size(dma)
        .with_accel(accel);
    let mut sim = CoSimulator::new(tcpip::build(&bench_params()), config).expect("builds");
    sim.run().total_energy_j()
}

/// Table 1/2 as a machine benchmark: the speedup ratios reported by the
/// binaries correspond to the time ratios between these groups.
fn accel_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpip_coestimation");
    g.sample_size(10);
    for dma in [2u32, 64] {
        g.bench_function(format!("orig/dma{dma}"), |b| {
            b.iter(|| black_box(run(Acceleration::none(), dma)))
        });
        g.bench_function(format!("caching/dma{dma}"), |b| {
            b.iter(|| black_box(run(Acceleration::caching(table1_caching()), dma)))
        });
        g.bench_function(format!("macromodel/dma{dma}"), |b| {
            b.iter(|| black_box(run(Acceleration::macromodel(), dma)))
        });
    }
    g.finish();
}

/// Fig. 1(b)'s co-simulation as a benchmark (the separate-estimation
/// baseline is dominated by the same estimator costs).
fn fig1b_bench(c: &mut Criterion) {
    let params = ProducerConsumerParams {
        num_pkts: 6,
        pkt_bytes: 64,
        start_period: 800,
        tick_period: 200,
        num_starts: 30,
    };
    let mut g = c.benchmark_group("producer_consumer");
    g.sample_size(10);
    g.bench_function("coestimation", |b| {
        b.iter(|| {
            let mut sim = CoSimulator::new(
                producer_consumer::build(&params),
                CoSimConfig::date2000_defaults(),
            )
            .expect("builds");
            black_box(sim.run().total_energy_j())
        })
    });
    g.finish();
}

/// One Fig. 7 exploration point (the sweep is 48 of these).
fn fig7_point_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpip_exploration");
    g.sample_size(10);
    g.bench_function("one_point", |b| {
        b.iter(|| {
            let config = CoSimConfig::date2000_defaults().with_dma_block_size(16);
            let mut sim =
                CoSimulator::new(tcpip::build(&TcpIpParams::fig7_defaults()), config)
                    .expect("builds");
            black_box(sim.run().total_energy_j())
        })
    });
    g.finish();
}

criterion_group!(benches, accel_benches, fig1b_bench, fig7_point_bench);
criterion_main!(benches);
