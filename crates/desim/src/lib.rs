//! `desim` — a deterministic discrete-event simulation kernel.
//!
//! This crate is the PTOLEMY analogue of the SOC power co-estimation
//! framework from *"Efficient Power Co-Estimation Techniques for
//! System-on-Chip Design"* (Lajolo, Raghunathan, Dey, Lavagno — DATE 2000):
//! a single simulation master with a global view of simulated time that the
//! higher-level `co-estimation` crate uses to synchronize the hardware and
//! software power estimators.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated time in master clock cycles;
//! * [`EventQueue`] — a timestamp-ordered pending-event set with FIFO
//!   tie-breaking (bit-for-bit reproducible schedules);
//! * [`Kernel`] / [`Process`] — a generic event-dispatch loop;
//! * [`Watchdog`] / [`WatchdogConfig`] — execution budgets (wall clock,
//!   simulated cycles, event count, livelock detection) that let a guarded
//!   run terminate with a partial result instead of hanging;
//! * [`RtosScheduler`] — a behavioral model of the RTOS that serializes
//!   software tasks on the shared embedded processor.
//!
//! # Examples
//!
//! ```
//! use desim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_cycles(3), "b");
//! q.push(SimTime::from_cycles(1), "a");
//! assert_eq!(q.pop(), Some((SimTime::from_cycles(1), "a")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod queue;
mod rtos;
mod time;
mod watchdog;

pub use kernel::{Context, Kernel, Process, ProcessId};
pub use queue::EventQueue;
pub use rtos::{Grant, Policy, Priority, RtosScheduler, TaskId};
pub use time::{SimDuration, SimTime};
pub use watchdog::{Watchdog, WatchdogConfig, WatchdogTrip};
