//! A generic discrete-event simulation kernel.
//!
//! [`Kernel`] owns a set of boxed [`Process`]es and a deterministic
//! [`EventQueue`](crate::EventQueue). Processes receive events addressed to
//! them and may schedule further events (to themselves or to peers) through
//! the [`Context`] passed to their handler. The kernel is the PTOLEMY
//! analogue in this reproduction: a single simulation master with a global
//! view of time.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::watchdog::{Watchdog, WatchdogConfig, WatchdogTrip};
use soctrace::{TraceRecord, Tracer};
use std::fmt;

/// Identifier of a process registered with a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// A simulation actor that reacts to events of type `E`.
pub trait Process<E> {
    /// Handles `event` delivered at the current simulation time.
    ///
    /// Further events may be scheduled through `ctx`.
    fn handle(&mut self, event: &E, ctx: &mut Context<'_, E>);
}

/// Handler-side view of the kernel: current time plus the ability to
/// schedule future events.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    self_id: ProcessId,
    outbox: &'a mut Vec<(SimTime, ProcessId, E)>,
}

impl<'a, E> Context<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the process whose handler is running.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Schedules `event` for delivery to `target` after `delay`.
    pub fn send(&mut self, target: ProcessId, delay: SimDuration, event: E) {
        self.outbox.push((self.now + delay, target, event));
    }

    /// Schedules `event` for delivery to the running process after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, event: E) {
        let me = self.self_id;
        self.send(me, delay, event);
    }
}

/// A single-master discrete-event simulator (see module docs).
///
/// # Examples
///
/// A one-shot "ping-pong" between two processes:
///
/// ```
/// use desim::{Kernel, Process, Context, ProcessId, SimDuration, SimTime};
///
/// struct Echo { heard: u32 }
/// impl Process<u32> for Echo {
///     fn handle(&mut self, ev: &u32, ctx: &mut Context<'_, u32>) {
///         self.heard += ev;
///         if *ev < 3 {
///             ctx.send_self(SimDuration::from_cycles(5), ev + 1);
///         }
///     }
/// }
///
/// let mut k = Kernel::new();
/// let p = k.add_process(Echo { heard: 0 });
/// k.post(SimTime::ZERO, p, 1u32);
/// k.run();
/// assert_eq!(k.now(), SimTime::from_cycles(10)); // events at 0, 5, 10
/// ```
pub struct Kernel<E> {
    processes: Vec<Box<dyn Process<E>>>,
    queue: EventQueue<(ProcessId, E)>,
    now: SimTime,
    delivered: u64,
    tracer: Tracer,
}

impl<E> fmt::Debug for Kernel<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("processes", &self.processes.len())
            .field("pending", &self.queue.len())
            .field("now", &self.now)
            .field("delivered", &self.delivered)
            .field("tracer", &self.tracer)
            .finish()
    }
}

impl<E> Kernel<E> {
    /// Creates an empty kernel at time zero.
    pub fn new() -> Self {
        Kernel {
            processes: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delivered: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a trace sink; every delivery emits a
    /// [`TraceRecord::KernelEvent`]. Tracing is observational — an
    /// attached sink never changes the schedule.
    pub fn attach_trace(&mut self, sink: Box<dyn soctrace::TraceSink>) {
        self.tracer.attach(sink);
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn detach_trace(&mut self) -> Option<Box<dyn soctrace::TraceSink>> {
        self.tracer.detach()
    }

    /// Registers a process, returning its id.
    pub fn add_process(&mut self, p: impl Process<E> + 'static) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(Box::new(p));
        id
    }

    /// Schedules `event` for delivery to `target` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or `target` is unknown.
    pub fn post(&mut self, time: SimTime, target: ProcessId, event: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        assert!(
            (target.0 as usize) < self.processes.len(),
            "unknown process {target}"
        );
        self.queue.push(time, (target, event));
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivers a single event, if one is pending. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self) -> bool {
        let Some((time, (target, event))) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        self.delivered += 1;
        self.tracer.emit(|| TraceRecord::KernelEvent {
            at: time.cycles(),
            process: target.0,
        });
        let mut outbox = Vec::new();
        {
            let mut ctx = Context {
                now: time,
                self_id: target,
                outbox: &mut outbox,
            };
            self.processes[target.0 as usize].handle(&event, &mut ctx);
        }
        for (t, tgt, ev) in outbox {
            self.post(t, tgt, ev);
        }
        true
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is exhausted or time would exceed `until`.
    /// Events at exactly `until` are still delivered.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
    }

    /// Runs until the queue is exhausted or a [`Watchdog`] budget trips.
    ///
    /// Each pending event is observed by the watchdog *before* delivery, so
    /// an event scheduled past a deadline is left in the queue and the
    /// kernel state remains inspectable (a partial but consistent result).
    /// With the default (unlimited) configuration this behaves exactly like
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns the [`WatchdogTrip`] describing the exhausted budget.
    pub fn run_guarded(&mut self, config: &WatchdogConfig) -> Result<(), WatchdogTrip> {
        let mut dog = Watchdog::new(config.clone());
        while let Some(t) = self.queue.peek_time() {
            if let Some(trip) = dog.observe(t) {
                return Err(trip);
            }
            self.step();
        }
        Ok(())
    }

    /// Mutable access to a registered process (for inspection in tests).
    ///
    /// Returns `None` for unknown ids. Downcasting is the caller's
    /// responsibility; prefer keeping handles to shared state instead.
    pub fn process_mut(&mut self, id: ProcessId) -> Option<&mut (dyn Process<E> + '_)> {
        self.processes
            .get_mut(id.0 as usize)
            .map(|b| &mut **b as _)
    }
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Recorder {
        log: Rc<RefCell<Vec<(u64, u32)>>>,
    }
    impl Process<u32> for Recorder {
        fn handle(&mut self, ev: &u32, ctx: &mut Context<'_, u32>) {
            self.log.borrow_mut().push((ctx.now().cycles(), *ev));
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut k = Kernel::new();
        let p = k.add_process(Recorder { log: log.clone() });
        k.post(SimTime::from_cycles(5), p, 50);
        k.post(SimTime::from_cycles(1), p, 10);
        k.post(SimTime::from_cycles(5), p, 51);
        k.run();
        assert_eq!(*log.borrow(), vec![(1, 10), (5, 50), (5, 51)]);
        assert_eq!(k.delivered(), 3);
    }

    struct Chain;
    impl Process<u32> for Chain {
        fn handle(&mut self, ev: &u32, ctx: &mut Context<'_, u32>) {
            if *ev > 0 {
                ctx.send_self(SimDuration::from_cycles(2), ev - 1);
            }
        }
    }

    #[test]
    fn self_scheduling_chain_advances_time() {
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.post(SimTime::ZERO, p, 4);
        k.run();
        assert_eq!(k.now(), SimTime::from_cycles(8));
        assert_eq!(k.delivered(), 5);
    }

    #[test]
    fn run_until_stops_before_later_events() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut k = Kernel::new();
        let p = k.add_process(Recorder { log: log.clone() });
        for t in [1u64, 5, 9] {
            k.post(SimTime::from_cycles(t), p, t as u32);
        }
        k.run_until(SimTime::from_cycles(5));
        assert_eq!(*log.borrow(), vec![(1, 1), (5, 5)]);
        k.run();
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.post(SimTime::from_cycles(3), p, 0);
        k.run();
        k.post(SimTime::from_cycles(1), p, 0);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn posting_to_unknown_process_panics() {
        let mut k: Kernel<u32> = Kernel::new();
        k.post(SimTime::ZERO, ProcessId(7), 0);
    }

    #[test]
    fn run_guarded_unlimited_matches_run() {
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.post(SimTime::ZERO, p, 4);
        assert_eq!(k.run_guarded(&WatchdogConfig::unlimited()), Ok(()));
        assert_eq!(k.now(), SimTime::from_cycles(8));
        assert_eq!(k.delivered(), 5);
    }

    #[test]
    fn run_guarded_trips_on_cycle_budget_and_leaves_queue_intact() {
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.post(SimTime::ZERO, p, 100);
        let cfg = WatchdogConfig { max_cycles: Some(9), ..WatchdogConfig::default() };
        let trip = k.run_guarded(&cfg).unwrap_err();
        assert!(matches!(trip, WatchdogTrip::SimCycles { limit: 9, .. }), "{trip}");
        // Events at 0, 2, 4, 6, 8 were delivered; the event at 10 was not.
        assert_eq!(k.delivered(), 5);
        // The undelivered event survives: the run can be resumed or inspected.
        assert_eq!(k.run_guarded(&WatchdogConfig::unlimited()), Ok(()));
        assert_eq!(k.delivered(), 101);
    }

    /// A process that reschedules itself at the *same* instant forever —
    /// the canonical livelock the no-progress detector exists for.
    struct Spinner;
    impl Process<u32> for Spinner {
        fn handle(&mut self, _ev: &u32, ctx: &mut Context<'_, u32>) {
            ctx.send_self(SimDuration::from_cycles(0), 0);
        }
    }

    #[test]
    fn run_guarded_detects_livelock() {
        let mut k = Kernel::new();
        let p = k.add_process(Spinner);
        k.post(SimTime::from_cycles(3), p, 0);
        let cfg =
            WatchdogConfig { max_stagnant_events: Some(50), ..WatchdogConfig::default() };
        let trip = k.run_guarded(&cfg).unwrap_err();
        assert_eq!(trip, WatchdogTrip::Livelock { limit: 50, at_cycle: 3 });
    }

    #[test]
    fn run_guarded_trips_on_event_budget() {
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.post(SimTime::ZERO, p, 1_000);
        let cfg = WatchdogConfig { max_events: Some(10), ..WatchdogConfig::default() };
        let trip = k.run_guarded(&cfg).unwrap_err();
        assert_eq!(trip, WatchdogTrip::EventBudget { limit: 10 });
        assert_eq!(k.delivered(), 10);
    }

    struct PingPong {
        peer: Option<ProcessId>,
        count: Rc<RefCell<u32>>,
    }
    impl Process<u32> for PingPong {
        fn handle(&mut self, ev: &u32, ctx: &mut Context<'_, u32>) {
            *self.count.borrow_mut() += 1;
            if let (Some(peer), true) = (self.peer, *ev > 0) {
                ctx.send(peer, SimDuration::from_cycles(1), ev - 1);
            }
        }
    }

    #[test]
    fn attached_trace_observes_deliveries_without_changing_schedule() {
        use soctrace::{MemorySink, SharedSink};
        let run = |trace: bool| {
            let mut k = Kernel::new();
            let p = k.add_process(Chain);
            k.post(SimTime::ZERO, p, 4);
            let shared = SharedSink::new(MemorySink::new());
            if trace {
                k.attach_trace(Box::new(shared.clone()));
            }
            k.run();
            (k.now(), k.delivered(), shared.with(|m| m.records.len()))
        };
        let (t_plain, n_plain, r_plain) = run(false);
        let (t_traced, n_traced, r_traced) = run(true);
        assert_eq!((t_plain, n_plain), (t_traced, n_traced));
        assert_eq!(r_plain, 0);
        assert_eq!(r_traced, 5, "one KernelEvent per delivery");

        // Detach returns the sink and disables further emission.
        let mut k = Kernel::new();
        let p = k.add_process(Chain);
        k.attach_trace(Box::new(SharedSink::new(MemorySink::new())));
        assert!(k.detach_trace().is_some());
        k.post(SimTime::ZERO, p, 0);
        k.run();
    }

    #[test]
    fn two_process_ping_pong() {
        let count = Rc::new(RefCell::new(0));
        let mut k = Kernel::new();
        let a = k.add_process(PingPong {
            peer: Some(ProcessId(1)),
            count: count.clone(),
        });
        let _b = k.add_process(PingPong {
            peer: Some(ProcessId(0)),
            count: count.clone(),
        });
        k.post(SimTime::ZERO, a, 6);
        k.run();
        assert_eq!(*count.borrow(), 7);
        assert_eq!(k.now(), SimTime::from_cycles(6));
    }
}
