//! Simulation time and durations.
//!
//! The kernel measures time in *master clock cycles*. All component
//! simulators report their costs in cycles of the master clock; physical
//! time is derived by dividing by the clock frequency supplied in the
//! technology parameters of the enclosing framework.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, in master clock cycles.
///
/// `SimTime` is a monotone, totally ordered quantity. Subtraction of two
/// `SimTime`s yields a [`SimDuration`]; adding a [`SimDuration`] to a
/// `SimTime` yields a later `SimTime`.
///
/// # Examples
///
/// ```
/// use desim::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_cycles(10);
/// assert_eq!(t1 - t0, SimDuration::from_cycles(10));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time at the given absolute cycle count.
    ///
    /// ```
    /// # use desim::SimTime;
    /// assert_eq!(SimTime::from_cycles(0), SimTime::ZERO);
    /// ```
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// The absolute cycle count of this time point.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Converts to seconds at the given clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive.
    pub fn as_seconds(self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "clock frequency must be positive");
        self.0 as f64 / freq_hz
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A span of simulated time, in master clock cycles.
///
/// # Examples
///
/// ```
/// use desim::SimDuration;
/// let d = SimDuration::from_cycles(3) + SimDuration::from_cycles(4);
/// assert_eq!(d.cycles(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration spanning `cycles` master clock cycles.
    pub const fn from_cycles(cycles: u64) -> Self {
        SimDuration(cycles)
    }

    /// The number of cycles this duration spans.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to seconds at the given clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive.
    pub fn as_seconds(self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "clock frequency must be positive");
        self.0 as f64 / freq_hz
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturates at [`SimTime::MAX`] (an unreachable instant some 10¹⁹
    /// cycles out) instead of overflowing.
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturates at zero when `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// Saturates at the maximum representable duration instead of
    /// overflowing.
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl From<u64> for SimDuration {
    fn from(cycles: u64) -> Self {
        SimDuration(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.cycles(), 0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_cycles(100);
        let d = SimDuration::from_cycles(42);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_cycles(1) < SimTime::from_cycles(2));
        assert!(SimDuration::from_cycles(1) < SimDuration::from_cycles(2));
        assert!(SimTime::MAX > SimTime::from_cycles(u64::MAX - 1));
    }

    #[test]
    fn seconds_conversion() {
        let t = SimTime::from_cycles(50_000_000);
        assert!((t.as_seconds(50e6) - 1.0).abs() < 1e-12);
        let d = SimDuration::from_cycles(25_000_000);
        assert!((d.as_seconds(50e6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sub_saturates_at_zero() {
        assert_eq!(
            SimTime::from_cycles(1) - SimTime::from_cycles(2),
            SimDuration::from_cycles(0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn seconds_requires_positive_freq() {
        let _ = SimTime::from_cycles(1).as_seconds(0.0);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let t = SimTime::MAX.saturating_add(SimDuration::from_cycles(5));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_cycles(7).to_string(), "7cy");
        assert_eq!(SimDuration::from_cycles(7).to_string(), "7cy");
    }
}
