//! Deterministic pending-event set.
//!
//! The event queue is the heart of the discrete-event kernel: a priority
//! queue ordered by timestamp, with FIFO tie-breaking so that two events
//! scheduled for the same instant are delivered in the order they were
//! scheduled. Determinism matters because the co-estimation experiments must
//! be exactly reproducible run-to-run.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its delivery time and insertion sequence number.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic timestamp-ordered event queue.
///
/// Events with equal timestamps pop in insertion (FIFO) order, which makes
/// simulations bit-for-bit reproducible.
///
/// # Examples
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_cycles(5), "late");
/// q.push(SimTime::from_cycles(1), "early");
/// q.push(SimTime::from_cycles(5), "late2");
///
/// assert_eq!(q.pop(), Some((SimTime::from_cycles(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_cycles(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_cycles(5), "late2")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 8, 2] {
            q.push(SimTime::from_cycles(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(4);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), 'a');
        q.push(SimTime::from_cycles(2), 'b');
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(2)));
        let (t, _) = q.pop().expect("nonempty");
        assert_eq!(t, SimTime::from_cycles(2));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<u8> = vec![
            (SimTime::from_cycles(2), 2u8),
            (SimTime::from_cycles(1), 1u8),
        ]
        .into_iter()
        .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(1)));
    }
}
