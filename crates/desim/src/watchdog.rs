//! Execution budgets for guarded simulation runs.
//!
//! A co-simulation that injects faults (or explores a pathological design
//! point) can livelock, spin without advancing simulated time, or run far
//! past any useful horizon. A [`Watchdog`] observes the event-dispatch loop
//! and trips when one of the configured budgets is exhausted, letting the
//! driver terminate with a *partial* result instead of hanging.
//!
//! All budgets default to `None` (disabled): an unlimited watchdog performs
//! only a handful of integer compares per observed event and never reads
//! the wall clock, so guarding a run is free when no budget is set.
//!
//! # Boundary contract
//!
//! Every budget is **inclusive**: the watchdog trips on the first
//! observation strictly *past* the limit, never *at* it.
//!
//! * `max_cycles: Some(n)` — an event dispatched at simulated cycle `n`
//!   is still processed; the first event at cycle `n + 1` or later
//!   trips. A run whose final event lands exactly at cycle `n`
//!   therefore completes (`Completed`), while a budget of `n - 1` over
//!   the same schedule degrades — the off-by-one tests below and the
//!   system-level test in `tests/robustness.rs` pin this down.
//! * `max_events: Some(n)` — exactly `n` events are dispatched; the
//!   `n + 1`-th observation trips *before* the event is handled.
//! * `max_stagnant_events: Some(n)` — `n` consecutive zero-progress
//!   events after the first at an instant are tolerated; the next trips.
//!
//! [`Watchdog::observe`] must be called *before* handling the event it
//! observes, so a tripped budget means the offending event was never
//! processed and the partial result is consistent up to the previous
//! event. The static pre-simulation checker (`socverify`) relies on
//! this contract when it treats the watchdog as its dynamic backstop:
//! a deadlocked-but-busy system trips deterministically at the same
//! event on every run.

use crate::time::SimTime;
use std::fmt;
use std::time::{Duration, Instant};

/// Budgets for a guarded run. Every limit is optional; the default
/// configuration never trips.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Wall-clock deadline for the whole run.
    pub wall_clock: Option<Duration>,
    /// Maximum simulated time, in master clock cycles.
    pub max_cycles: Option<u64>,
    /// Maximum number of dispatched events.
    pub max_events: Option<u64>,
    /// No-progress (livelock) budget: maximum number of consecutive events
    /// dispatched without simulated time advancing.
    pub max_stagnant_events: Option<u64>,
}

impl WatchdogConfig {
    /// A configuration with every budget disabled (same as `Default`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A configuration bounding only simulated time — the natural guard
    /// for a design-space sweep, where one pathological point must not
    /// hang the whole exploration but wall-clock budgets would make runs
    /// machine-dependent (and hence non-reproducible).
    pub fn sim_cycles(limit: u64) -> Self {
        WatchdogConfig {
            max_cycles: Some(limit),
            ..WatchdogConfig::default()
        }
    }

    /// `true` when no budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none()
            && self.max_cycles.is_none()
            && self.max_events.is_none()
            && self.max_stagnant_events.is_none()
    }
}

/// Why a [`Watchdog`] terminated a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogTrip {
    /// The wall-clock deadline elapsed.
    WallClock {
        /// The configured deadline.
        limit: Duration,
    },
    /// Simulated time ran past the cycle budget.
    SimCycles {
        /// The configured cycle budget.
        limit: u64,
        /// The simulated time at which the budget was exceeded.
        at_cycle: u64,
    },
    /// More events were dispatched than the event budget allows.
    EventBudget {
        /// The configured event budget.
        limit: u64,
    },
    /// Simulated time stopped advancing (livelock).
    Livelock {
        /// The configured stagnant-event budget.
        limit: u64,
        /// The simulated time at which the run stagnated.
        at_cycle: u64,
    },
}

impl fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchdogTrip::WallClock { limit } => {
                write!(f, "wall-clock deadline of {limit:?} elapsed")
            }
            WatchdogTrip::SimCycles { limit, at_cycle } => {
                write!(f, "simulated time reached cycle {at_cycle}, past the budget of {limit}")
            }
            WatchdogTrip::EventBudget { limit } => {
                write!(f, "event budget of {limit} dispatches exhausted")
            }
            WatchdogTrip::Livelock { limit, at_cycle } => {
                write!(
                    f,
                    "no progress: {limit} consecutive events at cycle {at_cycle} without time advancing"
                )
            }
        }
    }
}

impl std::error::Error for WatchdogTrip {}

/// Tracks budgets across the events of one run (see module docs).
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    started: Option<Instant>,
    events: u64,
    last_cycle: u64,
    stagnant: u64,
}

impl Watchdog {
    /// Creates a watchdog. The wall clock starts on the first
    /// [`observe`](Self::observe) call, not here.
    pub fn new(config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            started: None,
            events: 0,
            last_cycle: 0,
            stagnant: 0,
        }
    }

    /// The configuration this watchdog enforces.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Number of events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Records one dispatched event at simulated time `now` and returns the
    /// budget it exhausted, if any. Call once per event, *before* handling
    /// it, so an event scheduled past a deadline is never processed.
    pub fn observe(&mut self, now: SimTime) -> Option<WatchdogTrip> {
        self.events += 1;
        if let Some(limit) = self.config.max_events {
            if self.events > limit {
                return Some(WatchdogTrip::EventBudget { limit });
            }
        }
        let cycle = now.cycles();
        if let Some(limit) = self.config.max_cycles {
            if cycle > limit {
                return Some(WatchdogTrip::SimCycles { limit, at_cycle: cycle });
            }
        }
        if let Some(limit) = self.config.max_stagnant_events {
            if cycle > self.last_cycle || self.events == 1 {
                self.last_cycle = cycle;
                self.stagnant = 0;
            } else {
                self.stagnant += 1;
                if self.stagnant > limit {
                    return Some(WatchdogTrip::Livelock { limit, at_cycle: cycle });
                }
            }
        }
        if let Some(limit) = self.config.wall_clock {
            let started = *self.started.get_or_insert_with(Instant::now);
            if started.elapsed() > limit {
                return Some(WatchdogTrip::WallClock { limit });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_watchdog_never_trips() {
        let mut dog = Watchdog::new(WatchdogConfig::unlimited());
        assert!(dog.config().is_unlimited());
        for t in 0..10_000u64 {
            assert_eq!(dog.observe(SimTime::from_cycles(t / 3)), None);
        }
        assert_eq!(dog.events(), 10_000);
    }

    #[test]
    fn sim_cycles_constructor_sets_only_the_cycle_budget() {
        let cfg = WatchdogConfig::sim_cycles(500);
        assert_eq!(cfg.max_cycles, Some(500));
        assert!(cfg.wall_clock.is_none() && cfg.max_events.is_none());
        assert!(cfg.max_stagnant_events.is_none());
        assert!(!cfg.is_unlimited());
    }

    #[test]
    fn cycle_budget_trips_on_first_event_past_it() {
        let mut dog = Watchdog::new(WatchdogConfig {
            max_cycles: Some(100),
            ..WatchdogConfig::default()
        });
        assert_eq!(dog.observe(SimTime::from_cycles(100)), None);
        assert_eq!(
            dog.observe(SimTime::from_cycles(101)),
            Some(WatchdogTrip::SimCycles { limit: 100, at_cycle: 101 })
        );
    }

    #[test]
    fn cycle_budget_equal_to_the_schedule_does_not_trip() {
        // A schedule whose last event lands exactly at the budget: every
        // observation passes — the budget is inclusive.
        let mut dog = Watchdog::new(WatchdogConfig::sim_cycles(30));
        for t in [0u64, 10, 20, 30] {
            assert_eq!(dog.observe(SimTime::from_cycles(t)), None, "t={t}");
        }
        // The same schedule against a budget one cycle short: the final
        // event is the one that trips, and it is never processed.
        let mut dog = Watchdog::new(WatchdogConfig::sim_cycles(29));
        for t in [0u64, 10, 20] {
            assert_eq!(dog.observe(SimTime::from_cycles(t)), None, "t={t}");
        }
        assert_eq!(
            dog.observe(SimTime::from_cycles(30)),
            Some(WatchdogTrip::SimCycles { limit: 29, at_cycle: 30 })
        );
    }

    #[test]
    fn event_budget_equal_to_the_schedule_does_not_trip() {
        let mut dog = Watchdog::new(WatchdogConfig {
            max_events: Some(5),
            ..WatchdogConfig::default()
        });
        for t in 0..5u64 {
            assert_eq!(dog.observe(SimTime::from_cycles(t)), None, "t={t}");
        }
        assert_eq!(dog.events(), 5);
    }

    #[test]
    fn event_budget_counts_dispatches() {
        let mut dog = Watchdog::new(WatchdogConfig {
            max_events: Some(3),
            ..WatchdogConfig::default()
        });
        for _ in 0..3 {
            assert_eq!(dog.observe(SimTime::ZERO), None);
        }
        assert_eq!(
            dog.observe(SimTime::ZERO),
            Some(WatchdogTrip::EventBudget { limit: 3 })
        );
    }

    #[test]
    fn livelock_detector_requires_consecutive_stagnation() {
        let cfg = WatchdogConfig {
            max_stagnant_events: Some(2),
            ..WatchdogConfig::default()
        };
        // Progress resets the stagnation counter.
        let mut dog = Watchdog::new(cfg.clone());
        for t in [0u64, 0, 0, 1, 1, 1, 2] {
            assert_eq!(dog.observe(SimTime::from_cycles(t)), None, "t={t}");
        }
        // Three events at the same instant (beyond the first) trip it.
        let mut dog = Watchdog::new(cfg);
        assert_eq!(dog.observe(SimTime::from_cycles(5)), None);
        assert_eq!(dog.observe(SimTime::from_cycles(5)), None);
        assert_eq!(dog.observe(SimTime::from_cycles(5)), None);
        assert_eq!(
            dog.observe(SimTime::from_cycles(5)),
            Some(WatchdogTrip::Livelock { limit: 2, at_cycle: 5 })
        );
    }

    #[test]
    fn wall_clock_deadline_trips() {
        let mut dog = Watchdog::new(WatchdogConfig {
            wall_clock: Some(Duration::ZERO),
            ..WatchdogConfig::default()
        });
        // First observe starts the clock; an elapsed zero-length deadline
        // trips on the next observation at the latest.
        let first = dog.observe(SimTime::ZERO);
        let second = dog.observe(SimTime::from_cycles(1));
        assert!(
            matches!(first, Some(WatchdogTrip::WallClock { .. }))
                || matches!(second, Some(WatchdogTrip::WallClock { .. }))
        );
    }

    #[test]
    fn trips_render_a_reason() {
        let trip = WatchdogTrip::SimCycles { limit: 10, at_cycle: 99 };
        let text = trip.to_string();
        assert!(text.contains("99") && text.contains("10"), "{text}");
    }
}
