//! A behavioral real-time operating system (RTOS) model.
//!
//! In a HW/SW co-estimation run, every software-mapped CFSM shares one
//! embedded processor. The POLIS flow generates an RTOS that serializes
//! their transitions according to a user-selected scheduling policy; this
//! module reproduces that behaviour as a *scheduling oracle*: the master
//! submits computation requests (`task wants `d` cycles of CPU from time
//! `t`), and the scheduler answers with the [`Grant`]s describing when each
//! request actually occupies the processor.
//!
//! Three policies are modeled:
//!
//! * [`Policy::Fifo`] — non-preemptive, first-come first-served.
//! * [`Policy::FixedPriority`] — non-preemptive static priorities
//!   (higher [`Priority`] value runs first among simultaneously-ready
//!   requests).
//! * [`Policy::RoundRobin`] — preemptive time slicing with a fixed quantum,
//!   rotating among ready tasks.

use crate::time::{SimDuration, SimTime};
use soctrace::{TraceRecord, Tracer};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a task registered with the [`RtosScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Static task priority; larger values are more urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

/// The scheduling policy of the modeled RTOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Non-preemptive first-come first-served.
    Fifo,
    /// Non-preemptive static priorities ([`Priority`]), FIFO among equals.
    FixedPriority,
    /// Preemptive round-robin with the given time quantum.
    RoundRobin(SimDuration),
}

/// A span of CPU time granted to a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The task receiving the processor.
    pub task: TaskId,
    /// Identifier of the request this grant (partially) serves.
    pub request: u64,
    /// First cycle of execution.
    pub start: SimTime,
    /// One past the last cycle of execution (`start + served`).
    pub end: SimTime,
    /// Whether the request is fully served once this grant completes.
    pub completes: bool,
}

impl Grant {
    /// The duration of this grant.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

#[derive(Debug, Clone)]
struct Request {
    id: u64,
    task: TaskId,
    ready: SimTime,
    remaining: SimDuration,
    seq: u64,
}

#[derive(Debug, Clone)]
struct TaskInfo {
    name: String,
    priority: Priority,
    busy: SimDuration,
}

/// A behavioral single-CPU scheduler (see module docs).
///
/// # Examples
///
/// ```
/// use desim::{RtosScheduler, Policy, Priority, SimTime, SimDuration};
///
/// let mut rtos = RtosScheduler::new(Policy::FixedPriority);
/// let lo = rtos.register_task("logger", Priority(1));
/// let hi = rtos.register_task("control", Priority(9));
///
/// // Both become ready at t=0; the high-priority task runs first.
/// rtos.submit(lo, SimTime::ZERO, SimDuration::from_cycles(10));
/// rtos.submit(hi, SimTime::ZERO, SimDuration::from_cycles(5));
///
/// let g1 = rtos.next_grant().expect("pending work");
/// assert_eq!(g1.task, hi);
/// let g2 = rtos.next_grant().expect("pending work");
/// assert_eq!(g2.task, lo);
/// assert_eq!(g2.start, SimTime::from_cycles(5));
/// ```
#[derive(Debug, Clone)]
pub struct RtosScheduler {
    policy: Policy,
    tasks: Vec<TaskInfo>,
    pending: Vec<Request>,
    /// Round-robin rotation order (task ids of partially-served requests).
    rr_ring: VecDeque<u64>,
    cpu_free: SimTime,
    next_req: u64,
    next_seq: u64,
    busy_total: SimDuration,
}

impl RtosScheduler {
    /// Creates a scheduler with the given policy and no tasks.
    pub fn new(policy: Policy) -> Self {
        if let Policy::RoundRobin(q) = policy {
            assert!(!q.is_zero(), "round-robin quantum must be nonzero");
        }
        RtosScheduler {
            policy,
            tasks: Vec::new(),
            pending: Vec::new(),
            rr_ring: VecDeque::new(),
            cpu_free: SimTime::ZERO,
            next_req: 0,
            next_seq: 0,
            busy_total: SimDuration::ZERO,
        }
    }

    /// Registers a task and returns its id.
    pub fn register_task(&mut self, name: impl Into<String>, priority: Priority) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskInfo {
            name: name.into(),
            priority,
            busy: SimDuration::ZERO,
        });
        id
    }

    /// Changes a task's static priority.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not registered.
    pub fn set_priority(&mut self, task: TaskId, priority: Priority) {
        self.tasks[task.0 as usize].priority = priority;
    }

    /// Submits a computation request: `task` wants `duration` cycles of CPU,
    /// becoming ready at `ready`. Returns the request id.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not registered or `duration` is zero.
    pub fn submit(&mut self, task: TaskId, ready: SimTime, duration: SimDuration) -> u64 {
        assert!(
            (task.0 as usize) < self.tasks.len(),
            "unknown task {task}"
        );
        assert!(!duration.is_zero(), "request duration must be nonzero");
        let id = self.next_req;
        self.next_req += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Request {
            id,
            task,
            ready,
            remaining: duration,
            seq,
        });
        self.rr_ring.push_back(id);
        id
    }

    /// Whether any request is pending (fully or partially unserved).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Time at which the CPU next becomes free.
    pub fn cpu_free_at(&self) -> SimTime {
        self.cpu_free
    }

    /// Total CPU busy time accumulated so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_total
    }

    /// Per-task CPU busy time accumulated so far.
    pub fn task_busy_time(&self, task: TaskId) -> SimDuration {
        self.tasks[task.0 as usize].busy
    }

    /// The name `task` was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `task` was not registered.
    pub fn task_name(&self, task: TaskId) -> &str {
        &self.tasks[task.0 as usize].name
    }

    /// Like [`next_grant`](Self::next_grant), additionally emitting a
    /// [`TraceRecord::RtosGrant`] (carrying the task's registered name)
    /// into `tracer` for each grant produced.
    pub fn next_grant_traced(&mut self, tracer: &mut Tracer) -> Option<Grant> {
        let g = self.next_grant()?;
        tracer.emit(|| TraceRecord::RtosGrant {
            at: g.start.cycles(),
            task: g.task.0,
            name: self.tasks[g.task.0 as usize].name.clone(),
            end: g.end.cycles(),
            completes: g.completes,
        });
        Some(g)
    }

    /// Produces the next [`Grant`] in execution order, or `None` when no
    /// request is pending. Driving this to `None` after each batch of
    /// `submit`s yields the complete, deterministic CPU schedule.
    pub fn next_grant(&mut self) -> Option<Grant> {
        // The CPU can start work at max(cpu_free, earliest ready time).
        let earliest_ready = self.pending.iter().map(|r| r.ready).min()?;
        let now = self.cpu_free.max(earliest_ready);

        // Requests that are ready at `now` compete according to policy.
        let idx = self.select(now)?;
        let quantum = match self.policy {
            Policy::RoundRobin(q) => Some(q),
            _ => None,
        };
        let req = &mut self.pending[idx];
        let served = match quantum {
            Some(q) => q.min(req.remaining),
            None => req.remaining,
        };
        let start = now;
        let end = start + served;
        let task = req.task;
        let reqid = req.id;
        req.remaining = SimDuration::from_cycles(req.remaining.cycles() - served.cycles());
        // A preempted request re-arms as ready at the end of its slice and
        // goes to the back of the rotation ring.
        let completes = req.remaining.is_zero();
        if completes {
            self.pending.swap_remove(idx);
            self.rr_ring.retain(|&r| r != reqid);
        } else {
            req.ready = end;
            self.rr_ring.retain(|&r| r != reqid);
            self.rr_ring.push_back(reqid);
        }
        self.cpu_free = end;
        self.busy_total += served;
        self.tasks[task.0 as usize].busy += served;
        Some(Grant {
            task,
            request: reqid,
            start,
            end,
            completes,
        })
    }

    /// Runs the scheduler to completion, returning all remaining grants.
    pub fn drain(&mut self) -> Vec<Grant> {
        let mut out = Vec::new();
        while let Some(g) = self.next_grant() {
            out.push(g);
        }
        out
    }

    /// Index into `pending` of the request to run next at time `now`;
    /// `None` when nothing is ready (only possible on an inconsistent
    /// internal state — callers treat it as "no grant").
    fn select(&self, now: SimTime) -> Option<usize> {
        let ready: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.pending[i].ready <= now)
            .collect();
        debug_assert!(!ready.is_empty(), "select called with no ready request");
        match self.policy {
            Policy::Fifo => ready.into_iter().min_by_key(|&i| self.pending[i].seq),
            Policy::FixedPriority => ready.into_iter().min_by_key(|&i| {
                let r = &self.pending[i];
                let pri = self.tasks[r.task.0 as usize].priority;
                (std::cmp::Reverse(pri), r.seq)
            }),
            Policy::RoundRobin(_) => {
                // The ring holds every live request in queue order
                // (arrival order, preempted requests moved to the back);
                // run the first ready one.
                self.rr_ring
                    .iter()
                    .find_map(|&rid| ready.iter().copied().find(|&i| self.pending[i].id == rid))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(c: u64) -> SimDuration {
        SimDuration::from_cycles(c)
    }
    fn at(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn fifo_serializes_in_arrival_order() {
        let mut r = RtosScheduler::new(Policy::Fifo);
        let a = r.register_task("a", Priority(0));
        let b = r.register_task("b", Priority(9));
        r.submit(a, at(0), cy(10));
        r.submit(b, at(0), cy(10)); // higher priority but FIFO ignores it
        let g = r.drain();
        assert_eq!(g[0].task, a);
        assert_eq!(g[1].task, b);
        assert_eq!(g[1].start, at(10));
        assert_eq!(g[1].end, at(20));
        assert!(g.iter().all(|g| g.completes));
    }

    #[test]
    fn priority_orders_simultaneous_requests() {
        let mut r = RtosScheduler::new(Policy::FixedPriority);
        let lo = r.register_task("lo", Priority(1));
        let mid = r.register_task("mid", Priority(5));
        let hi = r.register_task("hi", Priority(9));
        r.submit(lo, at(0), cy(3));
        r.submit(mid, at(0), cy(3));
        r.submit(hi, at(0), cy(3));
        let order: Vec<TaskId> = r.drain().iter().map(|g| g.task).collect();
        assert_eq!(order, vec![hi, mid, lo]);
    }

    #[test]
    fn nonpreemptive_priority_does_not_preempt_running() {
        let mut r = RtosScheduler::new(Policy::FixedPriority);
        let lo = r.register_task("lo", Priority(1));
        let hi = r.register_task("hi", Priority(9));
        r.submit(lo, at(0), cy(100));
        r.submit(hi, at(10), cy(5)); // arrives while lo "runs"
        let g = r.drain();
        assert_eq!(g[0].task, lo);
        assert_eq!(g[0].end, at(100));
        assert_eq!(g[1].task, hi);
        assert_eq!(g[1].start, at(100));
    }

    #[test]
    fn idle_gap_jumps_to_next_ready() {
        let mut r = RtosScheduler::new(Policy::Fifo);
        let a = r.register_task("a", Priority(0));
        r.submit(a, at(50), cy(10));
        let g = r.next_grant().expect("one grant");
        assert_eq!(g.start, at(50));
        assert_eq!(g.end, at(60));
    }

    #[test]
    fn round_robin_slices_and_rotates() {
        let mut r = RtosScheduler::new(Policy::RoundRobin(cy(4)));
        let a = r.register_task("a", Priority(0));
        let b = r.register_task("b", Priority(0));
        r.submit(a, at(0), cy(8));
        r.submit(b, at(0), cy(4));
        let g = r.drain();
        // a runs 4, then b runs 4 (completes), then a finishes.
        assert_eq!(
            g.iter().map(|g| (g.task, g.completes)).collect::<Vec<_>>(),
            vec![(a, false), (b, true), (a, true)]
        );
        assert_eq!(g[2].end, at(12));
    }

    #[test]
    fn round_robin_single_task_runs_contiguously() {
        let mut r = RtosScheduler::new(Policy::RoundRobin(cy(3)));
        let a = r.register_task("a", Priority(0));
        r.submit(a, at(0), cy(7));
        let g = r.drain();
        assert_eq!(g.len(), 3); // 3+3+1
        assert_eq!(g.last().expect("nonempty").end, at(7));
        assert!(g.windows(2).all(|w| w[0].end == w[1].start));
    }

    #[test]
    fn busy_time_accounting() {
        let mut r = RtosScheduler::new(Policy::Fifo);
        let a = r.register_task("a", Priority(0));
        let b = r.register_task("b", Priority(0));
        r.submit(a, at(0), cy(10));
        r.submit(b, at(0), cy(5));
        r.drain();
        assert_eq!(r.busy_time(), cy(15));
        assert_eq!(r.task_busy_time(a), cy(10));
        assert_eq!(r.task_busy_time(b), cy(5));
    }

    #[test]
    fn grants_never_overlap() {
        let mut r = RtosScheduler::new(Policy::FixedPriority);
        let tasks: Vec<TaskId> = (0..5)
            .map(|i| r.register_task(format!("t{i}"), Priority(i as u8)))
            .collect();
        for (i, &t) in tasks.iter().enumerate() {
            r.submit(t, at(i as u64 * 3), cy(7));
            r.submit(t, at(i as u64 * 11), cy(2));
        }
        let g = r.drain();
        for w in g.windows(2) {
            assert!(w[0].end <= w[1].start, "overlapping grants: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_duration_request_rejected() {
        let mut r = RtosScheduler::new(Policy::Fifo);
        let a = r.register_task("a", Priority(0));
        r.submit(a, at(0), cy(0));
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = RtosScheduler::new(Policy::RoundRobin(cy(0)));
    }

    #[test]
    fn task_names_are_kept_and_traced() {
        use soctrace::{MemorySink, SharedSink};
        let mut r = RtosScheduler::new(Policy::Fifo);
        let a = r.register_task("sensor", Priority(0));
        let b = r.register_task("logger", Priority(0));
        assert_eq!(r.task_name(a), "sensor");
        assert_eq!(r.task_name(b), "logger");
        r.submit(a, at(0), cy(4));
        r.submit(b, at(0), cy(2));
        let shared = SharedSink::new(MemorySink::new());
        let mut tracer = Tracer::new(Box::new(shared.clone()));
        let mut names = Vec::new();
        while let Some(g) = r.next_grant_traced(&mut tracer) {
            names.push(r.task_name(g.task).to_string());
        }
        assert_eq!(names, vec!["sensor", "logger"]);
        shared.with(|sink| {
            let grants = sink.of_kind("rtos_grant");
            assert_eq!(grants.len(), 2);
            assert!(matches!(
                grants[0],
                TraceRecord::RtosGrant { name, completes: true, .. } if name == "sensor"
            ));
        });
    }

    #[test]
    fn set_priority_affects_future_selection() {
        let mut r = RtosScheduler::new(Policy::FixedPriority);
        let a = r.register_task("a", Priority(1));
        let b = r.register_task("b", Priority(2));
        r.set_priority(a, Priority(10));
        r.submit(a, at(0), cy(1));
        r.submit(b, at(0), cy(1));
        assert_eq!(r.next_grant().expect("grant").task, a);
    }
}
