//! Property-based tests for the discrete-event kernel.

use desim::{EventQueue, Policy, Priority, RtosScheduler, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping the queue yields a non-decreasing sequence of timestamps,
    /// and every pushed payload comes back exactly once.
    #[test]
    fn queue_pops_sorted_and_complete(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_cycles(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; times.len()];
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(t.cycles(), times[i]);
            prop_assert!(!seen[i]);
            seen[i] = true;
            last = t;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Equal-timestamp events preserve insertion order (stability).
    #[test]
    fn queue_is_fifo_stable(groups in prop::collection::vec((0u64..10, 1usize..8), 1..20)) {
        let mut q = EventQueue::new();
        let mut order: Vec<(u64, usize)> = Vec::new();
        let mut n = 0usize;
        for &(t, count) in &groups {
            for _ in 0..count {
                q.push(SimTime::from_cycles(t), n);
                order.push((t, n));
                n += 1;
            }
        }
        order.sort_by_key(|&(t, i)| (t, i)); // stable expected order
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.cycles(), i));
        }
        prop_assert_eq!(popped, order);
    }

    /// RTOS grants never overlap, cover exactly the requested durations,
    /// and never start before a request is ready — for every policy.
    #[test]
    fn rtos_schedule_is_feasible(
        reqs in prop::collection::vec((0u32..4, 0u64..100, 1u64..50), 1..40),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => Policy::Fifo,
            1 => Policy::FixedPriority,
            _ => Policy::RoundRobin(SimDuration::from_cycles(5)),
        };
        let mut r = RtosScheduler::new(policy);
        let tasks: Vec<_> = (0..4).map(|i| r.register_task(format!("t{i}"), Priority(i as u8))).collect();
        let mut ready_of = std::collections::HashMap::new();
        let mut want: u64 = 0;
        for &(t, ready, dur) in &reqs {
            let id = r.submit(tasks[t as usize], SimTime::from_cycles(ready), SimDuration::from_cycles(dur));
            ready_of.insert(id, ready);
            want += dur;
        }
        let grants = r.drain();
        let mut served: u64 = 0;
        let mut last_end = SimTime::ZERO;
        for g in &grants {
            prop_assert!(g.start >= last_end, "grants overlap");
            prop_assert!(g.start.cycles() >= ready_of[&g.request], "ran before ready");
            served += g.duration().cycles();
            last_end = g.end;
        }
        prop_assert_eq!(served, want);
        prop_assert_eq!(r.busy_time().cycles(), want);
        prop_assert!(!r.has_pending());
    }

    /// Each request's grants are temporally ordered and exactly one grant
    /// completes it.
    #[test]
    fn rtos_requests_complete_exactly_once(
        durs in prop::collection::vec(1u64..30, 1..20),
    ) {
        let mut r = RtosScheduler::new(Policy::RoundRobin(SimDuration::from_cycles(3)));
        let t = r.register_task("t", Priority(0));
        for &d in &durs {
            r.submit(t, SimTime::ZERO, SimDuration::from_cycles(d));
        }
        let grants = r.drain();
        for (rid, _) in durs.iter().enumerate() {
            let mine: Vec<_> = grants.iter().filter(|g| g.request == rid as u64).collect();
            prop_assert!(!mine.is_empty());
            prop_assert_eq!(mine.iter().filter(|g| g.completes).count(), 1);
            prop_assert!(mine.last().expect("nonempty").completes);
            let total: u64 = mine.iter().map(|g| g.duration().cycles()).sum();
            prop_assert_eq!(total, durs[rid]);
        }
    }
}
