//! Randomized (seeded, deterministic) tests for the discrete-event kernel.
//!
//! These were property-based tests; they now drive the same invariants
//! from a deterministic in-repo PRNG so the suite builds offline and
//! every failure reproduces exactly.

use desim::{EventQueue, Policy, Priority, RtosScheduler, SimDuration, SimTime};
use detrand::Rng;

/// Popping the queue yields a non-decreasing sequence of timestamps,
/// and every pushed payload comes back exactly once.
#[test]
fn queue_pops_sorted_and_complete() {
    let mut rng = Rng::new(0x0DE5_0001);
    for case in 0..64 {
        let n = rng.usize_in(0, 200);
        let times: Vec<u64> = (0..n).map(|_| rng.u64_in(0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_cycles(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; times.len()];
        while let Some((t, i)) = q.pop() {
            assert!(t >= last, "case {case}: unsorted pop");
            assert_eq!(t.cycles(), times[i]);
            assert!(!seen[i], "case {case}: duplicate payload {i}");
            seen[i] = true;
            last = t;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: payload lost");
    }
}

/// Equal-timestamp events preserve insertion order (stability).
#[test]
fn queue_is_fifo_stable() {
    let mut rng = Rng::new(0x0DE5_0002);
    for case in 0..64 {
        let groups: Vec<(u64, usize)> = (0..rng.usize_in(1, 20))
            .map(|_| (rng.u64_in(0, 10), rng.usize_in(1, 8)))
            .collect();
        let mut q = EventQueue::new();
        let mut order: Vec<(u64, usize)> = Vec::new();
        let mut n = 0usize;
        for &(t, count) in &groups {
            for _ in 0..count {
                q.push(SimTime::from_cycles(t), n);
                order.push((t, n));
                n += 1;
            }
        }
        order.sort_by_key(|&(t, i)| (t, i)); // stable expected order
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.cycles(), i));
        }
        assert_eq!(popped, order, "case {case}");
    }
}

/// RTOS grants never overlap, cover exactly the requested durations,
/// and never start before a request is ready — for every policy.
#[test]
fn rtos_schedule_is_feasible() {
    let mut rng = Rng::new(0x0DE5_0003);
    for case in 0..96 {
        let policy = match case % 3 {
            0 => Policy::Fifo,
            1 => Policy::FixedPriority,
            _ => Policy::RoundRobin(SimDuration::from_cycles(5)),
        };
        let reqs: Vec<(u32, u64, u64)> = (0..rng.usize_in(1, 40))
            .map(|_| (rng.u64_in(0, 4) as u32, rng.u64_in(0, 100), rng.u64_in(1, 50)))
            .collect();
        let mut r = RtosScheduler::new(policy);
        let tasks: Vec<_> = (0..4)
            .map(|i| r.register_task(format!("t{i}"), Priority(i as u8)))
            .collect();
        let mut ready_of = std::collections::HashMap::new();
        let mut want: u64 = 0;
        for &(t, ready, dur) in &reqs {
            let id = r.submit(
                tasks[t as usize],
                SimTime::from_cycles(ready),
                SimDuration::from_cycles(dur),
            );
            ready_of.insert(id, ready);
            want += dur;
        }
        let grants = r.drain();
        let mut served: u64 = 0;
        let mut last_end = SimTime::ZERO;
        for g in &grants {
            assert!(g.start >= last_end, "case {case}: grants overlap");
            assert!(
                g.start.cycles() >= ready_of[&g.request],
                "case {case}: ran before ready"
            );
            served += g.duration().cycles();
            last_end = g.end;
        }
        assert_eq!(served, want, "case {case}");
        assert_eq!(r.busy_time().cycles(), want, "case {case}");
        assert!(!r.has_pending(), "case {case}");
    }
}

/// Each request's grants are temporally ordered and exactly one grant
/// completes it.
#[test]
fn rtos_requests_complete_exactly_once() {
    let mut rng = Rng::new(0x0DE5_0004);
    for case in 0..64 {
        let durs: Vec<u64> = (0..rng.usize_in(1, 20)).map(|_| rng.u64_in(1, 30)).collect();
        let mut r = RtosScheduler::new(Policy::RoundRobin(SimDuration::from_cycles(3)));
        let t = r.register_task("t", Priority(0));
        for &d in &durs {
            r.submit(t, SimTime::ZERO, SimDuration::from_cycles(d));
        }
        let grants = r.drain();
        for (rid, _) in durs.iter().enumerate() {
            let mine: Vec<_> = grants.iter().filter(|g| g.request == rid as u64).collect();
            assert!(!mine.is_empty(), "case {case}: request {rid} unserved");
            assert_eq!(mine.iter().filter(|g| g.completes).count(), 1, "case {case}");
            assert!(mine.last().expect("nonempty").completes, "case {case}");
            let total: u64 = mine.iter().map(|g| g.duration().cycles()).sum();
            assert_eq!(total, durs[rid], "case {case}");
        }
    }
}
