//! Property-based tests for the co-estimation framework's data
//! structures: the energy cache, the streaming statistics, the energy
//! ledger, and both sequence compactors.

use cfsm::{PathId, ProcId};
use co_estimation::{
    compact_static, CachingConfig, EnergyAccount, EnergyCache, KMemoryCompactor, RunningStats,
    StreamStats,
};
use proptest::prelude::*;

proptest! {
    /// Welford statistics match the two-pass formulas for any stream.
    #[test]
    fn running_stats_match_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.population_variance() - var).abs() <= 1e-4 * var.abs().max(1.0));
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// The cache never serves a path until it has seen `thresh_iss_calls`
    /// observations, and what it serves is the running mean.
    #[test]
    fn cache_respects_call_threshold(
        energies in prop::collection::vec(1e-9f64..2e-9, 1..30),
        thresh in 1u32..10,
    ) {
        let mut cache = EnergyCache::new(CachingConfig {
            thresh_variance: f64::INFINITY,
            thresh_iss_calls: thresh,
            keep_samples: false,
        });
        let key = (ProcId(0), PathId(7));
        for (i, &e) in energies.iter().enumerate() {
            let served = cache.lookup(key);
            if (i as u32) < thresh {
                prop_assert!(served.is_none(), "served before threshold at {i}");
            } else {
                let hit = served.expect("served after threshold");
                let mean = energies[..i].iter().sum::<f64>() / i as f64;
                prop_assert!((hit.energy_j - mean).abs() < 1e-12 * mean);
            }
            cache.record(key, e, 10);
        }
    }

    /// Zero-variance paths are always served once past the call
    /// threshold, regardless of how tight the variance threshold is.
    #[test]
    fn constant_paths_always_cacheable(e in 1e-12f64..1e-3, count in 2u64..50) {
        let mut cache = EnergyCache::new(CachingConfig {
            thresh_variance: 0.0,
            thresh_iss_calls: 2,
            keep_samples: false,
        });
        let key = (ProcId(1), PathId(1));
        for _ in 0..count {
            cache.record(key, e, 5);
        }
        let hit = cache.lookup(key).expect("constant path must be served");
        prop_assert!((hit.energy_j - e).abs() < 1e-9 * e);
        prop_assert_eq!(hit.cycles, 5);
    }

    /// The ledger's waveform conserves energy exactly for any record
    /// pattern.
    #[test]
    fn account_waveform_conserves_energy(
        records in prop::collection::vec((0u64..5_000, 1u64..800, 1e-12f64..1e-6), 1..60),
        bucket in 1u64..500,
    ) {
        let mut acct = EnergyAccount::new(bucket);
        let c = acct.add_component("c");
        let mut total = 0.0;
        for &(start, len, e) in &records {
            acct.record(c, start, start + len, e);
            total += e;
        }
        let waveform_sum: f64 = acct.waveform(c).energy_per_bucket_j().iter().sum();
        prop_assert!((waveform_sum - total).abs() <= 1e-9 * total,
            "waveform {waveform_sum} vs ledger {total}");
        prop_assert!((acct.total_energy_j() - total).abs() <= 1e-12 * total.max(1e-30));
    }

    /// Dynamic compaction: output length is exactly keep per full window,
    /// the ratio accounting is consistent, and every emitted symbol
    /// occurs in the input.
    #[test]
    fn dynamic_compactor_accounting(
        stream in prop::collection::vec(0u8..6, 1..300),
        k in 2usize..40,
    ) {
        let keep = (k / 2).max(1);
        let mut c = KMemoryCompactor::new(k, keep);
        let mut out = Vec::new();
        for &s in &stream {
            if let Some(b) = c.push(s) {
                prop_assert_eq!(b.len(), keep);
                out.extend(b);
            }
        }
        if let Some(b) = c.flush() {
            out.extend(b);
        }
        prop_assert_eq!(c.seen(), stream.len() as u64);
        prop_assert_eq!(c.dispatched(), out.len() as u64);
        prop_assert!(c.ratio() >= 1.0);
        for s in &out {
            prop_assert!(stream.contains(s));
        }
    }

    /// Static compaction emits a subsequence of contiguous runs whose
    /// length is within one run of the requested ratio.
    #[test]
    fn static_compactor_respects_ratio(
        stream in prop::collection::vec(0u8..4, 50..400),
        ratio in 2usize..6,
    ) {
        let k = 10usize;
        let out = compact_static(&stream, ratio, k, |&s| s as u64);
        let expect = stream.len() / ratio;
        prop_assert!(
            out.len() <= expect + k && out.len() + k >= expect,
            "len {} vs expected ~{expect}",
            out.len()
        );
    }

    /// Total-variation distances are symmetric, bounded by [0, 1], and
    /// zero on identical streams.
    #[test]
    fn stream_distance_is_a_premetric(
        a in prop::collection::vec(0u8..5, 1..100),
        b in prop::collection::vec(0u8..5, 1..100),
    ) {
        let sa = StreamStats::measure(&a);
        let sb = StreamStats::measure(&b);
        let dab = sa.freq_distance(&sb);
        let dba = sb.freq_distance(&sa);
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab), "bounded: {dab}");
        prop_assert!(sa.freq_distance(&sa) < 1e-12, "identity");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sa.pair_distance(&sb)));
    }
}
