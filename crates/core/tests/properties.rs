//! Randomized (seeded, deterministic) tests for the co-estimation
//! framework's data structures: the energy cache, the streaming
//! statistics, the energy ledger, and both sequence compactors.
//! Formerly property-based; now driven by the in-repo deterministic
//! PRNG so the suite builds offline.

use cfsm::{PathId, ProcId};
use co_estimation::{
    compact_static, CachingConfig, EnergyAccount, EnergyCache, KMemoryCompactor, RunningStats,
    StreamStats,
};
use detrand::Rng;

/// Welford statistics match the two-pass formulas for any stream.
#[test]
fn running_stats_match_two_pass() {
    let mut rng = Rng::new(0xC03E_0001);
    for case in 0..64 {
        let xs: Vec<f64> = (0..rng.usize_in(1, 200))
            .map(|_| rng.f64_in(-1e6, 1e6))
            .collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0), "case {case}");
        assert!(
            (s.population_variance() - var).abs() <= 1e-4 * var.abs().max(1.0),
            "case {case}"
        );
        assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9, "case {case}");
    }
}

/// The cache never serves a path until it has seen `thresh_iss_calls`
/// observations, and what it serves is the running mean.
#[test]
fn cache_respects_call_threshold() {
    let mut rng = Rng::new(0xC03E_0002);
    for case in 0..64 {
        let energies: Vec<f64> = (0..rng.usize_in(1, 30))
            .map(|_| rng.f64_in(1e-9, 2e-9))
            .collect();
        let thresh = rng.u64_in(1, 10) as u32;
        let mut cache = EnergyCache::new(CachingConfig {
            thresh_variance: f64::INFINITY,
            thresh_iss_calls: thresh,
            keep_samples: false,
        });
        let key = (ProcId(0), PathId(7));
        for (i, &e) in energies.iter().enumerate() {
            let served = cache.lookup(key);
            if (i as u32) < thresh {
                assert!(served.is_none(), "case {case}: served before threshold at {i}");
            } else {
                let hit = served.expect("served after threshold");
                let mean = energies[..i].iter().sum::<f64>() / i as f64;
                assert!((hit.energy_j - mean).abs() < 1e-12 * mean, "case {case}");
            }
            cache.record(key, e, 10);
        }
    }
}

/// Zero-variance paths are always served once past the call
/// threshold, regardless of how tight the variance threshold is.
#[test]
fn constant_paths_always_cacheable() {
    let mut rng = Rng::new(0xC03E_0003);
    for case in 0..64 {
        let e = rng.f64_in(1e-12, 1e-3);
        let count = rng.u64_in(2, 50);
        let mut cache = EnergyCache::new(CachingConfig {
            thresh_variance: 0.0,
            thresh_iss_calls: 2,
            keep_samples: false,
        });
        let key = (ProcId(1), PathId(1));
        for _ in 0..count {
            cache.record(key, e, 5);
        }
        let hit = cache.lookup(key).expect("constant path must be served");
        assert!((hit.energy_j - e).abs() < 1e-9 * e, "case {case}");
        assert_eq!(hit.cycles, 5, "case {case}");
    }
}

/// The ledger's waveform conserves energy exactly for any record
/// pattern.
#[test]
fn account_waveform_conserves_energy() {
    let mut rng = Rng::new(0xC03E_0004);
    for case in 0..64 {
        let bucket = rng.u64_in(1, 500);
        let records: Vec<(u64, u64, f64)> = (0..rng.usize_in(1, 60))
            .map(|_| (rng.u64_in(0, 5_000), rng.u64_in(1, 800), rng.f64_in(1e-12, 1e-6)))
            .collect();
        let mut acct = EnergyAccount::new(bucket);
        let c = acct.add_component("c");
        let mut total = 0.0;
        for &(start, len, e) in &records {
            acct.record(c, start, start + len, e);
            total += e;
        }
        let waveform_sum: f64 = acct.waveform(c).energy_per_bucket_j().iter().sum();
        assert!(
            (waveform_sum - total).abs() <= 1e-9 * total,
            "case {case}: waveform {waveform_sum} vs ledger {total}"
        );
        assert!((acct.total_energy_j() - total).abs() <= 1e-12 * total.max(1e-30), "case {case}");
    }
}

/// Dynamic compaction: output length is exactly keep per full window,
/// the ratio accounting is consistent, and every emitted symbol
/// occurs in the input.
#[test]
fn dynamic_compactor_accounting() {
    let mut rng = Rng::new(0xC03E_0005);
    for case in 0..64 {
        let stream: Vec<u8> = (0..rng.usize_in(1, 300))
            .map(|_| rng.u64_in(0, 6) as u8)
            .collect();
        let k = rng.usize_in(2, 40);
        let keep = (k / 2).max(1);
        let mut c = KMemoryCompactor::new(k, keep);
        let mut out = Vec::new();
        for &s in &stream {
            if let Some(b) = c.push(s) {
                assert_eq!(b.len(), keep, "case {case}");
                out.extend(b);
            }
        }
        if let Some(b) = c.flush() {
            out.extend(b);
        }
        assert_eq!(c.seen(), stream.len() as u64, "case {case}");
        assert_eq!(c.dispatched(), out.len() as u64, "case {case}");
        assert!(c.ratio() >= 1.0, "case {case}");
        for s in &out {
            assert!(stream.contains(s), "case {case}");
        }
    }
}

/// Static compaction emits a subsequence of contiguous runs whose
/// length is within one run of the requested ratio.
#[test]
fn static_compactor_respects_ratio() {
    let mut rng = Rng::new(0xC03E_0006);
    for case in 0..64 {
        let stream: Vec<u8> = (0..rng.usize_in(50, 400))
            .map(|_| rng.u64_in(0, 4) as u8)
            .collect();
        let ratio = rng.usize_in(2, 6);
        let k = 10usize;
        let out = compact_static(&stream, ratio, k, |&s| s as u64);
        let expect = stream.len() / ratio;
        assert!(
            out.len() <= expect + k && out.len() + k >= expect,
            "case {case}: len {} vs expected ~{expect}",
            out.len()
        );
    }
}

/// Total-variation distances are symmetric, bounded by [0, 1], and
/// zero on identical streams.
#[test]
fn stream_distance_is_a_premetric() {
    let mut rng = Rng::new(0xC03E_0007);
    for case in 0..64 {
        let a: Vec<u8> = (0..rng.usize_in(1, 100)).map(|_| rng.u64_in(0, 5) as u8).collect();
        let b: Vec<u8> = (0..rng.usize_in(1, 100)).map(|_| rng.u64_in(0, 5) as u8).collect();
        let sa = StreamStats::measure(&a);
        let sb = StreamStats::measure(&b);
        let dab = sa.freq_distance(&sb);
        let dba = sb.freq_distance(&sa);
        assert!((dab - dba).abs() < 1e-12, "case {case}: symmetry");
        assert!((0.0..=1.0 + 1e-12).contains(&dab), "case {case}: bounded: {dab}");
        assert!(sa.freq_distance(&sa) < 1e-12, "case {case}: identity");
        assert!((0.0..=1.0 + 1e-12).contains(&sa.pair_distance(&sb)), "case {case}");
    }
}
