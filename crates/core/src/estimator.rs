//! Component power estimators — the pluggable lower-level simulators.
//!
//! Each process of the network gets one estimator according to its
//! mapping and the configured [`EstimatorBackend`]: a gate-level
//! [`HwCfsm`](gatesim::HwCfsm) wrapped in [`HwEstimator`] for hardware,
//! an enhanced ISS [`SwCfsm`](iss::SwCfsm) wrapped in [`SwEstimator`]
//! for software, or the table-driven [`LinearModelEstimator`] for
//! either. The co-simulation master drives them through the object-safe
//! [`PowerEstimator`] trait — the seam third-party backends plug into —
//! and, in debug builds, the detailed backends cross-check their
//! functional results against the behavioral execution: the two engines
//! must agree on the path taken.

use crate::config::{CoSimConfig, EstimatorBackend};
use crate::macromodel::{characterize_hw, characterize_sw, ParameterFile};
use crate::report::Provenance;
use cfsm::{EventId, Execution, Implementation, Network, ProcId, TransitionId};
use gatesim::{HwCfsm, SynthError};
use iss::codegen::CodegenError;
use iss::{PowerModel, SwCfsm};
use std::fmt;

/// Errors from constructing a co-simulation: building estimators,
/// validating system parameters, or resolving a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildEstimatorError {
    /// Hardware synthesis failed for a process.
    Synth(String, SynthError),
    /// Software compilation failed for a process.
    Codegen(String, CodegenError),
    /// The SoC description's priority vector does not have one entry per
    /// process.
    PriorityCount {
        /// Number of processes in the network.
        expected: usize,
        /// Number of priorities supplied.
        got: usize,
    },
    /// The requested workload is empty (nothing would ever fire).
    EmptyWorkload(String),
    /// A parameter is outside its documented domain.
    InvalidParams(String),
    /// CFSM machine or network construction failed inside a system
    /// builder (an internal bug, reported instead of panicking).
    Construction(String),
    /// Pre-simulation verification found error-severity liveness
    /// defects (orphan triggers, wait cycles); the full report carries
    /// every finding, warnings included.
    Unverifiable(socverify::VerifyReport),
}

impl fmt::Display for BuildEstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildEstimatorError::Synth(p, e) => write!(f, "synthesizing `{p}`: {e}"),
            BuildEstimatorError::Codegen(p, e) => write!(f, "compiling `{p}`: {e}"),
            BuildEstimatorError::PriorityCount { expected, got } => write!(
                f,
                "one priority per process required: {expected} processes, {got} priorities"
            ),
            BuildEstimatorError::EmptyWorkload(what) => write!(f, "empty workload: {what}"),
            BuildEstimatorError::InvalidParams(what) => write!(f, "invalid parameters: {what}"),
            BuildEstimatorError::Construction(what) => {
                write!(f, "system construction failed: {what}")
            }
            BuildEstimatorError::Unverifiable(report) => {
                write!(f, "spec failed pre-simulation verification: {report}")
            }
        }
    }
}

impl std::error::Error for BuildEstimatorError {}

/// What a detailed simulation of one firing cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedCost {
    /// Execution cycles (excluding bus/cache effects, which the master
    /// adds).
    pub cycles: u64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// Everything a backend needs to price one firing.
///
/// `vars_in` / `event_value` are the pre-firing behavioral state; `exec`
/// is the behavioral execution whose path the estimator must reproduce
/// (its recorded read values feed the replay).
pub struct FiringInputs<'a> {
    /// Which transition fired.
    pub transition: TransitionId,
    /// Variable values before the firing.
    pub vars_in: &'a [i64],
    /// Input-event values visible at the firing.
    pub event_value: &'a dyn Fn(EventId) -> i64,
    /// The behavioral execution to replay.
    pub exec: &'a Execution,
}

impl fmt::Debug for FiringInputs<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FiringInputs")
            .field("transition", &self.transition)
            .field("vars_in", &self.vars_in)
            .finish_non_exhaustive()
    }
}

/// A component's power estimator — the pluggable backend seam.
///
/// The master owns one `Box<dyn PowerEstimator>` per process and knows
/// nothing about how costs are produced: gate-level simulation
/// ([`HwEstimator`]), instruction-set simulation ([`SwEstimator`]), a
/// characterized linear model ([`LinearModelEstimator`]), or anything a
/// downstream crate implements.
pub trait PowerEstimator: fmt::Debug {
    /// The backend's short identifying name (e.g. `"gate-level"`).
    fn backend_name(&self) -> &'static str;

    /// Whether this estimator models a hardware-mapped component.
    fn is_hw(&self) -> bool;

    /// Prices one firing: `(cycles, energy)` of the transition's
    /// execution phase.
    fn run_firing(&mut self, inputs: &FiringInputs<'_>) -> DetailedCost;

    /// Energy of `cycles` of bus-wait idling, joules.
    ///
    /// In `detailed` mode a backend may actually step its model through
    /// the wait (the gate-level backend charges the clock tree); when an
    /// acceleration technique served the firing, an analytically
    /// equivalent charge is used instead.
    fn wait_energy(&mut self, transition: TransitionId, cycles: u64, detailed: bool) -> f64;

    /// For backends with a program layout: the instruction-fetch
    /// addresses of one behavioral execution, used by the master to
    /// drive the cache simulator. Defaults to `None` (no fetch stream).
    fn ifetch_addrs(&self, transition: TransitionId, exec: &Execution) -> Option<Vec<u64>> {
        let _ = (transition, exec);
        None
    }

    /// Functional cross-check helper: whether `got` variables match the
    /// behavioral `want`, modulo the backend's value representation.
    /// Defaults to exact equality.
    fn vars_agree(&self, got: &[i64], want: &[i64]) -> bool {
        got == want
    }

    /// Cumulative gate-level activity counters
    /// `(gate_evals, gate_events)` of the backend's simulator, when it
    /// has one. The master diffs this around each detailed firing to
    /// surface the gate kernel's work through the trace layer.
    /// `gate_evals` counts kernel work units and varies by selected
    /// kernel (a word-parallel evaluation covers up to 64 cycles);
    /// `gate_events` counts committed per-cycle output changes and is
    /// kernel-invariant. Defaults to `None` (no gate-level model).
    fn gate_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Provenance of the energies this backend produces when it answers
    /// a firing in detail. Defaults to the detailed-path provenance of
    /// the mapping ([`Provenance::GateLevel`] for hardware,
    /// [`Provenance::MeasuredIss`] for software); analytic backends
    /// override.
    fn provenance(&self) -> Provenance {
        if self.is_hw() {
            Provenance::GateLevel
        } else {
            Provenance::MeasuredIss
        }
    }
}

/// Gate-level simulation of the synthesized FSMD.
#[derive(Debug)]
pub struct HwEstimator {
    hw: Box<HwCfsm>,
}

impl HwEstimator {
    /// Synthesizes the process's CFSM into a gate-level estimator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEstimatorError::Synth`] when an operator has no
    /// structural implementation.
    pub fn build(
        network: &Network,
        proc: ProcId,
        config: &CoSimConfig,
    ) -> Result<Self, BuildEstimatorError> {
        let machine = network.cfsm(proc);
        let hw = HwCfsm::synthesize(machine, &config.synth, &config.hw_power)
            .map_err(|e| BuildEstimatorError::Synth(machine.name().to_string(), e))?;
        Ok(HwEstimator { hw: Box::new(hw) })
    }
}

impl PowerEstimator for HwEstimator {
    fn backend_name(&self) -> &'static str {
        "gate-level"
    }

    fn is_hw(&self) -> bool {
        true
    }

    fn run_firing(&mut self, inputs: &FiringInputs<'_>) -> DetailedCost {
        let reads = inputs.exec.read_values();
        let run = self
            .hw
            .transition_mut(inputs.transition)
            .run(inputs.vars_in, inputs.event_value, &reads);
        debug_assert_eq!(
            run.emitted.len(),
            inputs.exec.emitted.len(),
            "gate-level and behavioral emission counts diverged"
        );
        debug_assert_eq!(
            run.mem_ops.len(),
            inputs.exec.mem_accesses.len(),
            "gate-level and behavioral memory traffic diverged"
        );
        DetailedCost {
            cycles: run.cycles,
            energy_j: run.energy_j,
        }
    }

    fn wait_energy(&mut self, transition: TransitionId, cycles: u64, detailed: bool) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let t = self.hw.transition_mut(transition);
        if detailed {
            // Step the netlist through the wait (charging the clock
            // tree); nothing toggles while idling, so this agrees
            // exactly with the analytic form below.
            t.idle_step(cycles)
        } else {
            t.idle_energy_per_cycle_j() * cycles as f64
        }
    }

    fn vars_agree(&self, got: &[i64], want: &[i64]) -> bool {
        got.iter()
            .zip(want)
            .all(|(&g, &w)| self.hw.mask_value(g) == self.hw.mask_value(w))
    }

    fn gate_stats(&self) -> Option<(u64, u64)> {
        Some(self.hw.gate_stats())
    }
}

/// Enhanced instruction-set simulation of the compiled program.
#[derive(Debug)]
pub struct SwEstimator {
    sw: Box<SwCfsm>,
}

impl SwEstimator {
    /// Compiles the process's CFSM for the instruction-set simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEstimatorError::Codegen`] when compilation fails.
    pub fn build(
        network: &Network,
        proc: ProcId,
        config: &CoSimConfig,
    ) -> Result<Self, BuildEstimatorError> {
        let machine = network.cfsm(proc);
        let power = PowerModel::of_kind(config.sw_power);
        let sw = SwCfsm::new(machine, power, &|e| {
            network
                .events()
                .get(e.0 as usize)
                .map(|d| d.carries_value)
                .unwrap_or(false)
        })
        .map_err(|e| BuildEstimatorError::Codegen(machine.name().to_string(), e))?;
        Ok(SwEstimator { sw: Box::new(sw) })
    }
}

impl PowerEstimator for SwEstimator {
    fn backend_name(&self) -> &'static str {
        "iss"
    }

    fn is_hw(&self) -> bool {
        false
    }

    fn run_firing(&mut self, inputs: &FiringInputs<'_>) -> DetailedCost {
        let reads = inputs.exec.read_values();
        let run =
            self.sw
                .run_transition(inputs.transition, inputs.vars_in, inputs.event_value, &reads);
        debug_assert_eq!(
            run.emitted, inputs.exec.emitted,
            "ISS and behavioral emissions diverged"
        );
        DetailedCost {
            cycles: run.cycles + run.stalls,
            energy_j: run.energy_j,
        }
    }

    fn wait_energy(&mut self, _transition: TransitionId, cycles: u64, _detailed: bool) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.sw.cpu_mut().power_model().stall_energy_j() * cycles as f64
    }

    fn ifetch_addrs(&self, transition: TransitionId, exec: &Execution) -> Option<Vec<u64>> {
        let p = self.sw.program();
        let tc = &p.transitions[transition.0 as usize];
        let mut addrs: Vec<u64> = p.slot_addrs(tc.prologue_slots).collect();
        for b in &exec.trace {
            addrs.extend(p.slot_addrs(tc.block_slots[b.0 as usize]));
        }
        addrs.extend(p.slot_addrs(tc.epilogue_slots));
        Some(addrs)
    }
}

/// A table-driven linear (counter-based) power model: each firing is
/// priced by summing a characterized per-macro-op cost table over the
/// behavioral execution's macro-op trace — no gate-level or
/// instruction-level simulation at all.
///
/// This is the third backend behind the [`PowerEstimator`] seam,
/// selected with [`EstimatorBackend::Linear`]. It reuses the §4.1
/// characterization machinery ([`characterize_sw`] /
/// [`characterize_hw`]) but lives *below* the acceleration pipeline, so
/// caching/sampling still compose on top of it. Trade-offs versus the
/// detailed backends: no instruction-fetch stream (the cache simulator
/// sees no traffic), and bus waits are charged at a flat per-cycle rate
/// (the processor's stall energy for SW; zero for HW, whose idle clock
/// charge is a netlist property the table does not capture).
#[derive(Debug)]
pub struct LinearModelEstimator {
    params: ParameterFile,
    is_hw: bool,
    wait_energy_per_cycle_j: f64,
}

impl LinearModelEstimator {
    /// Characterizes a cost table for the process's mapping.
    pub fn characterize(network: &Network, proc: ProcId, config: &CoSimConfig) -> Self {
        match network.mapping(proc) {
            Implementation::Hw => LinearModelEstimator {
                params: characterize_hw(&config.synth, &config.hw_power),
                is_hw: true,
                wait_energy_per_cycle_j: 0.0,
            },
            Implementation::Sw => LinearModelEstimator {
                params: characterize_sw(&PowerModel::of_kind(config.sw_power)),
                is_hw: false,
                wait_energy_per_cycle_j: PowerModel::of_kind(config.sw_power).stall_energy_j(),
            },
        }
    }

    /// Builds from an explicit cost table (e.g. loaded from a parameter
    /// file) instead of characterizing one.
    pub fn from_table(params: ParameterFile, is_hw: bool, wait_energy_per_cycle_j: f64) -> Self {
        LinearModelEstimator {
            params,
            is_hw,
            wait_energy_per_cycle_j,
        }
    }

    /// The cost table this backend prices firings with.
    pub fn table(&self) -> &ParameterFile {
        &self.params
    }
}

impl PowerEstimator for LinearModelEstimator {
    fn backend_name(&self) -> &'static str {
        "linear-model"
    }

    fn is_hw(&self) -> bool {
        self.is_hw
    }

    fn run_firing(&mut self, inputs: &FiringInputs<'_>) -> DetailedCost {
        let (cycles, energy_j) = self.params.estimate(&inputs.exec.macro_ops);
        DetailedCost {
            // Every firing takes at least one cycle, as in the detailed
            // backends (an empty macro-op trace still latches state).
            cycles: cycles.max(1),
            energy_j,
        }
    }

    fn wait_energy(&mut self, _transition: TransitionId, cycles: u64, _detailed: bool) -> f64 {
        self.wait_energy_per_cycle_j * cycles as f64
    }

    fn provenance(&self) -> Provenance {
        // Analytic cost table, not a measured detailed path.
        Provenance::MacroModel
    }
}

/// Builds the estimator matching the process's mapping and the
/// configured [`EstimatorBackend`].
///
/// # Errors
///
/// Returns a [`BuildEstimatorError`] naming the process on failure.
pub fn build_estimator(
    network: &Network,
    proc: ProcId,
    config: &CoSimConfig,
) -> Result<Box<dyn PowerEstimator>, BuildEstimatorError> {
    match config.backend {
        EstimatorBackend::Detailed => match network.mapping(proc) {
            Implementation::Hw => Ok(Box::new(HwEstimator::build(network, proc, config)?)),
            Implementation::Sw => Ok(Box::new(SwEstimator::build(network, proc, config)?)),
        },
        EstimatorBackend::Linear => Ok(Box::new(LinearModelEstimator::characterize(
            network, proc, config,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, Cfsm, EventDef, EventOccurrence, Expr, Stmt};

    fn simple_network(mapping: Implementation) -> (Network, ProcId) {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let out = nb.event(EventDef::valued("OUT"));
        let mut mb = Cfsm::builder("p");
        let s = mb.state("s");
        let v = mb.var("v", 0);
        mb.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: v,
                    expr: Expr::add(Expr::Var(v), Expr::Const(5)),
                },
                Stmt::Emit {
                    event: out,
                    value: Some(Expr::Var(v)),
                },
            ]),
            s,
        );
        let p = nb.process(mb.finish().expect("valid machine"), mapping);
        (nb.finish().expect("valid network"), p)
    }

    fn fire_once(net: &Network, p: ProcId) -> (Vec<i64>, Execution) {
        let mut st = net.spawn();
        net.broadcast(
            &mut st,
            EventOccurrence::pure(net.event_by_name("GO").expect("GO")),
        );
        let vars_in = st.runtime(p).vars().to_vec();
        let fr = net.fire(&mut st, p).expect("fires");
        (vars_in, fr.execution)
    }

    #[test]
    fn builds_hw_and_sw() {
        let cfg = CoSimConfig::date2000_defaults();
        let (net, p) = simple_network(Implementation::Hw);
        assert!(build_estimator(&net, p, &cfg).expect("hw builds").is_hw());
        let (net, p) = simple_network(Implementation::Sw);
        assert!(!build_estimator(&net, p, &cfg).expect("sw builds").is_hw());
    }

    #[test]
    fn detailed_backends_report_positive_costs() {
        let cfg = CoSimConfig::date2000_defaults();
        for mapping in [Implementation::Hw, Implementation::Sw] {
            let (net, p) = simple_network(mapping);
            let mut est = build_estimator(&net, p, &cfg).expect("builds");
            let (vars_in, exec) = fire_once(&net, p);
            let cost = est.run_firing(&FiringInputs {
                transition: TransitionId(0),
                vars_in: &vars_in,
                event_value: &|_| 0,
                exec: &exec,
            });
            assert!(cost.cycles > 0, "{mapping} cycles");
            assert!(cost.energy_j > 0.0, "{mapping} energy");
        }
    }

    #[test]
    fn linear_backend_builds_and_runs() {
        let cfg = CoSimConfig {
            backend: EstimatorBackend::Linear,
            ..CoSimConfig::date2000_defaults()
        };
        for mapping in [Implementation::Hw, Implementation::Sw] {
            let (net, p) = simple_network(mapping);
            let mut est = build_estimator(&net, p, &cfg).expect("builds");
            assert_eq!(est.backend_name(), "linear-model");
            assert_eq!(est.is_hw(), mapping == Implementation::Hw);
            let (vars_in, exec) = fire_once(&net, p);
            let cost = est.run_firing(&FiringInputs {
                transition: TransitionId(0),
                vars_in: &vars_in,
                event_value: &|_| 0,
                exec: &exec,
            });
            assert!(cost.cycles > 0, "{mapping} cycles");
            assert!(cost.energy_j > 0.0, "{mapping} energy");
            // No program layout → no fetch stream.
            assert!(est.ifetch_addrs(TransitionId(0), &exec).is_none());
        }
    }

    #[test]
    fn linear_backend_matches_macromodel_table() {
        // The Linear backend's per-firing answer must equal the §4.1
        // macro-model applied to the same macro-op trace (plus the
        // ≥1-cycle floor) — it is the same table, moved below the seam.
        let cfg = CoSimConfig {
            backend: EstimatorBackend::Linear,
            ..CoSimConfig::date2000_defaults()
        };
        let (net, p) = simple_network(Implementation::Sw);
        let mut est = build_estimator(&net, p, &cfg).expect("builds");
        let (vars_in, exec) = fire_once(&net, p);
        let cost = est.run_firing(&FiringInputs {
            transition: TransitionId(0),
            vars_in: &vars_in,
            event_value: &|_| 0,
            exec: &exec,
        });
        let table = characterize_sw(&PowerModel::of_kind(cfg.sw_power));
        let (cycles, energy_j) = table.estimate(&exec.macro_ops);
        assert_eq!(cost.cycles, cycles.max(1));
        assert_eq!(cost.energy_j.to_bits(), energy_j.to_bits());
    }

    #[test]
    fn sw_exposes_ifetch_trace_hw_does_not() {
        let cfg = CoSimConfig::date2000_defaults();
        let (net, p) = simple_network(Implementation::Sw);
        let est = build_estimator(&net, p, &cfg).expect("builds");
        let (_, exec) = fire_once(&net, p);
        let addrs = est.ifetch_addrs(TransitionId(0), &exec).expect("SW trace");
        assert!(!addrs.is_empty());
        assert!(addrs.windows(2).all(|w| w[0] < w[1]), "monotone layout");

        let (net, p) = simple_network(Implementation::Hw);
        let est = build_estimator(&net, p, &cfg).expect("builds");
        assert!(est.ifetch_addrs(TransitionId(0), &exec).is_none());
    }

    #[test]
    fn vars_agree_masks_hw_width() {
        let cfg = CoSimConfig::date2000_defaults();
        assert_eq!(cfg.synth.width, 16, "default datapath width");
        let (net, p) = simple_network(Implementation::Hw);
        let est = build_estimator(&net, p, &cfg).expect("builds");
        // 0x1_0005 masked to 16 bits equals 0x0005.
        assert!(est.vars_agree(&[0x0005], &[0x1_0005]));
        let (net, p) = simple_network(Implementation::Sw);
        let est = build_estimator(&net, p, &cfg).expect("builds");
        assert!(!est.vars_agree(&[0x0005], &[0x1_0005]));
    }

    #[test]
    fn division_in_hw_mapping_fails_to_build() {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let mut mb = Cfsm::builder("divider");
        let s = mb.state("s");
        let v = mb.var("v", 0);
        mb.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: v,
                expr: Expr::bin(cfsm::BinOp::Div, Expr::Var(v), Expr::Const(3)),
            }]),
            s,
        );
        let p = nb.process(mb.finish().expect("valid machine"), Implementation::Hw);
        let net = nb.finish().expect("valid network");
        let err = build_estimator(&net, p, &CoSimConfig::date2000_defaults());
        assert!(matches!(err, Err(BuildEstimatorError::Synth(_, _))));
    }
}
