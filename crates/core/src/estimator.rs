//! Component power estimators — the pluggable lower-level simulators.
//!
//! Each process of the network gets one estimator according to its
//! mapping: a gate-level [`HwCfsm`](gatesim::HwCfsm) for hardware, an
//! enhanced ISS [`SwCfsm`](iss::SwCfsm) for software. The co-simulation
//! master drives them through the single [`ComponentEstimator::run`]
//! interface and, in debug builds, cross-checks their functional results
//! against the behavioral execution — the two engines must agree on the
//! path taken.

use crate::config::CoSimConfig;
use cfsm::{EventId, Execution, Implementation, Network, ProcId, TransitionId};
use gatesim::bus::mask_to_width;
use gatesim::{HwCfsm, SynthError};
use iss::codegen::CodegenError;
use iss::{PowerModel, SwCfsm};
use std::fmt;

/// Errors from constructing a co-simulation: building estimators,
/// validating system parameters, or resolving a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildEstimatorError {
    /// Hardware synthesis failed for a process.
    Synth(String, SynthError),
    /// Software compilation failed for a process.
    Codegen(String, CodegenError),
    /// The SoC description's priority vector does not have one entry per
    /// process.
    PriorityCount {
        /// Number of processes in the network.
        expected: usize,
        /// Number of priorities supplied.
        got: usize,
    },
    /// The requested workload is empty (nothing would ever fire).
    EmptyWorkload(String),
    /// A parameter is outside its documented domain.
    InvalidParams(String),
    /// CFSM machine or network construction failed inside a system
    /// builder (an internal bug, reported instead of panicking).
    Construction(String),
}

impl fmt::Display for BuildEstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildEstimatorError::Synth(p, e) => write!(f, "synthesizing `{p}`: {e}"),
            BuildEstimatorError::Codegen(p, e) => write!(f, "compiling `{p}`: {e}"),
            BuildEstimatorError::PriorityCount { expected, got } => write!(
                f,
                "one priority per process required: {expected} processes, {got} priorities"
            ),
            BuildEstimatorError::EmptyWorkload(what) => write!(f, "empty workload: {what}"),
            BuildEstimatorError::InvalidParams(what) => write!(f, "invalid parameters: {what}"),
            BuildEstimatorError::Construction(what) => {
                write!(f, "system construction failed: {what}")
            }
        }
    }
}

impl std::error::Error for BuildEstimatorError {}

/// What a detailed simulation of one firing cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedCost {
    /// Execution cycles (excluding bus/cache effects, which the master
    /// adds).
    pub cycles: u64,
    /// Energy, joules.
    pub energy_j: f64,
}

/// A component's detailed power estimator.
#[derive(Debug)]
pub enum ComponentEstimator {
    /// Gate-level simulation of the synthesized FSMD.
    Hw(Box<HwCfsm>),
    /// Enhanced instruction-set simulation of the compiled program.
    Sw(Box<SwCfsm>),
}

impl ComponentEstimator {
    /// Builds the estimator matching the process's mapping.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildEstimatorError`] naming the process on failure.
    pub fn build(
        network: &Network,
        proc: ProcId,
        config: &CoSimConfig,
    ) -> Result<Self, BuildEstimatorError> {
        let machine = network.cfsm(proc);
        match network.mapping(proc) {
            Implementation::Hw => {
                let hw = HwCfsm::synthesize(machine, &config.synth, &config.hw_power)
                    .map_err(|e| BuildEstimatorError::Synth(machine.name().to_string(), e))?;
                Ok(ComponentEstimator::Hw(Box::new(hw)))
            }
            Implementation::Sw => {
                let power = PowerModel::of_kind(config.sw_power);
                let sw = SwCfsm::new(machine, power, &|e| {
                    network
                        .events()
                        .get(e.0 as usize)
                        .map(|d| d.carries_value)
                        .unwrap_or(false)
                })
                .map_err(|e| BuildEstimatorError::Codegen(machine.name().to_string(), e))?;
                Ok(ComponentEstimator::Sw(Box::new(sw)))
            }
        }
    }

    /// Whether this is the hardware estimator.
    pub fn is_hw(&self) -> bool {
        matches!(self, ComponentEstimator::Hw(_))
    }

    /// Runs the detailed simulator for one firing.
    ///
    /// `vars_in` / `event_value` are the pre-firing behavioral state;
    /// `exec` is the behavioral execution whose path the estimator must
    /// reproduce (its recorded read values feed the replay). In debug
    /// builds the functional results are cross-checked.
    pub fn run(
        &mut self,
        transition: TransitionId,
        vars_in: &[i64],
        event_value: &dyn Fn(EventId) -> i64,
        exec: &Execution,
        datapath_width: usize,
    ) -> DetailedCost {
        let reads = exec.read_values();
        match self {
            ComponentEstimator::Hw(hw) => {
                let run = hw.transition_mut(transition).run(vars_in, event_value, &reads);
                debug_assert_eq!(
                    run.emitted.len(),
                    exec.emitted.len(),
                    "gate-level and behavioral emission counts diverged"
                );
                debug_assert_eq!(
                    run.mem_ops.len(),
                    exec.mem_accesses.len(),
                    "gate-level and behavioral memory traffic diverged"
                );
                let _ = datapath_width;
                DetailedCost {
                    cycles: run.cycles,
                    energy_j: run.energy_j,
                }
            }
            ComponentEstimator::Sw(sw) => {
                let run = sw.run_transition(transition, vars_in, event_value, &reads);
                debug_assert_eq!(
                    run.emitted, exec.emitted,
                    "ISS and behavioral emissions diverged"
                );
                DetailedCost {
                    cycles: run.cycles + run.stalls,
                    energy_j: run.energy_j,
                }
            }
        }
    }

    /// Energy of `cycles` of bus-wait idling, joules.
    ///
    /// In `detailed` mode the hardware estimator actually steps the
    /// gate-level netlist through the wait (charging the clock tree);
    /// when an acceleration technique is serving the firing, the
    /// analytically equivalent clock charge is used instead — the two
    /// agree exactly because nothing toggles while idling. Software
    /// waits charge the processor's stall energy per cycle.
    pub fn wait_energy(&mut self, transition: TransitionId, cycles: u64, detailed: bool) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        match self {
            ComponentEstimator::Hw(hw) => {
                let t = hw.transition_mut(transition);
                if detailed {
                    t.idle_step(cycles)
                } else {
                    t.idle_energy_per_cycle_j() * cycles as f64
                }
            }
            ComponentEstimator::Sw(sw) => {
                sw.cpu_mut().power_model().stall_energy_j() * cycles as f64
            }
        }
    }

    /// For SW components: the fetch addresses of one behavioral
    /// execution (prologue + taken blocks + epilogue), used by the master
    /// to drive the cache simulator. Returns `None` for HW components.
    pub fn ifetch_addrs(&self, transition: TransitionId, exec: &Execution) -> Option<Vec<u64>> {
        match self {
            ComponentEstimator::Hw(_) => None,
            ComponentEstimator::Sw(sw) => {
                let p = sw.program();
                let tc = &p.transitions[transition.0 as usize];
                let mut addrs: Vec<u64> = p.slot_addrs(tc.prologue_slots).collect();
                for b in &exec.trace {
                    addrs.extend(p.slot_addrs(tc.block_slots[b.0 as usize]));
                }
                addrs.extend(p.slot_addrs(tc.epilogue_slots));
                Some(addrs)
            }
        }
    }

    /// Functional cross-check helper: whether `got` variables match the
    /// behavioral `want`, modulo the hardware datapath width.
    pub fn vars_agree(&self, got: &[i64], want: &[i64], width: usize) -> bool {
        match self {
            ComponentEstimator::Hw(_) => got
                .iter()
                .zip(want)
                .all(|(&g, &w)| mask_to_width(g, width) == mask_to_width(w, width)),
            ComponentEstimator::Sw(_) => got == want,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, Cfsm, EventDef, EventOccurrence, Expr, Stmt};

    fn simple_network(mapping: Implementation) -> (Network, ProcId) {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let out = nb.event(EventDef::valued("OUT"));
        let mut mb = Cfsm::builder("p");
        let s = mb.state("s");
        let v = mb.var("v", 0);
        mb.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: v,
                    expr: Expr::add(Expr::Var(v), Expr::Const(5)),
                },
                Stmt::Emit {
                    event: out,
                    value: Some(Expr::Var(v)),
                },
            ]),
            s,
        );
        let p = nb.process(mb.finish().expect("valid machine"), mapping);
        (nb.finish().expect("valid network"), p)
    }

    fn fire_once(net: &Network, p: ProcId) -> (Vec<i64>, Execution) {
        let mut st = net.spawn();
        net.broadcast(
            &mut st,
            EventOccurrence::pure(net.event_by_name("GO").expect("GO")),
        );
        let vars_in = st.runtime(p).vars().to_vec();
        let fr = net.fire(&mut st, p).expect("fires");
        (vars_in, fr.execution)
    }

    #[test]
    fn builds_hw_and_sw() {
        let cfg = CoSimConfig::date2000_defaults();
        let (net, p) = simple_network(Implementation::Hw);
        assert!(ComponentEstimator::build(&net, p, &cfg)
            .expect("hw builds")
            .is_hw());
        let (net, p) = simple_network(Implementation::Sw);
        assert!(!ComponentEstimator::build(&net, p, &cfg)
            .expect("sw builds")
            .is_hw());
    }

    #[test]
    fn hw_and_sw_report_positive_costs() {
        let cfg = CoSimConfig::date2000_defaults();
        for mapping in [Implementation::Hw, Implementation::Sw] {
            let (net, p) = simple_network(mapping);
            let mut est = ComponentEstimator::build(&net, p, &cfg).expect("builds");
            let (vars_in, exec) = fire_once(&net, p);
            let cost = est.run(TransitionId(0), &vars_in, &|_| 0, &exec, cfg.synth.width);
            assert!(cost.cycles > 0, "{mapping} cycles");
            assert!(cost.energy_j > 0.0, "{mapping} energy");
        }
    }

    #[test]
    fn sw_exposes_ifetch_trace_hw_does_not() {
        let cfg = CoSimConfig::date2000_defaults();
        let (net, p) = simple_network(Implementation::Sw);
        let est = ComponentEstimator::build(&net, p, &cfg).expect("builds");
        let (_, exec) = fire_once(&net, p);
        let addrs = est.ifetch_addrs(TransitionId(0), &exec).expect("SW trace");
        assert!(!addrs.is_empty());
        assert!(addrs.windows(2).all(|w| w[0] < w[1]), "monotone layout");

        let (net, p) = simple_network(Implementation::Hw);
        let est = ComponentEstimator::build(&net, p, &cfg).expect("builds");
        assert!(est.ifetch_addrs(TransitionId(0), &exec).is_none());
    }

    #[test]
    fn vars_agree_masks_hw_width() {
        let cfg = CoSimConfig::date2000_defaults();
        let (net, p) = simple_network(Implementation::Hw);
        let est = ComponentEstimator::build(&net, p, &cfg).expect("builds");
        // 0x1_0005 masked to 16 bits equals 0x0005.
        assert!(est.vars_agree(&[0x0005], &[0x1_0005], 16));
        let (net, p) = simple_network(Implementation::Sw);
        let est = ComponentEstimator::build(&net, p, &cfg).expect("builds");
        assert!(!est.vars_agree(&[0x0005], &[0x1_0005], 16));
    }

    #[test]
    fn division_in_hw_mapping_fails_to_build() {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let mut mb = Cfsm::builder("divider");
        let s = mb.state("s");
        let v = mb.var("v", 0);
        mb.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: v,
                expr: Expr::bin(cfsm::BinOp::Div, Expr::Var(v), Expr::Const(3)),
            }]),
            s,
        );
        let p = nb.process(mb.finish().expect("valid machine"), Implementation::Hw);
        let net = nb.finish().expect("valid network");
        let err = ComponentEstimator::build(&net, p, &CoSimConfig::date2000_defaults());
        assert!(matches!(err, Err(BuildEstimatorError::Synth(_, _))));
    }
}
