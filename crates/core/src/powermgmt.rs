//! Power-management techniques as a composable layer: DVFS operating
//! points, clock/power gating, and static leakage integrated over
//! simulated time.
//!
//! The estimator stack prices *dynamic switching* energy. Real sign-off
//! also hinges on power *management*: scaling a component's supply
//! voltage and clock (DVFS), stopping its clock tree while idle (clock
//! gating), or cutting its supply entirely (power gating, at the price
//! of a wake-up penalty). This module models those techniques as a
//! per-component [`PowerState`] machine composed from a declarative
//! [`PowerPolicy`], threaded through the master so that **every joule
//! still flows through the single `charge()` choke point**:
//!
//! - Dynamic charges are scaled **at charge time** by the component's
//!   operating point (`voltage_scale²`); cached and macro-model answers
//!   are therefore scaled by the state at *replay* time, not record
//!   time, for free.
//! - Execution cycles are stretched by `1 / freq_scale`, so a slowed
//!   component genuinely occupies the schedule (and the bus) longer.
//! - Leakage is integrated lazily over simulated time per state
//!   (gated states leak less) and booked under
//!   [`Provenance::Leakage`](crate::Provenance::Leakage); wake-up
//!   penalties under
//!   [`Provenance::WakeOverhead`](crate::Provenance::WakeOverhead) —
//!   so [`CoSimReport::verify_provenance`](crate::CoSimReport::verify_provenance)
//!   stays an exact bit-level partition.
//!
//! # The bit-identity contract
//!
//! A run under [`PowerPolicy::none`] (all-Active, zero leakage) makes
//! **zero** extra ledger charges, emits zero extra trace records, and
//! perturbs no float: the master skips the entire layer when
//! [`PowerPolicy::is_noop`] holds, so every existing golden is
//! bit-identical.
//!
//! # Float-order contract for leakage
//!
//! Leakage spans are settled *lazily*: each component carries a
//! `leak_mark` (the cycle up to which its leakage has been integrated)
//! and spans are charged in simulation order — at the component's next
//! firing, or at end of run. Each span's energy is computed as
//! `rate_w × cycles / clock_hz` in one expression, and the per-span
//! charges flow through the same `+=` accumulation as every other
//! charge, so serial and parallel sweeps see identical operand
//! sequences and stay bitwise identical.

use crate::estimator::BuildEstimatorError;

/// The power state a component occupies at an instant of simulated
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// Running (or idle-but-ungated) at the nominal operating point.
    Active,
    /// Running at an assigned DVFS operating point (scaled voltage
    /// and/or frequency).
    Dvfs,
    /// Clock tree stopped after the idle timeout: no dynamic activity,
    /// reduced leakage, instant wake.
    ClockGated,
    /// Supply cut after the idle timeout: near-zero leakage, but waking
    /// costs energy and latency.
    PowerGated,
}

impl PowerState {
    /// Stable machine-readable tag, shared with the trace layer's
    /// `PowerTransition` records.
    pub fn as_str(self) -> &'static str {
        match self {
            PowerState::Active => "active",
            PowerState::Dvfs => "dvfs",
            PowerState::ClockGated => "clock_gated",
            PowerState::PowerGated => "power_gated",
        }
    }
}

/// One DVFS operating point: a named `(voltage, frequency)` scaling
/// relative to the nominal design point.
///
/// Dynamic energy scales with `voltage_scale²` (the CV²f law with the
/// cycle count held by the behavioral model); execution *cycles*
/// stretch by `1 / freq_scale`; leakage scales linearly with
/// `voltage_scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Human-readable name (`"nominal"`, `"0.8v_half"`, …).
    pub name: String,
    /// Supply voltage relative to nominal (0 < scale ≤ ~1.2).
    pub voltage_scale: f64,
    /// Clock frequency relative to nominal (0 < scale ≤ ~1.2).
    pub freq_scale: f64,
}

impl OperatingPoint {
    /// A named operating point.
    pub fn new(name: impl Into<String>, voltage_scale: f64, freq_scale: f64) -> Self {
        OperatingPoint {
            name: name.into(),
            voltage_scale,
            freq_scale,
        }
    }
}

/// How an idle component is gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Stop the clock tree: reduced leakage, free instant wake.
    Clock,
    /// Cut the supply: near-zero leakage, but waking costs
    /// [`wake_energy_j`](GatingPolicy::wake_energy_j) joules and
    /// [`wake_latency_cycles`](GatingPolicy::wake_latency_cycles)
    /// cycles of schedule latency.
    Power,
}

/// An idle-timeout gating policy for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct GatingPolicy {
    /// Idle cycles before the gate closes.
    pub idle_timeout_cycles: u64,
    /// Clock gating or power gating.
    pub mode: GateMode,
    /// Energy paid to re-open a *power* gate (ignored for clock
    /// gating), joules.
    pub wake_energy_j: f64,
    /// Cycles of latency before a power-gated component may resume
    /// (ignored for clock gating); visible to the scheduler and the
    /// bus.
    pub wake_latency_cycles: u64,
}

impl GatingPolicy {
    /// Clock gating after `idle_timeout_cycles` idle cycles.
    pub fn clock(idle_timeout_cycles: u64) -> Self {
        GatingPolicy {
            idle_timeout_cycles,
            mode: GateMode::Clock,
            wake_energy_j: 0.0,
            wake_latency_cycles: 0,
        }
    }

    /// Power gating after `idle_timeout_cycles` idle cycles, with the
    /// given wake-up penalty.
    pub fn power(idle_timeout_cycles: u64, wake_energy_j: f64, wake_latency_cycles: u64) -> Self {
        GatingPolicy {
            idle_timeout_cycles,
            mode: GateMode::Power,
            wake_energy_j,
            wake_latency_cycles,
        }
    }

    fn gated_state(&self) -> PowerState {
        match self.mode {
            GateMode::Clock => PowerState::ClockGated,
            GateMode::Power => PowerState::PowerGated,
        }
    }
}

/// Per-component policy: an optional operating-point assignment and an
/// optional gating rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentPolicy {
    /// Index into [`PowerPolicy::operating_points`], or `None` for the
    /// nominal point.
    pub operating_point: Option<usize>,
    /// Idle-timeout gating, or `None` to never gate.
    pub gating: Option<GatingPolicy>,
}

/// The static-power model shared by every component.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageModel {
    /// Nominal leakage power per process component, watts. Zero
    /// disables leakage integration entirely.
    pub default_leak_w: f64,
    /// Leakage multiplier while clock-gated (clock gating stops
    /// switching but the supply stays up).
    pub clock_gated_factor: f64,
    /// Leakage multiplier while power-gated (only the sleep
    /// transistors leak).
    pub power_gated_factor: f64,
}

impl LeakageModel {
    /// No static power at all (the pre-power-management behavior).
    pub fn none() -> Self {
        LeakageModel {
            default_leak_w: 0.0,
            clock_gated_factor: 1.0,
            power_gated_factor: 1.0,
        }
    }

    /// A leakage model with typical gating factors: clock gating keeps
    /// 30% of nominal leakage, power gating 2%.
    pub fn with_default_rate(default_leak_w: f64) -> Self {
        LeakageModel {
            default_leak_w,
            clock_gated_factor: 0.30,
            power_gated_factor: 0.02,
        }
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel::none()
    }
}

/// A declarative power-management policy for a whole system: the DVFS
/// operating-point menu, per-component assignments and gating rules,
/// and the leakage model.
///
/// # Examples
///
/// ```
/// use co_estimation::{PowerPolicy, OperatingPoint, GatingPolicy, LeakageModel};
///
/// let policy = PowerPolicy::named("tuned")
///     .with_leakage(LeakageModel::with_default_rate(2.0e-3))
///     .with_operating_point(OperatingPoint::new("low", 0.8, 0.5))
///     .dvfs("checksum", 0)
///     .gate("create_pack", GatingPolicy::clock(500));
/// assert!(!policy.is_noop());
/// assert!(PowerPolicy::none().is_noop());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPolicy {
    /// Policy name (labels sweep points and reports).
    pub name: String,
    /// The DVFS operating-point menu components may be assigned to.
    pub operating_points: Vec<OperatingPoint>,
    /// Per-component assignments, by process name. Components not
    /// listed run all-Active at nominal.
    pub components: Vec<(String, ComponentPolicy)>,
    /// The static-power model.
    pub leakage: LeakageModel,
}

impl PowerPolicy {
    /// The default do-nothing policy: all components Active at nominal,
    /// zero leakage. Guaranteed bit-identical to a build without the
    /// power layer.
    pub fn none() -> Self {
        PowerPolicy {
            name: "none".into(),
            operating_points: Vec::new(),
            components: Vec::new(),
            leakage: LeakageModel::none(),
        }
    }

    /// An empty named policy to build on.
    pub fn named(name: impl Into<String>) -> Self {
        PowerPolicy {
            name: name.into(),
            ..PowerPolicy::none()
        }
    }

    /// `true` when the policy changes nothing — the master then skips
    /// the power layer entirely (the bit-identity contract).
    pub fn is_noop(&self) -> bool {
        self.components.is_empty() && self.leakage.default_leak_w == 0.0
    }

    /// Returns the policy with the given leakage model.
    pub fn with_leakage(mut self, leakage: LeakageModel) -> Self {
        self.leakage = leakage;
        self
    }

    /// Appends an operating point to the menu (assignments refer to it
    /// by its index, in push order).
    pub fn with_operating_point(mut self, op: OperatingPoint) -> Self {
        self.operating_points.push(op);
        self
    }

    /// Assigns component `name` to operating point `op_index`.
    pub fn dvfs(mut self, name: impl Into<String>, op_index: usize) -> Self {
        self.entry(name.into()).operating_point = Some(op_index);
        self
    }

    /// Applies a gating rule to component `name`.
    pub fn gate(mut self, name: impl Into<String>, gating: GatingPolicy) -> Self {
        self.entry(name.into()).gating = Some(gating);
        self
    }

    fn entry(&mut self, name: String) -> &mut ComponentPolicy {
        if let Some(i) = self.components.iter().position(|(n, _)| *n == name) {
            return &mut self.components[i].1;
        }
        self.components.push((name, ComponentPolicy::default()));
        let last = self.components.len() - 1;
        &mut self.components[last].1
    }
}

impl Default for PowerPolicy {
    fn default() -> Self {
        PowerPolicy::none()
    }
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// Per-component power-management results.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPowerReport {
    /// Process name.
    pub name: String,
    /// Cycles spent Active at nominal.
    pub active_cycles: u64,
    /// Cycles spent running at an assigned DVFS operating point.
    pub dvfs_cycles: u64,
    /// Cycles spent clock-gated.
    pub clock_gated_cycles: u64,
    /// Cycles spent power-gated.
    pub power_gated_cycles: u64,
    /// Number of power-state transitions.
    pub transitions: u64,
    /// Leakage energy charged, joules.
    pub leakage_j: f64,
    /// Wake-up penalty energy charged, joules.
    pub wake_j: f64,
    /// Number of power-gate wake-ups.
    pub wakes: u64,
}

/// Per-technique savings of one run, relative to running the same
/// schedule all-Active (tracked online — no baseline run needed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerSavings {
    /// Dynamic energy avoided by DVFS voltage scaling (unscaled minus
    /// scaled, summed over every dynamic charge), joules. Negative when
    /// an operating point over-drives the supply.
    pub dvfs_dynamic_saved_j: f64,
    /// Leakage avoided by gating ((active rate − gated rate) × gated
    /// time), joules.
    pub gating_leakage_saved_j: f64,
    /// Wake-up penalties paid, joules (cost, not a saving).
    pub wake_overhead_j: f64,
}

impl PowerSavings {
    /// Net energy saved: technique savings minus wake overhead, joules.
    pub fn net_saved_j(&self) -> f64 {
        self.dvfs_dynamic_saved_j + self.gating_leakage_saved_j - self.wake_overhead_j
    }
}

/// The power-management section of a [`CoSimReport`](crate::CoSimReport):
/// state residency and attributable savings. Present only when a
/// non-noop policy was active; not part of the golden snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// The active policy's name.
    pub policy: String,
    /// Per-component residency and charges, in process order.
    pub components: Vec<ComponentPowerReport>,
    /// Per-technique savings.
    pub savings: PowerSavings,
    /// Total leakage energy charged, joules.
    pub leakage_j: f64,
}

// ---------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------

/// One settled leakage span: `[start, end)` spent in `state`, costing
/// `energy_j` joules of static power.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LeakSpan {
    pub start: u64,
    pub end: u64,
    pub state: PowerState,
    pub energy_j: f64,
}

/// One power-state transition, for the trace layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Transition {
    pub at: u64,
    pub from: PowerState,
    pub to: PowerState,
}

/// What the master must book after waking (or finalizing) a component:
/// the settled leakage spans, the transitions to trace, and any wake
/// penalty.
#[derive(Debug, Clone, Default)]
pub(crate) struct Settlement {
    pub spans: Vec<LeakSpan>,
    pub transitions: Vec<Transition>,
    /// Wake-up penalty energy to charge, joules (zero when not waking
    /// from a power gate).
    pub wake_energy_j: f64,
    /// Cycles the firing must wait before execution may start.
    pub wake_latency_cycles: u64,
}

/// Per-component runtime state of the power layer.
#[derive(Debug, Clone)]
struct CompRt {
    /// Precomputed dynamic-energy scale (`voltage_scale²`), `None` at
    /// nominal.
    dyn_scale: Option<f64>,
    /// Precomputed cycle-stretch divisor (`freq_scale`), `None` at
    /// nominal.
    freq_scale: Option<f64>,
    /// Leakage rate while ungated, watts (already voltage-scaled).
    active_leak_w: f64,
    /// Leakage rate while gated, watts.
    gated_leak_w: f64,
    gating: Option<GatingPolicy>,
    /// Cycle up to which leakage has been integrated.
    leak_mark: u64,
    /// When the component last went idle (cleared on wake).
    idle_since: Option<u64>,
    // -- accumulated report state --
    active_cycles: u64,
    dvfs_cycles: u64,
    clock_gated_cycles: u64,
    power_gated_cycles: u64,
    transitions: u64,
    leakage_j: f64,
    wake_j: f64,
    wakes: u64,
    dvfs_saved_j: f64,
    gating_saved_j: f64,
}

impl CompRt {
    fn base_state(&self) -> PowerState {
        if self.dyn_scale.is_some() || self.freq_scale.is_some() {
            PowerState::Dvfs
        } else {
            PowerState::Active
        }
    }

    fn leak_rate(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Active | PowerState::Dvfs => self.active_leak_w,
            PowerState::ClockGated | PowerState::PowerGated => self.gated_leak_w,
        }
    }

    fn add_residency(&mut self, state: PowerState, cycles: u64) {
        match state {
            PowerState::Active => self.active_cycles += cycles,
            PowerState::Dvfs => self.dvfs_cycles += cycles,
            PowerState::ClockGated => self.clock_gated_cycles += cycles,
            PowerState::PowerGated => self.power_gated_cycles += cycles,
        }
    }
}

/// The power layer's runtime: one state machine per process component,
/// built from a validated [`PowerPolicy`]. Owned by the master; absent
/// (`None`) when the policy is a noop, which keeps the default path
/// bit-identical by construction.
#[derive(Debug, Clone)]
pub(crate) struct PowerRt {
    policy_name: String,
    comps: Vec<CompRt>,
    clock_hz: f64,
}

impl PowerRt {
    /// Validates `policy` against the process names and builds the
    /// runtime; `Ok(None)` for a noop policy.
    ///
    /// # Errors
    ///
    /// [`BuildEstimatorError::InvalidParams`] when the policy names an
    /// unknown component (gating the bus or i-cache is rejected — only
    /// process components have idle/firing structure), refers to an
    /// out-of-range operating point, or has a degenerate scale, rate,
    /// or timeout.
    pub(crate) fn build(
        policy: &PowerPolicy,
        process_names: &[&str],
        clock_hz: f64,
    ) -> Result<Option<Self>, BuildEstimatorError> {
        if policy.is_noop() {
            return Ok(None);
        }
        let invalid = |what: String| Err(BuildEstimatorError::InvalidParams(what));
        if !(clock_hz.is_finite() && clock_hz > 0.0) {
            return invalid(format!("power policy needs a positive clock, got {clock_hz}"));
        }
        let lk = &policy.leakage;
        if !(lk.default_leak_w.is_finite() && lk.default_leak_w >= 0.0) {
            return invalid(format!("leakage rate must be ≥ 0, got {}", lk.default_leak_w));
        }
        for (label, f) in [
            ("clock_gated_factor", lk.clock_gated_factor),
            ("power_gated_factor", lk.power_gated_factor),
        ] {
            if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                return invalid(format!("leakage {label} must be in [0, 1], got {f}"));
            }
        }
        for op in &policy.operating_points {
            if !(op.voltage_scale.is_finite() && op.voltage_scale > 0.0) {
                return invalid(format!(
                    "operating point `{}`: voltage_scale must be > 0, got {}",
                    op.name, op.voltage_scale
                ));
            }
            if !(op.freq_scale.is_finite() && op.freq_scale > 0.0) {
                return invalid(format!(
                    "operating point `{}`: freq_scale must be > 0, got {}",
                    op.name, op.freq_scale
                ));
            }
        }
        let mut comps: Vec<CompRt> = process_names
            .iter()
            .map(|_| CompRt {
                dyn_scale: None,
                freq_scale: None,
                active_leak_w: lk.default_leak_w,
                gated_leak_w: lk.default_leak_w,
                gating: None,
                leak_mark: 0,
                idle_since: None,
                active_cycles: 0,
                dvfs_cycles: 0,
                clock_gated_cycles: 0,
                power_gated_cycles: 0,
                transitions: 0,
                leakage_j: 0.0,
                wake_j: 0.0,
                wakes: 0,
                dvfs_saved_j: 0.0,
                gating_saved_j: 0.0,
            })
            .collect();
        for (name, cp) in &policy.components {
            let Some(idx) = process_names.iter().position(|n| n == name) else {
                return invalid(format!(
                    "power policy names unknown component `{name}` (only process \
                     components can be managed; the bus and i-cache cannot be gated)"
                ));
            };
            if let Some(op_idx) = cp.operating_point {
                let Some(op) = policy.operating_points.get(op_idx) else {
                    return invalid(format!(
                        "component `{name}` assigned to operating point {op_idx}, \
                         but the menu has {}",
                        policy.operating_points.len()
                    ));
                };
                if op.voltage_scale != 1.0 {
                    comps[idx].dyn_scale = Some(op.voltage_scale * op.voltage_scale);
                }
                if op.freq_scale != 1.0 {
                    comps[idx].freq_scale = Some(op.freq_scale);
                }
                // Leakage scales linearly with the supply voltage.
                comps[idx].active_leak_w = lk.default_leak_w * op.voltage_scale;
                comps[idx].gated_leak_w = comps[idx].active_leak_w;
            }
            if let Some(g) = &cp.gating {
                if g.idle_timeout_cycles == 0 {
                    return invalid(format!(
                        "component `{name}`: gating idle timeout must be > 0"
                    ));
                }
                if !(g.wake_energy_j.is_finite() && g.wake_energy_j >= 0.0) {
                    return invalid(format!(
                        "component `{name}`: wake energy must be ≥ 0, got {}",
                        g.wake_energy_j
                    ));
                }
                let factor = match g.mode {
                    GateMode::Clock => lk.clock_gated_factor,
                    GateMode::Power => lk.power_gated_factor,
                };
                comps[idx].gated_leak_w = comps[idx].active_leak_w * factor;
                comps[idx].gating = Some(g.clone());
            }
        }
        Ok(Some(PowerRt {
            policy_name: policy.name.clone(),
            comps,
            clock_hz,
        }))
    }

    /// Base (cycle-0) power state per process component, in process
    /// order. The master uses this to emit synthetic cycle-0
    /// `PowerTransition` trace records for components whose base state
    /// is not `Active` (DVFS-pinned components never transition at
    /// runtime), making the trace stream self-describing for residency
    /// reconstruction. Trace-only: reports are not affected.
    pub(crate) fn initial_states(&self) -> Vec<PowerState> {
        self.comps.iter().map(CompRt::base_state).collect()
    }

    /// Scales one dynamic charge by component `idx`'s operating point
    /// (the charge-time scaling rule). Leakage and wake charges pass
    /// through unscaled — they are computed in absolute joules.
    pub(crate) fn scale_dynamic(&mut self, idx: usize, energy_j: f64) -> f64 {
        let Some(c) = self.comps.get_mut(idx) else {
            return energy_j; // bus / i-cache: no operating point
        };
        match c.dyn_scale {
            Some(s) => {
                let scaled = energy_j * s;
                c.dvfs_saved_j += energy_j - scaled;
                scaled
            }
            None => energy_j,
        }
    }

    /// Stretches an execution cycle count by component `idx`'s
    /// frequency scale (slower clock → more master cycles).
    pub(crate) fn stretch_cycles(&self, idx: usize, cycles: u64) -> u64 {
        match self.comps.get(idx).and_then(|c| c.freq_scale) {
            Some(f) => (cycles as f64 / f).ceil() as u64,
            None => cycles,
        }
    }

    /// Marks component `idx` idle from cycle `t` (its firing just
    /// completed); the gate closes `idle_timeout_cycles` later.
    pub(crate) fn sleep(&mut self, idx: usize, t: u64) {
        if let Some(c) = self.comps.get_mut(idx) {
            c.idle_since = Some(t);
        }
    }

    /// Wakes component `idx` to fire at cycle `t`: settles its leakage
    /// up to `t` (splitting the span at the gate-close instant when the
    /// idle timeout elapsed) and returns what to book, including any
    /// power-gate wake penalty.
    pub(crate) fn wake(&mut self, idx: usize, t: u64) -> Settlement {
        let mut s = self.settle(idx, t, true);
        if let Some(c) = self.comps.get_mut(idx) {
            c.idle_since = None;
            // The wake penalty delays execution; leakage over the wake
            // window is integrated by the next settlement at base rate.
            if s.wake_latency_cycles > 0 || s.wake_energy_j > 0.0 {
                c.wake_j += s.wake_energy_j;
                c.wakes += 1;
            }
        } else {
            s = Settlement::default();
        }
        s
    }

    /// Settles every component's leakage up to `end` (end of run).
    /// Idempotent: a second call over the same horizon yields empty
    /// settlements. Components still idle past their timeout end the
    /// run gated — their final transition is part of the settlement,
    /// but no wake penalty is charged.
    pub(crate) fn finalize(&mut self, end: u64) -> Vec<Settlement> {
        (0..self.comps.len())
            .map(|idx| {
                let mut s = self.settle(idx, end, false);
                // End of run: nothing wakes, so drop any wake penalty.
                s.wake_energy_j = 0.0;
                s.wake_latency_cycles = 0;
                s
            })
            .collect()
    }

    /// Integrates component `idx`'s leakage over `[leak_mark, t)`,
    /// splitting at the gate-close instant; `waking` adds the wake
    /// transition (and penalty) back to the base state at `t`.
    fn settle(&mut self, idx: usize, t: u64, waking: bool) -> Settlement {
        let clock_hz = self.clock_hz;
        let Some(c) = self.comps.get_mut(idx) else {
            return Settlement::default();
        };
        let mut out = Settlement::default();
        if t <= c.leak_mark {
            return out;
        }
        let base = c.base_state();
        // When did (or does) the gate close? Only meaningful while idle.
        let gate = c.gating.as_ref().and_then(|g| {
            c.idle_since.map(|i| (i.saturating_add(g.idle_timeout_cycles), g.gated_state(), g))
        });
        let mut spans: Vec<(u64, u64, PowerState)> = Vec::with_capacity(2);
        match gate {
            Some((gate_at, gated, g)) if gate_at < t => {
                let split = gate_at.max(c.leak_mark);
                if split > c.leak_mark {
                    spans.push((c.leak_mark, split, base));
                }
                spans.push((split, t, gated));
                if gate_at >= c.leak_mark {
                    out.transitions.push(Transition {
                        at: gate_at,
                        from: base,
                        to: gated,
                    });
                }
                if waking {
                    out.transitions.push(Transition {
                        at: t,
                        from: gated,
                        to: base,
                    });
                    if g.mode == GateMode::Power {
                        out.wake_energy_j = g.wake_energy_j;
                        out.wake_latency_cycles = g.wake_latency_cycles;
                    }
                }
            }
            _ => spans.push((c.leak_mark, t, base)),
        }
        for (start, end, state) in spans {
            let cycles = end - start;
            c.add_residency(state, cycles);
            let rate = c.leak_rate(state);
            // One expression per span — the float-order contract.
            let energy_j = rate * (cycles as f64 / clock_hz);
            if state == PowerState::ClockGated || state == PowerState::PowerGated {
                c.gating_saved_j +=
                    (c.active_leak_w - rate) * (cycles as f64 / clock_hz);
            }
            c.leakage_j += energy_j;
            if energy_j > 0.0 {
                out.spans.push(LeakSpan {
                    start,
                    end,
                    state,
                    energy_j,
                });
            }
        }
        c.transitions += out.transitions.len() as u64;
        c.leak_mark = t;
        out
    }

    /// Snapshots the power report (named per process, in order).
    pub(crate) fn report(&self, process_names: &[&str]) -> PowerReport {
        let mut savings = PowerSavings::default();
        let mut leakage_j = 0.0;
        let components = self
            .comps
            .iter()
            .zip(process_names)
            .map(|(c, name)| {
                savings.dvfs_dynamic_saved_j += c.dvfs_saved_j;
                savings.gating_leakage_saved_j += c.gating_saved_j;
                savings.wake_overhead_j += c.wake_j;
                leakage_j += c.leakage_j;
                ComponentPowerReport {
                    name: (*name).to_string(),
                    active_cycles: c.active_cycles,
                    dvfs_cycles: c.dvfs_cycles,
                    clock_gated_cycles: c.clock_gated_cycles,
                    power_gated_cycles: c.power_gated_cycles,
                    transitions: c.transitions,
                    leakage_j: c.leakage_j,
                    wake_j: c.wake_j,
                    wakes: c.wakes,
                }
            })
            .collect();
        PowerReport {
            policy: self.policy_name.clone(),
            components,
            savings,
            leakage_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaky_policy() -> PowerPolicy {
        PowerPolicy::named("test")
            .with_leakage(LeakageModel {
                default_leak_w: 1.0, // 1 W at 1 kHz → 1 mJ per cycle
                clock_gated_factor: 0.5,
                power_gated_factor: 0.0,
            })
            .gate("a", GatingPolicy::clock(10))
    }

    fn rt(policy: &PowerPolicy) -> PowerRt {
        PowerRt::build(policy, &["a", "b"], 1_000.0)
            .expect("valid policy")
            .expect("non-noop")
    }

    #[test]
    fn noop_policy_builds_nothing() {
        let none = PowerRt::build(&PowerPolicy::none(), &["a"], 1_000.0).expect("valid");
        assert!(none.is_none());
    }

    #[test]
    fn unknown_component_rejected() {
        let p = PowerPolicy::named("x").gate("bus", GatingPolicy::clock(10));
        let err = PowerRt::build(&p, &["a"], 1_000.0).expect_err("bus is not gateable");
        assert!(matches!(err, BuildEstimatorError::InvalidParams(_)), "{err}");
    }

    #[test]
    fn out_of_range_operating_point_rejected() {
        let p = PowerPolicy::named("x").dvfs("a", 0);
        let err = PowerRt::build(&p, &["a"], 1_000.0).expect_err("no menu");
        assert!(matches!(err, BuildEstimatorError::InvalidParams(_)), "{err}");
    }

    #[test]
    fn zero_idle_timeout_rejected() {
        let p = PowerPolicy::named("x").gate("a", GatingPolicy::clock(0));
        assert!(PowerRt::build(&p, &["a"], 1_000.0).is_err());
    }

    #[test]
    fn ungated_span_settles_at_active_rate() {
        let mut rt = rt(&leaky_policy());
        // Component `b` has no gating: 100 cycles at 1 W / 1 kHz = 0.1 J.
        let s = rt.wake(1, 100);
        assert_eq!(s.spans.len(), 1);
        assert_eq!((s.spans[0].start, s.spans[0].end), (0, 100));
        assert_eq!(s.spans[0].state, PowerState::Active);
        assert!((s.spans[0].energy_j - 0.1).abs() < 1e-12);
        assert!(s.transitions.is_empty());
    }

    #[test]
    fn idle_timeout_splits_span_and_records_transitions() {
        let mut rt = rt(&leaky_policy());
        rt.sleep(0, 20); // idle from 20, gate closes at 30
        let s = rt.wake(0, 50);
        assert_eq!(s.spans.len(), 2);
        assert_eq!((s.spans[0].start, s.spans[0].end), (0, 30));
        assert_eq!(s.spans[0].state, PowerState::Active);
        assert_eq!((s.spans[1].start, s.spans[1].end), (30, 50));
        assert_eq!(s.spans[1].state, PowerState::ClockGated);
        // 30 cycles active (0.03 J) + 20 gated at half rate (0.01 J).
        assert!((s.spans[0].energy_j - 0.03).abs() < 1e-12);
        assert!((s.spans[1].energy_j - 0.01).abs() < 1e-12);
        assert_eq!(s.transitions.len(), 2);
        assert_eq!(
            (s.transitions[0].at, s.transitions[0].to),
            (30, PowerState::ClockGated)
        );
        assert_eq!(
            (s.transitions[1].at, s.transitions[1].to),
            (50, PowerState::Active)
        );
        // Clock gating wakes for free.
        assert_eq!(s.wake_energy_j, 0.0);
        assert_eq!(s.wake_latency_cycles, 0);
    }

    #[test]
    fn power_gate_wake_charges_penalty_and_latency() {
        let p = PowerPolicy::named("pg")
            .with_leakage(LeakageModel {
                default_leak_w: 1.0,
                clock_gated_factor: 0.5,
                power_gated_factor: 0.1,
            })
            .gate("a", GatingPolicy::power(10, 2.5e-3, 7));
        let mut rt = rt(&p);
        rt.sleep(0, 0);
        let s = rt.wake(0, 100);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[1].state, PowerState::PowerGated);
        assert!((s.wake_energy_j - 2.5e-3).abs() < 1e-15);
        assert_eq!(s.wake_latency_cycles, 7);
        let rep = rt.report(&["a", "b"]);
        assert_eq!(rep.components[0].wakes, 1);
        assert!((rep.components[0].wake_j - 2.5e-3).abs() < 1e-15);
    }

    #[test]
    fn finalize_is_idempotent_and_covers_the_tail() {
        let mut rt = rt(&leaky_policy());
        rt.sleep(0, 5);
        let first = rt.finalize(100);
        let spans: usize = first.iter().map(|s| s.spans.len()).sum();
        assert!(spans >= 2, "tail must settle both components");
        // No wake penalty at end of run.
        assert!(first.iter().all(|s| s.wake_energy_j == 0.0));
        let second = rt.finalize(100);
        assert!(second.iter().all(|s| s.spans.is_empty() && s.transitions.is_empty()));
    }

    #[test]
    fn residency_partitions_simulated_time() {
        let mut rt = rt(&leaky_policy());
        rt.sleep(0, 20);
        rt.wake(0, 50);
        rt.sleep(0, 60);
        rt.finalize(200);
        let rep = rt.report(&["a", "b"]);
        let a = &rep.components[0];
        assert_eq!(
            a.active_cycles + a.clock_gated_cycles + a.dvfs_cycles + a.power_gated_cycles,
            200
        );
        let b = &rep.components[1];
        assert_eq!(b.active_cycles, 200);
        assert_eq!(b.transitions, 0);
    }

    #[test]
    fn dvfs_scales_dynamic_energy_and_stretches_cycles() {
        let p = PowerPolicy::named("dvfs")
            .with_operating_point(OperatingPoint::new("low", 0.8, 0.5))
            .dvfs("a", 0);
        let mut rt = PowerRt::build(&p, &["a", "b"], 1_000.0)
            .expect("valid")
            .expect("non-noop");
        let scaled = rt.scale_dynamic(0, 1.0);
        assert!((scaled - 0.64).abs() < 1e-12);
        assert_eq!(rt.stretch_cycles(0, 100), 200);
        // Unassigned component and the bus pass through untouched.
        assert_eq!(rt.scale_dynamic(1, 1.0), 1.0);
        assert_eq!(rt.stretch_cycles(1, 100), 100);
        assert_eq!(rt.scale_dynamic(99, 1.0), 1.0);
        let rep = rt.report(&["a", "b"]);
        assert!((rep.savings.dvfs_dynamic_saved_j - 0.36).abs() < 1e-12);
    }

    #[test]
    fn builder_merges_component_entries() {
        let p = PowerPolicy::named("m")
            .with_operating_point(OperatingPoint::new("low", 0.9, 1.0))
            .dvfs("a", 0)
            .gate("a", GatingPolicy::clock(10));
        assert_eq!(p.components.len(), 1);
        let cp = &p.components[0].1;
        assert_eq!(cp.operating_point, Some(0));
        assert!(cp.gating.is_some());
    }

    #[test]
    fn savings_net_accounts_for_wake_cost() {
        let s = PowerSavings {
            dvfs_dynamic_saved_j: 3.0,
            gating_leakage_saved_j: 2.0,
            wake_overhead_j: 1.0,
        };
        assert!((s.net_saved_j() - 4.0).abs() < 1e-12);
    }
}
