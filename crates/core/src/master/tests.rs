use super::*;
use crate::caching::CachingConfig;
use crate::config::Acceleration;
use cfsm::{Cfg, Cfsm, EventDef, Expr, Network, Stmt};
use soctrace::{MemorySink, MetricsSink, SharedSink};

/// A two-process system: a SW producer that reacts to GO by emitting
/// DATA(v), and an HW consumer that accumulates DATA values.
fn two_proc_soc(n_stimuli: u64) -> SocDescription {
    let mut nb = Network::builder();
    let go = nb.event(EventDef::pure("GO"));
    let data = nb.event(EventDef::valued("DATA"));

    let mut prod = Cfsm::builder("producer");
    let s = prod.state("s");
    let v = prod.var("v", 0);
    prod.transition(
        s,
        vec![go],
        None,
        Cfg::straight_line(vec![
            Stmt::Assign {
                var: v,
                expr: Expr::add(Expr::Var(v), Expr::Const(3)),
            },
            Stmt::Emit {
                event: data,
                value: Some(Expr::Var(v)),
            },
        ]),
        s,
    );
    nb.process(prod.finish().expect("valid"), Implementation::Sw);

    let mut cons = Cfsm::builder("consumer");
    let c = cons.state("c");
    let acc = cons.var("acc", 0);
    cons.transition(
        c,
        vec![data],
        None,
        Cfg::straight_line(vec![Stmt::Assign {
            var: acc,
            expr: Expr::add(Expr::Var(acc), Expr::EventValue(data)),
        }]),
        c,
    );
    nb.process(cons.finish().expect("valid"), Implementation::Hw);

    let network = nb.finish().expect("valid network");
    let stimulus = (0..n_stimuli)
        .map(|i| (i * 10_000, EventOccurrence::pure(go)))
        .collect();
    SocDescription {
        name: "two-proc".into(),
        network,
        stimulus,
        priorities: vec![1, 1],
    }
}

fn run_with(accel: Acceleration, n: u64) -> CoSimReport {
    let cfg = CoSimConfig::date2000_defaults().with_accel(accel);
    let mut sim = CoSimulator::new(two_proc_soc(n), cfg).expect("builds");
    sim.run()
}

#[test]
fn baseline_run_produces_energy_and_time() {
    let r = run_with(Acceleration::none(), 5);
    assert_eq!(r.firings, 10, "5 producer + 5 consumer firings");
    assert!(r.total_energy_j() > 0.0);
    assert!(r.total_cycles > 0);
    assert!(r.process_energy_j("producer") > 0.0);
    assert!(r.process_energy_j("consumer") > 0.0);
    assert_eq!(r.detailed_calls, 10);
    assert_eq!(r.accelerated_calls, 0);
    assert!(r.cache.accesses > 0, "SW fetches hit the icache");
}

#[test]
fn consumer_accumulates_all_values() {
    let cfg = CoSimConfig::date2000_defaults();
    let soc = two_proc_soc(4);
    let consumer = soc.network.process_by_name("consumer").expect("exists");
    let mut sim = CoSimulator::new(soc, cfg).expect("builds");
    let _ = sim.run();
    // 3 + 6 + 9 + 12 = 30.
    assert_eq!(sim.state.runtime(consumer).vars()[0], 30);
}

#[test]
fn caching_reduces_detailed_calls_without_changing_energy() {
    let base = run_with(Acceleration::none(), 20);
    let cached = run_with(
        Acceleration::caching(CachingConfig {
            thresh_variance: 0.05,
            thresh_iss_calls: 2,
            keep_samples: false,
        }),
        20,
    );
    assert!(cached.detailed_calls < base.detailed_calls);
    assert!(cached.accelerated_calls > 0);
    // SPARClite power model + repeatable HW runs → identical totals
    // within float tolerance.
    let rel = (cached.total_energy_j() - base.total_energy_j()).abs()
        / base.total_energy_j();
    assert!(rel < 0.01, "caching error {rel} too large");
}

#[test]
fn macromodel_overestimates_but_is_fast() {
    let base = run_with(Acceleration::none(), 10);
    let mm = run_with(Acceleration::macromodel(), 10);
    assert_eq!(mm.detailed_calls, 0, "macro-model never calls simulators");
    assert_eq!(mm.accelerated_calls, mm.firings);
    // Conservative: the additive model over-estimates.
    assert!(
        mm.process_energy_j("producer") > base.process_energy_j("producer"),
        "macromodel should over-estimate SW energy"
    );
}

#[test]
fn sampling_reuses_previous_costs() {
    let sampled = run_with(
        Acceleration::sampling(crate::SamplingConfig { period: 4 }),
        16,
    );
    assert!(sampled.accelerated_calls > 0);
    assert!(sampled.detailed_calls < sampled.firings);
}

#[test]
fn runs_are_deterministic() {
    let a = run_with(Acceleration::none(), 8);
    let b = run_with(Acceleration::none(), 8);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.total_energy_j().to_bits(), b.total_energy_j().to_bits());
}

#[test]
fn bus_unused_when_no_shared_memory() {
    let r = run_with(Acceleration::none(), 3);
    assert_eq!(r.bus.words, 0);
    assert_eq!(r.bus_energy_j, 0.0);
}

#[test]
fn waveforms_cover_run() {
    let r = run_with(Acceleration::none(), 5);
    let sys = r.account.system_waveform();
    assert!(!sys.energy_per_bucket_j().is_empty());
    let sum: f64 = sys.energy_per_bucket_j().iter().sum();
    assert!((sum - r.total_energy_j()).abs() < 1e-9 * r.total_energy_j());
}

#[test]
fn rtos_policy_changes_sw_dispatch_order() {
    // Two SW tasks both enabled by the same stimulus: under
    // FixedPriority the high-priority one runs first; under Fifo the
    // lower process id wins.
    fn two_sw_soc() -> SocDescription {
        let mut nb = cfsm::Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let a_done = nb.event(EventDef::pure("A_DONE"));
        let b_done = nb.event(EventDef::pure("B_DONE"));
        for (name, done) in [("a", a_done), ("b", b_done)] {
            let mut mb = Cfsm::builder(name);
            let s = mb.state("s");
            mb.transition(
                s,
                vec![go],
                None,
                Cfg::straight_line(vec![Stmt::Emit {
                    event: done,
                    value: None,
                }]),
                s,
            );
            nb.process(mb.finish().expect("valid"), Implementation::Sw);
        }
        SocDescription {
            name: "two-sw".into(),
            network: nb.finish().expect("valid"),
            stimulus: vec![(100, EventOccurrence::pure(go))],
            priorities: vec![1, 9], // `b` outranks `a`
        }
    }
    let first_busy = |policy: crate::RtosPolicy| {
        let mut cfg = CoSimConfig::date2000_defaults();
        cfg.rtos_policy = policy;
        cfg.waveform_bucket_cycles = 8; // resolve the two CPU slots
        let mut sim = CoSimulator::new(two_sw_soc(), cfg).expect("builds");
        let r = sim.run();
        // The task dispatched first finishes first; with identical
        // bodies, the one with the *earlier* completion window is the
        // one whose waveform bucket charge starts first. Use busy
        // windows via the account: both have equal busy_cycles, so
        // compare who fired in the earlier CPU slot by peak position.
        let a = r.account.waveform(crate::ComponentId(0)).peak().expect("a ran");
        let b = r.account.waveform(crate::ComponentId(1)).peak().expect("b ran");
        (a.0, b.0)
    };
    let (a_pri, b_pri) = first_busy(crate::RtosPolicy::FixedPriority);
    let (a_fifo, b_fifo) = first_busy(crate::RtosPolicy::Fifo);
    assert!(b_pri < a_pri, "priority: b (pri 9) runs first ({b_pri} vs {a_pri})");
    assert!(a_fifo < b_fifo, "fifo: a (lower id) runs first ({a_fifo} vs {b_fifo})");
}

#[test]
fn max_firings_bounds_run() {
    let mut cfg = CoSimConfig::date2000_defaults();
    cfg.max_firings = 4;
    let mut sim = CoSimulator::new(two_proc_soc(100), cfg).expect("builds");
    let r = sim.run();
    assert!(r.firings <= 5, "bounded by max_firings");
    assert!(r.outcome.is_degraded(), "cut short with work pending");
}

#[test]
fn quiescent_run_completes_with_empty_ledger_overhead() {
    let r = run_with(Acceleration::none(), 5);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.anomalies.faults_injected(), 0);
}

#[test]
fn wrong_priority_count_is_a_typed_error() {
    let mut soc = two_proc_soc(1);
    soc.priorities = vec![1, 2, 3];
    let err = CoSimulator::new(soc, CoSimConfig::date2000_defaults());
    assert!(matches!(
        err,
        Err(BuildEstimatorError::PriorityCount { expected: 2, got: 3 })
    ));
}

#[test]
fn unknown_fault_target_is_a_typed_error() {
    let cfg = CoSimConfig::date2000_defaults()
        .with_faults(crate::FaultPlan::new().freeze_process(0, "no_such_process", 10));
    let err = CoSimulator::new(two_proc_soc(1), cfg);
    assert!(matches!(err, Err(BuildEstimatorError::InvalidParams(_))));
}

#[test]
fn watchdog_cycle_budget_degrades_run() {
    // Stimulus reaches cycle 990_000; cap simulated time well before.
    let cfg = CoSimConfig::date2000_defaults().with_watchdog(desim::WatchdogConfig {
        max_cycles: Some(50_000),
        ..desim::WatchdogConfig::default()
    });
    let mut sim = CoSimulator::new(two_proc_soc(100), cfg).expect("builds");
    let r = sim.run();
    assert!(r.outcome.is_degraded(), "{:?}", r.outcome);
    assert!(r.total_cycles <= 60_000, "partial report stops near the budget");
    assert!(r.total_energy_j() > 0.0, "partial energy is still accounted");
    assert!(
        r.anomalies.iter().any(|a| matches!(a.kind, AnomalyKind::WatchdogTrip { .. })),
        "trip recorded in the ledger"
    );
}

#[test]
fn empty_fault_plan_is_bit_for_bit_free() {
    let base = run_with(Acceleration::none(), 8);
    let cfg = CoSimConfig::date2000_defaults()
        .with_faults(crate::FaultPlan::none())
        .with_watchdog(desim::WatchdogConfig::unlimited());
    let mut sim = CoSimulator::new(two_proc_soc(8), cfg).expect("builds");
    let r = sim.run();
    assert_eq!(r.total_energy_j().to_bits(), base.total_energy_j().to_bits());
    assert_eq!(r.total_cycles, base.total_cycles);
    assert_eq!(r.firings, base.firings);
    assert_eq!(r.outcome, base.outcome);
}

#[test]
fn pipeline_reflects_configured_acceleration() {
    let cfg = CoSimConfig::date2000_defaults().with_accel(Acceleration {
        macromodel: true,
        caching: Some(CachingConfig::new()),
        sampling: Some(crate::SamplingConfig { period: 4 }),
    });
    let sim = CoSimulator::new(two_proc_soc(1), cfg).expect("builds");
    assert_eq!(
        sim.accel_pipeline().layer_names(),
        vec!["macromodel", "cache", "sampling"]
    );
    let bare = CoSimulator::new(two_proc_soc(1), CoSimConfig::date2000_defaults())
        .expect("builds");
    assert!(bare.accel_pipeline().is_empty());
}

#[test]
fn attached_trace_is_schedule_invariant() {
    // Tracing is pure observability: a run with a sink attached must be
    // bit-for-bit identical to one without.
    let base = run_with(Acceleration::none(), 8);
    let cfg = CoSimConfig::date2000_defaults();
    let mut sim = CoSimulator::new(two_proc_soc(8), cfg).expect("builds");
    let shared = SharedSink::new(MemorySink::new());
    sim.attach_trace(Box::new(shared.clone()));
    let r = sim.run();
    assert_eq!(r.total_energy_j().to_bits(), base.total_energy_j().to_bits());
    assert_eq!(r.total_cycles, base.total_cycles);
    assert_eq!(r.firings, base.firings);
    assert!(sim.detach_trace().is_some(), "sink comes back out");
    shared.with(|m| {
        assert_eq!(m.of_kind("firing_start").len() as u64, r.firings);
        assert_eq!(m.of_kind("firing_end").len() as u64, r.firings);
        assert!(!m.of_kind("energy_sample").is_empty());
        assert!(!m.of_kind("icache_batch").is_empty(), "SW fetches traced");
    });
}

#[test]
fn metrics_sink_aggregates_match_report() {
    let cfg = CoSimConfig::date2000_defaults().with_accel(Acceleration::caching(
        CachingConfig {
            thresh_variance: 0.05,
            thresh_iss_calls: 2,
            keep_samples: false,
        },
    ));
    let mut sim = CoSimulator::new(two_proc_soc(20), cfg).expect("builds");
    let shared = SharedSink::new(MetricsSink::new());
    sim.attach_trace(Box::new(shared.clone()));
    let r = sim.run();
    shared.with(|m| {
        assert_eq!(m.firings, r.firings);
        assert_eq!(m.detailed_calls, r.detailed_calls);
        assert_eq!(m.accelerated_calls(), r.accelerated_calls);
        assert_eq!(
            m.answered_by_layer.get("cache").copied().unwrap_or(0),
            r.accelerated_calls,
            "every accelerated call came from the cache layer"
        );
        assert!(m.cache_hits + m.cache_misses > 0);
    });
}

#[test]
fn faults_and_watchdog_trips_are_traced() {
    let cfg = CoSimConfig::date2000_defaults()
        .with_faults(crate::FaultPlan::new().freeze_process(0, "producer", 500))
        .with_watchdog(desim::WatchdogConfig {
            max_cycles: Some(50_000),
            ..desim::WatchdogConfig::default()
        });
    let mut sim = CoSimulator::new(two_proc_soc(100), cfg).expect("builds");
    let shared = SharedSink::new(MemorySink::new());
    sim.attach_trace(Box::new(shared.clone()));
    let r = sim.run();
    assert!(r.outcome.is_degraded());
    shared.with(|m| {
        assert_eq!(m.of_kind("fault_injected").len(), 1);
        assert_eq!(m.of_kind("watchdog_trip").len(), 1);
    });
}

#[test]
fn linear_backend_runs_end_to_end() {
    // The third PowerEstimator backend drives a whole co-simulation:
    // every firing is priced by the characterized table.
    let cfg = CoSimConfig::date2000_defaults()
        .with_backend(crate::EstimatorBackend::Linear);
    let mut sim = CoSimulator::new(two_proc_soc(6), cfg).expect("builds");
    let r = sim.run();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.firings, 12);
    assert_eq!(r.detailed_calls, 12, "linear backend sits below the pipeline");
    assert!(r.total_energy_j() > 0.0);
    assert_eq!(r.cache.accesses, 0, "no program layout → no fetch stream");
}
