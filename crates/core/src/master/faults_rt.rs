//! Fault-injection routing for the master: delivery interception,
//! timed fault application, and energy-sample corruption.
//!
//! Split out of the scheduler proper so the hot path in
//! [`mod.rs`](super) stays readable; everything here is gated on a
//! non-empty fault plan and costs nothing otherwise.

use super::{CoSimulator, Ev};
use crate::account::AnomalyKind;
use crate::estimator::DetailedCost;
use crate::faults::ResolvedFaultKind;
use cfsm::{EventOccurrence, ProcId};
use desim::SimTime;
use soctrace::TraceRecord;

/// What delivery action a fault interception selected.
pub(super) enum Delivery {
    Pass,
    Drop,
    Duplicate,
    Delay(u64),
}

impl CoSimulator {
    /// Records a consumed fault in both the anomaly ledger and the trace.
    fn note_fault_injected(&mut self, at: u64, description: String) {
        self.tracer.emit(|| TraceRecord::FaultInjected {
            at,
            description: description.clone(),
        });
        self.anomalies
            .record(at, AnomalyKind::FaultInjected { description });
    }

    /// Applies armed time-triggered faults (freeze, bus stall, cache
    /// bypass). Delivery- and estimate-triggered kinds are handled at
    /// their interception points.
    pub(super) fn apply_timed_faults(&mut self) {
        let now = self.now;
        for i in 0..self.faults.len() {
            if !self.faults[i].ready(now) {
                continue;
            }
            match self.faults[i].kind {
                ResolvedFaultKind::FreezeProcess(p, cycles) => {
                    let until = now.saturating_add(cycles);
                    self.frozen_until[p.0 as usize] =
                        self.frozen_until[p.0 as usize].max(until);
                    self.queue.push(SimTime::from_cycles(until), Ev::Unfreeze(p));
                }
                ResolvedFaultKind::StallBus(cycles) => {
                    let until = now.saturating_add(cycles);
                    self.bus_stall_until = self.bus_stall_until.max(until);
                    // Grants resume here; swallowed kicks are re-issued.
                    self.queue.push(SimTime::from_cycles(until), Ev::BusKick);
                    self.anomalies
                        .record(now, AnomalyKind::BusStalled { until_cycle: until });
                }
                ResolvedFaultKind::ForceCacheMisses(batches) => {
                    self.force_miss_batches = self.force_miss_batches.saturating_add(batches);
                }
                _ => continue,
            }
            self.faults[i].armed = false;
            let description = self.faults[i].describe.clone();
            self.note_fault_injected(now, description);
        }
    }

    /// Delivers one event occurrence, routing it through any armed
    /// delivery fault first.
    pub(super) fn deliver(&mut self, occ: EventOccurrence) {
        if !self.faults.is_empty() {
            match self.intercept_delivery(&occ) {
                Delivery::Pass => {}
                Delivery::Drop => return,
                Delivery::Duplicate => {
                    self.broadcast_tracked(occ);
                    self.broadcast_tracked(occ);
                    return;
                }
                Delivery::Delay(cycles) => {
                    self.queue.push(
                        SimTime::from_cycles(self.now.saturating_add(cycles)),
                        Ev::Deliver(occ),
                    );
                    return;
                }
            }
        }
        self.broadcast_tracked(occ);
    }

    /// Broadcasts `occ` and records any single-place-buffer overwrites it
    /// caused (the POLIS event-loss semantics) in the anomaly ledger.
    fn broadcast_tracked(&mut self, occ: EventOccurrence) {
        self.soc.network.broadcast(&mut self.state, occ);
        for p in self.soc.network.process_ids() {
            let lost = self.state.runtime(p).buffer().lost_count();
            if lost > self.lost_seen[p.0 as usize] {
                self.lost_seen[p.0 as usize] = lost;
                self.anomalies.record(
                    self.now,
                    AnomalyKind::BufferOverwrite {
                        process: self.soc.network.cfsm(p).name().to_string(),
                        event: self.soc.network.events()[occ.event.0 as usize].name.clone(),
                    },
                );
            }
        }
    }

    /// Checks armed delivery faults against `occ`; the first match is
    /// consumed and its action returned.
    fn intercept_delivery(&mut self, occ: &EventOccurrence) -> Delivery {
        let now = self.now;
        let hit = self.faults.iter().position(|f| {
            f.ready(now)
                && matches!(f.kind,
                    ResolvedFaultKind::DropEvent(e)
                    | ResolvedFaultKind::DuplicateEvent(e)
                    | ResolvedFaultKind::DelayEvent(e, _) if e == occ.event)
        });
        let Some(i) = hit else {
            return Delivery::Pass;
        };
        self.faults[i].armed = false;
        let description = self.faults[i].describe.clone();
        self.note_fault_injected(now, description);
        match self.faults[i].kind {
            ResolvedFaultKind::DropEvent(e) => {
                let event = self.soc.network.events()[e.0 as usize].name.clone();
                self.anomalies.record(now, AnomalyKind::EventShed { event });
                Delivery::Drop
            }
            ResolvedFaultKind::DuplicateEvent(_) => Delivery::Duplicate,
            ResolvedFaultKind::DelayEvent(_, cycles) => Delivery::Delay(cycles),
            _ => Delivery::Pass,
        }
    }

    /// Applies an armed energy-corruption fault to `p`'s sample, clamping
    /// non-finite or negative results to zero (recorded as an anomaly) so
    /// the ledger stays finite and non-negative.
    pub(super) fn corrupt_cost(&mut self, p: ProcId, mut cost: DetailedCost) -> DetailedCost {
        let now = self.now;
        let hit = self.faults.iter().position(|f| {
            f.ready(now) && matches!(f.kind, ResolvedFaultKind::CorruptEnergy(fp, _) if fp == p)
        });
        let Some(i) = hit else {
            return cost;
        };
        let ResolvedFaultKind::CorruptEnergy(_, factor) = self.faults[i].kind else {
            return cost;
        };
        self.faults[i].armed = false;
        let description = self.faults[i].describe.clone();
        self.note_fault_injected(now, description);
        let raw = cost.energy_j * factor;
        if raw.is_finite() && raw >= 0.0 {
            cost.energy_j = raw;
        } else {
            self.anomalies.record(
                now,
                AnomalyKind::EnergyClamped {
                    process: self.soc.network.cfsm(p).name().to_string(),
                    raw_j: raw,
                },
            );
            cost.energy_j = 0.0;
        }
        cost
    }
}
