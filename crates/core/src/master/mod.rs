//! The co-simulation master — the paper's contribution (§3).
//!
//! [`CoSimulator`] simulates the discrete-event behavioral model of the
//! entire system with a global view of time, and synchronizes the
//! per-component power estimators with it: whenever a CFSM transition
//! fires (the unit of synchronization), the master captures the
//! component's pre-firing state and asks the
//! [`AccelPipeline`](crate::AccelPipeline) for its cost — each stacked
//! acceleration layer (macro-model, energy cache, firing-level sampling)
//! either answers from its own state or delegates down, and a full
//! fall-through runs the component's pluggable
//! [`PowerEstimator`](crate::PowerEstimator) backend (gate-level
//! simulation, enhanced ISS, or a linear model). The returned
//! `(cycles, energy)` is folded back into the global schedule: software
//! transitions are serialized on the embedded CPU by priority (the RTOS
//! model), shared-memory traffic is serialized and priced by the bus
//! model, instruction fetches drive the cache simulator (whose reference
//! stream comes from the *behavioral* model, as in the paper), and
//! emissions are delivered when the firing completes — making downstream
//! execution traces timing-sensitive, which is exactly why co-estimation
//! is needed (§2).
//!
//! Every synchronization point can optionally be observed through an
//! attached [`TraceSink`](soctrace::TraceSink)
//! ([`attach_trace`](CoSimulator::attach_trace)): firings, acceleration
//! decisions, ledger charges, bus grants, cache batches, fault
//! injections and watchdog trips are emitted as structured
//! [`TraceRecord`](soctrace::TraceRecord)s with zero cost when no sink
//! is attached.

mod faults_rt;
#[cfg(test)]
mod tests;

use crate::accel::{AccelPipeline, CostSource, FiringCtx};
use crate::account::{AnomalyKind, AnomalyLedger, ComponentId, EnergyAccount};
use crate::caching::EnergyCache;
use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::{
    build_estimator, BuildEstimatorError, DetailedCost, FiringInputs, PowerEstimator,
};
use crate::faults::{self, ResolvedFault};
use crate::macromodel::ParameterFile;
use crate::powermgmt::{PowerRt, PowerState, Settlement};
use crate::report::{
    AccelEffectiveness, CacheEffectiveness, CoSimReport, ProcessReport, Provenance,
    ProvenanceBreakdown, RunOutcome, SamplingEffectiveness,
};
use busmodel::{Bus, MasterId};
use cachesim::Cache;
use cfsm::{EventId, EventOccurrence, Implementation, NetworkState, ProcId};
use desim::{EventQueue, SimTime, Watchdog};
use soctrace::{ProfileSink, Profiler, SpanKind, TraceRecord, TraceSink, Tracer};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Master events.
#[derive(Debug, Clone)]
enum Ev {
    /// Environment stimulus or inter-process emission delivery.
    Deliver(EventOccurrence),
    /// A hardware process finished its firing.
    HwDone(ProcId),
    /// The software task occupying the CPU finished.
    SwDone(ProcId),
    /// The bus arbiter may be able to grant a DMA block.
    BusKick,
    /// An injected freeze on the process expires; re-examine readiness.
    Unfreeze(ProcId),
}

/// A firing waiting for its shared-memory phase to finish on the bus.
#[derive(Debug, Clone)]
struct FiringWait {
    proc: ProcId,
    transition: cfsm::TransitionId,
    exec_end: u64,
    detailed: bool,
    is_sw: bool,
    /// Provenance of the firing's energy; bus-wait idling charged when
    /// the firing completes is booked under the same source.
    provenance: Provenance,
    emissions: Vec<(EventId, Option<i64>)>,
}

/// The co-simulation master (see module docs).
///
/// # Examples
///
/// See the `systems` crate for complete SOC descriptions; a minimal
/// one-process system runs end to end like this:
///
/// ```
/// use cfsm::{Cfsm, Cfg, Stmt, Expr, Network, EventDef, Implementation, EventOccurrence};
/// use co_estimation::{CoSimulator, CoSimConfig, SocDescription};
///
/// let mut nb = Network::builder();
/// let tick = nb.event(EventDef::pure("TICK"));
/// let mut mb = Cfsm::builder("counter");
/// let s = mb.state("s");
/// let v = mb.var("v", 0);
/// mb.transition(s, vec![tick], None,
///     Cfg::straight_line(vec![Stmt::Assign {
///         var: v,
///         expr: Expr::add(Expr::Var(v), Expr::Const(1)),
///     }]), s);
/// nb.process(mb.finish()?, Implementation::Hw);
///
/// let soc = SocDescription {
///     name: "counter".into(),
///     network: nb.finish()?,
///     stimulus: (0..4).map(|i| (i * 100, EventOccurrence::pure(tick))).collect(),
///     priorities: vec![1],
/// };
/// let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults())?;
/// let report = sim.run();
/// println!("total energy: {:.3e} J", report.total_energy_j());
/// assert_eq!(report.firings, 4);
/// report.verify_provenance().expect("attribution sums bit-exactly");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CoSimulator {
    soc: SocDescription,
    config: CoSimConfig,
    state: NetworkState,
    estimators: Vec<Box<dyn PowerEstimator>>,
    accel: AccelPipeline,
    tracer: Tracer,
    profiler: Profiler,
    /// Mirror of every ledger charge, tagged with its energy source
    /// (see [`ProvenanceBreakdown`]'s bit-identity contract).
    provenance: ProvenanceBreakdown,
    /// Power-management runtime (DVFS scaling, gating, leakage).
    /// `None` under the default noop policy — the master then skips the
    /// layer entirely, keeping the default path bit-identical.
    power: Option<PowerRt>,
    queue: EventQueue<Ev>,
    bus: Bus,
    bus_master: Vec<MasterId>,
    icache: Option<Cache>,
    account: EnergyAccount,
    comp_of_proc: Vec<ComponentId>,
    bus_comp: ComponentId,
    cache_comp: ComponentId,
    /// Firings whose shared-memory phase is still being granted block by
    /// block on the bus, keyed by bus request id.
    bus_pending: HashMap<busmodel::ReqId, FiringWait>,
    busy: Vec<bool>,
    cpu_free_at: u64,
    now: u64,
    end_time: u64,
    firings: u64,
    firings_per_proc: Vec<u64>,
    detailed_calls: u64,
    accelerated_calls: u64,
    /// Resolved one-shot faults from the configured plan (empty = no
    /// fault layer; the hot paths gate on this).
    faults: Vec<ResolvedFault>,
    /// Per-process injected-freeze horizon; a process may not fire while
    /// `now < frozen_until[p]`. All zeros without faults.
    frozen_until: Vec<u64>,
    /// Injected arbiter stall: no bus grants while `now < bus_stall_until`.
    bus_stall_until: u64,
    /// Remaining fetch batches that bypass the i-cache.
    force_miss_batches: u64,
    /// Per-process buffer-overwrite counts already recorded as anomalies.
    lost_seen: Vec<u64>,
    anomalies: AnomalyLedger,
    watchdog: Watchdog,
    /// Set when a budget trips; `step` refuses further work once set.
    degraded: Option<String>,
}

impl CoSimulator {
    /// Builds the master: synthesizes/compiles every component, wires the
    /// bus, cache and ledger, assembles the acceleration pipeline, and
    /// queues the stimulus.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildEstimatorError`] if any component fails to build,
    /// if the priority vector does not have one entry per process, or if
    /// the fault plan names an unknown process/event or has degenerate
    /// parameters.
    pub fn new(soc: SocDescription, config: CoSimConfig) -> Result<Self, BuildEstimatorError> {
        if soc.priorities.len() != soc.network.process_count() {
            return Err(BuildEstimatorError::PriorityCount {
                expected: soc.network.process_count(),
                got: soc.priorities.len(),
            });
        }
        let faults = faults::resolve(&config.faults, &soc.network)?;
        let n = soc.network.process_count();
        let mut estimators = Vec::with_capacity(n);
        for p in soc.network.process_ids() {
            estimators.push(build_estimator(&soc.network, p, &config)?);
        }
        let mut bus = Bus::new(config.bus.clone());
        let mut bus_master = Vec::with_capacity(n);
        for p in soc.network.process_ids() {
            bus_master.push(bus.register_master(
                soc.network.cfsm(p).name(),
                soc.priorities[p.0 as usize],
            ));
        }
        let mut account = EnergyAccount::new(config.waveform_bucket_cycles);
        let comp_of_proc: Vec<ComponentId> = soc
            .network
            .process_ids()
            .map(|p| account.add_component(soc.network.cfsm(p).name()))
            .collect();
        let bus_comp = account.add_component("bus");
        let cache_comp = account.add_component("icache");
        let mut queue = EventQueue::new();
        for &(t, occ) in &soc.stimulus {
            queue.push(SimTime::from_cycles(t), Ev::Deliver(occ));
        }
        let accel = AccelPipeline::from_config(&config.accel, &config);
        let state = soc.network.spawn();
        let icache = config.icache.clone().map(Cache::new);
        let process_names: Vec<&str> = soc
            .network
            .process_ids()
            .map(|p| soc.network.cfsm(p).name())
            .collect();
        let power = PowerRt::build(&config.power, &process_names, config.clock_hz)?;
        Ok(CoSimulator {
            state,
            estimators,
            accel,
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            // Ledger registration order: processes, then bus, then icache.
            provenance: ProvenanceBreakdown::new(n + 2),
            power,
            queue,
            bus,
            bus_master,
            icache,
            account,
            comp_of_proc,
            bus_comp,
            cache_comp,
            bus_pending: HashMap::new(),
            busy: vec![false; n],
            cpu_free_at: 0,
            now: 0,
            end_time: 0,
            firings: 0,
            firings_per_proc: vec![0; n],
            detailed_calls: 0,
            accelerated_calls: 0,
            faults,
            frozen_until: vec![0; n],
            bus_stall_until: 0,
            force_miss_batches: 0,
            lost_seen: vec![0; n],
            anomalies: AnomalyLedger::new(),
            watchdog: Watchdog::new(config.watchdog.clone()),
            degraded: None,
            soc,
            config,
        })
    }

    /// Builds the master like [`CoSimulator::new`], but first runs the
    /// static liveness checker and rejects specs with error-severity
    /// findings — the fast-fail front door for untrusted specs.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEstimatorError::Unverifiable`] carrying the full
    /// [`VerifyReport`](socverify::VerifyReport) when the spec has an
    /// orphan trigger or a wait cycle, plus every error
    /// [`CoSimulator::new`] can return.
    pub fn new_verified(
        soc: SocDescription,
        config: CoSimConfig,
    ) -> Result<Self, BuildEstimatorError> {
        crate::verify::gate(crate::verify::verify_soc(&soc))?;
        CoSimulator::new(soc, config)
    }

    /// Statically checks the spec this master was built from, without
    /// simulating anything. Read-only: the master is unchanged and a
    /// subsequent [`run`](CoSimulator::run) is bit-identical to one
    /// without the check.
    pub fn verify(&self) -> socverify::VerifyReport {
        crate::verify::verify_soc(&self.soc)
    }

    /// Attaches a trace sink; every subsequent synchronization point
    /// emits a structured [`TraceRecord`]. Tracing is an observability
    /// layer only: the simulated schedule and every energy figure are
    /// bit-for-bit identical with and without a sink.
    pub fn attach_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.attach(sink);
    }

    /// Detaches and returns the trace sink, disabling tracing.
    pub fn detach_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.detach()
    }

    /// Attaches a span profiler; estimator firings, acceleration-layer
    /// decisions, gate-kernel work and the whole run are timed on the
    /// monotonic clock. Profiling is wall-time observability only: no
    /// measured duration ever feeds back into the simulation, so every
    /// result stays bit-identical with and without a profiler (and when
    /// detached the master reads no clock at all).
    pub fn attach_profile(&mut self, sink: Box<dyn ProfileSink>) {
        self.profiler.attach(sink);
    }

    /// Detaches and returns the profile sink, disabling profiling.
    pub fn detach_profile(&mut self) -> Option<Box<dyn ProfileSink>> {
        self.profiler.detach()
    }

    /// Component names in ledger order (one per process, then the bus
    /// and the i-cache) — labels for timeline and waveform exports,
    /// aligned with the `component` field of emitted trace records.
    pub fn component_names(&self) -> Vec<String> {
        (0..self.account.component_count())
            .map(|i| self.account.name(ComponentId(i as u32)).to_string())
            .collect()
    }

    /// Runs to quiescence — or until a watchdog budget or the firing
    /// bound trips, in which case the report's
    /// [`outcome`](CoSimReport::outcome) is [`RunOutcome::Degraded`] and
    /// its figures cover the simulated time up to the trip.
    pub fn run(&mut self) -> CoSimReport {
        let t0 = self.profiler.start();
        if let Some(rt) = &self.power {
            // Trace-only: pin each component whose base power state is
            // not `active` with a synthetic cycle-0 transition, so the
            // trace stream is self-describing for residency
            // reconstruction (DVFS-pinned components never transition
            // at runtime). Reports are unaffected, and plain runs have
            // no power runtime at all.
            for (i, state) in rt.initial_states().into_iter().enumerate() {
                if state != PowerState::Active {
                    self.tracer.emit(|| TraceRecord::PowerTransition {
                        at: 0,
                        process: i as u32,
                        from: PowerState::Active.as_str(),
                        to: state.as_str(),
                    });
                }
            }
        }
        while self.step() {}
        if self.power.is_some() {
            // Settle every component's leakage tail up to the simulated
            // end of run (idempotent: re-running settles nothing).
            let end = self.end_time;
            let settles = self
                .power
                .as_mut()
                .map(|rt| rt.finalize(end))
                .unwrap_or_default();
            for (i, s) in settles.iter().enumerate() {
                self.apply_settlement(ProcId(i as u32), end, s);
            }
        }
        self.profiler.finish(SpanKind::MasterRun, t0);
        self.report()
    }

    /// Processes one master event; returns `false` when the queue is
    /// exhausted or a budget (watchdog or firing bound) trips.
    pub fn step(&mut self) -> bool {
        if self.degraded.is_some() {
            return false;
        }
        if self.firings >= self.config.max_firings {
            // The firing bound is one instance of the watchdog budget
            // mechanism: report Degraded only when work actually remains.
            if !self.queue.is_empty() {
                self.degrade(format!(
                    "firing budget of {} exhausted with events pending",
                    self.config.max_firings
                ));
            }
            return false;
        }
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = t.cycles();
        if let Some(trip) = self.watchdog.observe(t) {
            // The popped event is intentionally not handled: budgets cut
            // the run *before* the offending dispatch.
            self.degrade(trip.to_string());
            return false;
        }
        if !self.faults.is_empty() {
            self.apply_timed_faults();
        }
        match ev {
            Ev::Deliver(occ) => self.deliver(occ),
            Ev::HwDone(p) | Ev::SwDone(p) => self.busy[p.0 as usize] = false,
            Ev::BusKick => self.bus_kick(t.cycles()),
            Ev::Unfreeze(p) => {
                // The freeze horizon has passed; dispatch_ready below
                // re-examines the process's readiness.
                debug_assert!(self.frozen_until[p.0 as usize] <= self.now);
            }
        }
        self.dispatch_ready();
        true
    }

    /// Records a watchdog trip and marks the run degraded.
    fn degrade(&mut self, reason: String) {
        let now = self.now;
        self.tracer.emit(|| TraceRecord::WatchdogTrip {
            at: now,
            reason: reason.clone(),
        });
        self.anomalies
            .record(now, AnomalyKind::WatchdogTrip { reason: reason.clone() });
        self.degraded = Some(reason);
    }

    /// Charges one window to the ledger, mirroring it into the
    /// provenance breakdown (same `f64`, same `+=` order — the
    /// bit-identity contract) and into the trace.
    ///
    /// This is the power layer's choke point: every *dynamic* charge is
    /// scaled here by the component's operating point at charge time,
    /// so cached and macro-model answers are scaled by the state at
    /// replay time for free. Leakage and wake-overhead charges are
    /// computed in absolute joules and pass through unscaled.
    fn charge(
        &mut self,
        comp: ComponentId,
        start: u64,
        end: u64,
        mut energy_j: f64,
        prov: Provenance,
    ) {
        if let Some(rt) = &mut self.power {
            if !matches!(prov, Provenance::Leakage | Provenance::WakeOverhead) {
                energy_j = rt.scale_dynamic(comp.0 as usize, energy_j);
            }
        }
        self.account.record(comp, start, end, energy_j);
        self.provenance.record(comp.0 as usize, prov, energy_j);
        self.tracer.emit(|| TraceRecord::EnergySample {
            component: comp.0,
            start,
            end,
            energy_j,
            provenance: prov.as_str(),
        });
    }

    /// Charges a *static* window (leakage, wake overhead) to the
    /// ledger: same mirroring as [`charge`](Self::charge), but the
    /// cycles are not booked as busy — the component was idle or gated.
    fn charge_static(
        &mut self,
        comp: ComponentId,
        start: u64,
        end: u64,
        energy_j: f64,
        prov: Provenance,
    ) {
        self.account.record_static(comp, start, end, energy_j);
        self.provenance.record(comp.0 as usize, prov, energy_j);
        self.tracer.emit(|| TraceRecord::EnergySample {
            component: comp.0,
            start,
            end,
            energy_j,
            provenance: prov.as_str(),
        });
    }

    /// Books a power-layer settlement for process `p` at time `at`:
    /// settled leakage spans, power-state transition trace records, and
    /// any wake penalty (charged over the wake-latency window).
    fn apply_settlement(&mut self, p: ProcId, at: u64, s: &Settlement) {
        let comp = self.comp_of_proc[p.0 as usize];
        for span in &s.spans {
            self.charge_static(comp, span.start, span.end, span.energy_j, Provenance::Leakage);
        }
        for tr in &s.transitions {
            self.tracer.emit(|| TraceRecord::PowerTransition {
                at: tr.at,
                process: p.0,
                from: tr.from.as_str(),
                to: tr.to.as_str(),
            });
        }
        if s.wake_energy_j > 0.0 {
            self.charge_static(
                comp,
                at,
                at + s.wake_latency_cycles,
                s.wake_energy_j,
                Provenance::WakeOverhead,
            );
        }
    }

    /// Tries to grant one DMA block at time `t`; a successful grant
    /// schedules the next kick at its end, and a finished request
    /// completes the owning firing.
    fn bus_kick(&mut self, t: u64) {
        if t < self.bus_stall_until {
            // Injected arbiter stall: grants resume at the stall horizon,
            // where a kick is already queued.
            return;
        }
        match self.bus.grant_block(t) {
            Some(g) => {
                self.charge(self.bus_comp, g.start, g.end, g.energy_j, Provenance::BusModel);
                self.tracer.emit(|| TraceRecord::BusGrant {
                    at: t,
                    master: g.master.0,
                    start: g.start,
                    end: g.end,
                    words: g.words,
                    energy_j: g.energy_j,
                    request_done: g.request_done,
                });
                self.queue.push(SimTime::from_cycles(g.end), Ev::BusKick);
                if g.request_done {
                    let Some(wait) = self.bus_pending.remove(&g.request) else {
                        // Every bus request should map to a pending firing;
                        // if not, record the inconsistency and keep going
                        // instead of poisoning the whole run.
                        self.anomalies.record(
                            t,
                            AnomalyKind::RecoveredError {
                                context: format!(
                                    "bus request {:?} completed with no pending firing",
                                    g.request
                                ),
                            },
                        );
                        return;
                    };
                    let end = g.end.max(wait.exec_end);
                    self.complete_firing(wait, end);
                }
            }
            None => {
                // Busy bus: the grant that made it busy scheduled a kick
                // at its end. Idle bus with only future-paced blocks:
                // kick again when the earliest becomes ready.
                if self.bus.busy_until() <= t {
                    if let Some(r) = self.bus.next_ready_time() {
                        if r > t {
                            self.queue.push(SimTime::from_cycles(r), Ev::BusKick);
                        }
                    }
                }
            }
        }
    }

    /// Finishes a firing at time `end`: charges the bus-wait idling,
    /// delivers emissions, and releases the component (and CPU).
    fn complete_firing(&mut self, wait: FiringWait, end: u64) {
        let p = wait.proc;
        let idle = end.saturating_sub(wait.exec_end);
        let idle_energy =
            self.estimators[p.0 as usize].wait_energy(wait.transition, idle, wait.detailed);
        if idle > 0 {
            self.charge(
                self.comp_of_proc[p.0 as usize],
                wait.exec_end,
                end,
                idle_energy,
                wait.provenance,
            );
        }
        for (e, v) in wait.emissions {
            let occ = match v {
                Some(v) => EventOccurrence::valued(e, v),
                None => EventOccurrence::pure(e),
            };
            self.queue.push(SimTime::from_cycles(end), Ev::Deliver(occ));
        }
        let done = if wait.is_sw {
            self.cpu_free_at = end;
            Ev::SwDone(p)
        } else {
            Ev::HwDone(p)
        };
        self.queue.push(SimTime::from_cycles(end), done);
        self.end_time = self.end_time.max(end);
        if let Some(rt) = &mut self.power {
            // The component idles from here; its gate (if any) closes
            // after the policy's idle timeout.
            rt.sleep(p.0 as usize, end);
        }
    }

    /// Current simulation time, cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The acceleration pipeline (introspection: stacked layer names).
    pub fn accel_pipeline(&self) -> &AccelPipeline {
        &self.accel
    }

    /// The energy cache (for histogram extraction — Fig. 4b).
    pub fn energy_cache(&self) -> Option<&EnergyCache> {
        self.accel.energy_cache()
    }

    /// The characterized software parameter file, when macro-modeling is
    /// active.
    pub fn sw_parameter_file(&self) -> Option<&ParameterFile> {
        self.accel.sw_parameter_file()
    }

    /// Schedules every process that can run at the current time.
    fn dispatch_ready(&mut self) {
        let t = self.now;
        // Hardware processes run concurrently; order simultaneous starts
        // by bus priority (descending), then process id.
        let mut hw_ready: Vec<ProcId> = self
            .soc
            .network
            .process_ids()
            .filter(|&p| {
                self.soc.network.mapping(p) == Implementation::Hw
                    && !self.busy[p.0 as usize]
                    && self.frozen_until[p.0 as usize] <= t
                    && self.soc.network.cfsm(p).enabled(self.state.runtime(p)).is_some()
            })
            .collect();
        hw_ready
            .sort_by_key(|&p| (std::cmp::Reverse(self.soc.priorities[p.0 as usize]), p.0));
        for p in hw_ready {
            self.busy[p.0 as usize] = true;
            self.fire(p, t);
        }
        // Software: one task at a time on the shared CPU, arbitrated by
        // the configured RTOS policy, dispatched when the CPU is free.
        if self.cpu_free_at <= t {
            let sw_ready: Option<ProcId> = self
                .soc
                .network
                .process_ids()
                .filter(|&p| {
                    self.soc.network.mapping(p) == Implementation::Sw
                        && !self.busy[p.0 as usize]
                        && self.frozen_until[p.0 as usize] <= t
                        && self
                            .soc
                            .network
                            .cfsm(p)
                            .enabled(self.state.runtime(p))
                            .is_some()
                })
                .max_by_key(|&p| {
                    let pri = match self.config.rtos_policy {
                        crate::config::RtosPolicy::FixedPriority => {
                            self.soc.priorities[p.0 as usize]
                        }
                        crate::config::RtosPolicy::Fifo => 0,
                    };
                    (pri, std::cmp::Reverse(p.0))
                });
            if let Some(p) = sw_ready {
                self.busy[p.0 as usize] = true;
                self.fire(p, t);
            }
        }
    }

    /// Fires process `p` at time `t`: behavioral execution, cost
    /// estimation through the acceleration pipeline, cache integration,
    /// and either immediate completion or hand-off to the bus arbiter for
    /// the shared-memory phase.
    fn fire(&mut self, p: ProcId, t: u64) {
        // Pre-firing snapshot (what the estimators replay).
        let vars_in = self.state.runtime(p).vars().to_vec();
        let ev_snapshot: HashMap<EventId, i64> = {
            let buf = self.state.runtime(p).buffer();
            buf.present()
                .map(|e| (e, buf.value(e).unwrap_or(0)))
                .collect()
        };
        let Some(fr) = self.soc.network.fire(&mut self.state, p) else {
            // dispatch_ready only fires enabled processes, so this is an
            // internal inconsistency — record it and release the slot
            // instead of panicking mid-run.
            self.busy[p.0 as usize] = false;
            self.anomalies.record(
                t,
                AnomalyKind::RecoveredError {
                    context: format!(
                        "process `{}` dispatched while not enabled",
                        self.soc.network.cfsm(p).name()
                    ),
                },
            );
            return;
        };
        self.firings += 1;
        self.firings_per_proc[p.0 as usize] += 1;

        // Power layer: settle the component's leakage up to the firing
        // instant and pay any power-gate wake penalty. The wake latency
        // shifts the whole firing — execution, cache fetches and bus
        // traffic all start after the component is back up.
        let mut t = t;
        if self.power.is_some() {
            let settle = self.power.as_mut().map(|rt| rt.wake(p.0 as usize, t));
            if let Some(s) = settle {
                self.apply_settlement(p, t, &s);
                t += s.wake_latency_cycles;
            }
        }

        self.tracer.emit(|| TraceRecord::FiringStart {
            at: t,
            process: p.0,
            transition: fr.transition.0,
        });

        // Component cost, through the acceleration pipeline.
        let (mut cost, source) = self.estimate(p, &fr, &vars_in, &ev_snapshot, t);
        if !self.faults.is_empty() {
            cost = self.corrupt_cost(p, cost);
        }
        if let Some(rt) = &self.power {
            // A scaled clock stretches the execution window in master
            // cycles; the energy is scaled later, at the charge choke
            // point.
            cost.cycles = rt.stretch_cycles(p.0 as usize, cost.cycles);
        }
        self.tracer.emit(|| TraceRecord::FiringEnd {
            at: t,
            process: p.0,
            cycles: cost.cycles,
            energy_j: cost.energy_j,
            source: source.as_str(),
        });

        // Instruction-cache references come from the *behavioral* model
        // (block trace), independent of which estimator priced the
        // firing — exactly as in the paper.
        let mut stall_cycles = 0u64;
        if let Some(icache) = &mut self.icache {
            if let Some(addrs) =
                self.estimators[p.0 as usize].ifetch_addrs(fr.transition, &fr.execution)
            {
                if self.force_miss_batches > 0 {
                    // Injected bypass: every fetch goes to the next level
                    // at miss cost; the cache itself is neither consulted
                    // nor updated.
                    self.force_miss_batches -= 1;
                    let cfg = icache.config();
                    let fetches = addrs.len() as u64;
                    let de = fetches as f64 * (cfg.access_energy_j + cfg.miss_energy_j);
                    stall_cycles = fetches * cfg.miss_penalty_cycles;
                    self.charge(
                        self.cache_comp,
                        t,
                        t + stall_cycles.max(1),
                        de,
                        Provenance::CacheModel,
                    );
                    self.tracer.emit(|| TraceRecord::IcacheBatch {
                        at: t,
                        process: p.0,
                        fetches,
                        hits: 0,
                        misses: fetches,
                        stall_cycles,
                        energy_j: de,
                    });
                    self.anomalies.record(t, AnomalyKind::CacheBypassed { fetches });
                } else {
                    let batch = icache.access_batch(addrs);
                    stall_cycles = batch.stall_cycles;
                    self.charge(
                        self.cache_comp,
                        t,
                        t + stall_cycles.max(1),
                        batch.energy_j,
                        Provenance::CacheModel,
                    );
                    self.tracer.emit(|| TraceRecord::IcacheBatch {
                        at: t,
                        process: p.0,
                        fetches: batch.fetches,
                        hits: batch.hits,
                        misses: batch.misses,
                        stall_cycles,
                        energy_j: batch.energy_j,
                    });
                }
            }
        }

        // The component's execution phase: computation plus cache-miss
        // stalls (charged at the processor's stall power). The whole
        // window is one charge, booked under the provenance of whatever
        // produced the firing's cost.
        let detailed = source == CostSource::Detailed;
        let provenance = source.provenance(self.estimators[p.0 as usize].provenance());
        let stall_energy =
            self.estimators[p.0 as usize].wait_energy(fr.transition, stall_cycles, detailed);
        let exec_end = t + cost.cycles + stall_cycles;
        self.charge(
            self.comp_of_proc[p.0 as usize],
            t,
            exec_end,
            cost.energy_j + stall_energy,
            provenance,
        );
        self.end_time = self.end_time.max(exec_end);

        let is_sw = !self.estimators[p.0 as usize].is_hw();
        let wait = FiringWait {
            proc: p,
            transition: fr.transition,
            exec_end,
            detailed,
            is_sw,
            provenance,
            emissions: fr.execution.emitted.clone(),
        };

        // Shared-memory phase: the transactions are granted DMA block by
        // DMA block under priority arbitration; the firing completes when
        // its last block does.
        let ops: Vec<(u64, i64, bool)> = fr
            .execution
            .mem_accesses
            .iter()
            .map(|a| (a.addr, a.value, a.write))
            .collect();
        if ops.is_empty() {
            self.complete_firing(wait, exec_end);
        } else {
            if is_sw {
                // The processor owns the transfer (programmed I/O / DMA
                // set-up interleaved with computation); the RTOS keeps
                // the CPU allocated until the last block completes.
                self.cpu_free_at = u64::MAX;
            }
            // The component issues its transactions *throughout* its
            // computation, not in a burst at the end: pace the blocks
            // evenly across the execution window, so concurrent
            // components genuinely contend for the bus.
            let blocks = (ops.len() as u64).div_ceil(self.config.bus.dma_block_size as u64);
            let interval = cost.cycles / blocks.max(1);
            let req =
                self.bus
                    .enqueue_paced(self.bus_master[p.0 as usize], t, &ops, interval);
            self.bus_pending.insert(req, wait);
            self.queue.push(SimTime::from_cycles(t), Ev::BusKick);
        }
    }

    /// Routes one firing through the acceleration pipeline; a full
    /// fall-through runs the component's detailed backend.
    fn estimate(
        &mut self,
        p: ProcId,
        fr: &cfsm::FireResult,
        vars_in: &[i64],
        ev_snapshot: &HashMap<EventId, i64>,
        t: u64,
    ) -> (DetailedCost, CostSource) {
        let idx = p.0 as usize;
        let ctx = FiringCtx {
            proc: p,
            path: fr.execution.path,
            is_hw: self.estimators[idx].is_hw(),
            macro_ops: &fr.execution.macro_ops,
            now: t,
        };
        let stats_before = self.estimators[idx].gate_stats();
        let est = &mut self.estimators[idx];
        let inputs = FiringInputs {
            transition: fr.transition,
            vars_in,
            event_value: &|e| ev_snapshot.get(&e).copied().unwrap_or(0),
            exec: &fr.execution,
        };
        // The detailed closure can't reach `self.profiler` (it already
        // borrows the estimator), so it measures into a local and the
        // spans are booked after the pipeline returns. Detached profiler
        // = `prof_on` is false = zero clock reads on the hot path.
        let prof_on = self.profiler.enabled();
        let mut firing_wall: Option<Duration> = None;
        let accel_t0 = prof_on.then(Instant::now);
        let (cost, source) = self.accel.estimate(&ctx, &mut self.tracer, &mut || {
            let t0 = prof_on.then(Instant::now);
            let c = est.run_firing(&inputs);
            firing_wall = t0.map(|t0| t0.elapsed());
            c
        });
        if prof_on {
            let accel_wall = accel_t0.map(|t0| t0.elapsed());
            if let Some(wall) = firing_wall {
                self.profiler.record(SpanKind::EstimatorFiring, Some(wall));
                if ctx.is_hw {
                    // A detailed HW firing *is* a gate-kernel run: the
                    // same wall time, aggregated under its own kind so
                    // kernel work is visible without double bookkeeping
                    // in the simulator.
                    self.profiler.record(SpanKind::GateSimKernel, Some(wall));
                }
            }
            self.profiler.record(SpanKind::AccelDecision, accel_wall);
        }
        match source {
            CostSource::Detailed => self.detailed_calls += 1,
            _ => self.accelerated_calls += 1,
        }
        // Gate-level activity behind this firing (zero when a layer
        // answered without touching the simulator).
        if let (Some(before), Some(after)) =
            (stats_before, self.estimators[idx].gate_stats())
        {
            let evals = after.0.saturating_sub(before.0);
            let events = after.1.saturating_sub(before.1);
            if evals > 0 || events > 0 {
                self.tracer.emit(|| TraceRecord::GateActivity {
                    at: t,
                    process: p.0,
                    evals,
                    events,
                });
            }
        }
        (cost, source)
    }

    /// Builds the final report.
    fn report(&self) -> CoSimReport {
        let processes = self
            .soc
            .network
            .process_ids()
            .map(|p| {
                let totals = self.account.totals(self.comp_of_proc[p.0 as usize]);
                ProcessReport {
                    name: self.soc.network.cfsm(p).name().to_string(),
                    mapping: self.soc.network.mapping(p),
                    energy_j: totals.energy_j,
                    busy_cycles: totals.busy_cycles,
                    firings: self.firings_per_proc[p.0 as usize],
                }
            })
            .collect();
        CoSimReport {
            system: self.soc.name.clone(),
            processes,
            bus_energy_j: self.account.totals(self.bus_comp).energy_j,
            bus: self.bus.stats(),
            cache_energy_j: self.account.totals(self.cache_comp).energy_j,
            cache: self.icache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            total_cycles: self.end_time,
            firings: self.firings,
            detailed_calls: self.detailed_calls,
            accelerated_calls: self.accelerated_calls,
            account: self.account.clone(),
            outcome: match &self.degraded {
                Some(reason) => RunOutcome::Degraded { reason: reason.clone() },
                None => RunOutcome::Completed,
            },
            anomalies: self.anomalies.clone(),
            provenance: self.provenance.clone(),
            effectiveness: self.effectiveness(),
            power: self.power.as_ref().map(|rt| {
                let names: Vec<&str> = self
                    .soc
                    .network
                    .process_ids()
                    .map(|p| self.soc.network.cfsm(p).name())
                    .collect();
                rt.report(&names)
            }),
        }
    }

    /// Snapshots the per-technique effectiveness counters.
    fn effectiveness(&self) -> AccelEffectiveness {
        AccelEffectiveness {
            answered_by_layer: self
                .accel
                .answered_counts()
                .into_iter()
                .map(|(name, n)| (name.to_string(), n))
                .collect(),
            cache: self.accel.energy_cache().map(|c| {
                let (hits, misses) = c.hit_miss();
                let (eligible_paths, max_eligible_cv) = c.eligible_stats();
                CacheEffectiveness {
                    hits,
                    misses,
                    distinct_paths: c.distinct_paths(),
                    eligible_paths,
                    max_eligible_cv,
                    cv_bound: c.config().thresh_variance,
                }
            }),
            sampling: self.accel.sampling_stats().map(|(period, served, samples)| {
                SamplingEffectiveness {
                    period,
                    served,
                    samples,
                }
            }),
        }
    }
}
