//! Gate-level lane scheduler: maps independent sweep units onto the
//! lanes of a wide [`SimdLaneSim`] word.
//!
//! The simd kernel's lane words evaluate up to
//! [`gatesim::simd::MAX_LANES`] independent Boolean streams per gate
//! visit. This module spends those lanes on *sweeps*: each lane carries
//! one independent sweep unit — a Monte-Carlo stimulus vector (seeded
//! via `detrand`) for toggle-statistics estimation, or a stuck-at
//! fault/stimulus variant for a fault-matrix sweep — and the results are
//! demuxed back into per-unit points that are **bit-identical** to
//! running each unit alone through the scalar event-driven
//! [`gatesim::Simulator`] (energy down to the float bit pattern, values,
//! toggle counters).
//!
//! The equivalence holds because the lockstep multi-lane simulator folds
//! per-lane energy in the scalar kernels' exact float order (clock term
//! first, then toggled nets ascending by net id, then flop edges), so a
//! lane never observes a different accumulation order than a solo run.
//!
//! The co-simulation-level counterparts — fault-matrix and stimulus-seed
//! sweeps that demux into full per-point [`crate::CoSimReport`]s with
//! the provenance partition intact — live in [`crate::explore`] and
//! [`crate::explore_parallel`]; this module is the gate-level engine the
//! bench compares against serial scalar sweeps.

use detrand::Rng;
use gatesim::{
    EnergyReport, NetId, Netlist, PowerConfig, SimKernel, SimdLaneSim, Simulator,
    ValidateNetlistError,
};
use std::sync::Arc;

/// One independent gate-level sweep unit, scheduled onto one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneUnit {
    /// A Monte-Carlo stimulus vector: every primary input is driven by
    /// an independent Bernoulli stream derived from `seed`.
    MonteCarlo {
        /// Seed of the deterministic stimulus stream.
        seed: u64,
    },
    /// A stuck-at fault variant: the Monte-Carlo stimulus of `seed`,
    /// except one primary input is forced to `stuck` for the whole run.
    /// The random stream is consumed exactly as in the fault-free
    /// sibling, so a `(MonteCarlo, StuckAt)` pair with the same seed
    /// differs only by the fault — the fault-matrix diffing contract.
    StuckAt {
        /// Seed of the underlying fault-free stimulus stream.
        seed: u64,
        /// The faulted primary input.
        net: NetId,
        /// The value the input is stuck at.
        stuck: bool,
    },
}

impl LaneUnit {
    /// The stimulus seed of this unit (shared between a fault-free unit
    /// and its stuck-at variants).
    pub fn seed(&self) -> u64 {
        match *self {
            LaneUnit::MonteCarlo { seed } | LaneUnit::StuckAt { seed, .. } => seed,
        }
    }
}

/// Sweep-wide stimulus parameters.
#[derive(Debug, Clone)]
pub struct LaneSweepConfig {
    /// Simulated cycles per unit.
    pub cycles: usize,
    /// Per-cycle probability that a primary input is re-driven (the
    /// new value is a fair coin). Low probabilities yield long
    /// quiescent stretches — the regime windowed kernels amortize.
    pub toggle_probability: f64,
    /// Maximum units batched into one [`SimdLaneSim`] instance; clamped
    /// to `1..=`[`gatesim::simd::MAX_LANES`]. Sweeps larger than this
    /// run as multiple lockstep batches.
    pub max_lanes: usize,
}

impl Default for LaneSweepConfig {
    /// 256 cycles, 20% input activity, one full 256-lane word per batch.
    fn default() -> Self {
        LaneSweepConfig {
            cycles: 256,
            toggle_probability: 0.2,
            max_lanes: 256,
        }
    }
}

/// One demuxed per-unit result of a lane sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LanePoint {
    /// The sweep unit this lane carried.
    pub unit: LaneUnit,
    /// Per-cycle energy of this unit, bit-identical to a solo scalar
    /// run of the same stimulus.
    pub report: EnergyReport,
    /// Per-net toggle counts, indexed by net id.
    pub toggles: Vec<u64>,
    /// Final settled value of every net, indexed by net id.
    pub values: Vec<bool>,
}

impl LanePoint {
    /// Total energy of this unit, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_j()
    }
}

/// A whole lane-scheduled sweep: the demuxed per-unit points plus the
/// batch structure and aggregate gate-work counters.
#[derive(Debug, Clone)]
pub struct LaneSweep {
    /// Per-unit results, in `units` order.
    pub points: Vec<LanePoint>,
    /// Lockstep batches the units were packed into.
    pub batches: usize,
    /// Kernel work units summed over all batches (one multi-lane eval
    /// covers every lane of the batch).
    pub gate_evals: u64,
    /// Committed `(gate, lane, cycle)` evaluation slots over all batches.
    pub gate_eval_slots: u64,
    /// Committed per-lane net changes over all batches (the
    /// kernel-invariant activity metric).
    pub gate_events: u64,
}

/// The deterministic stimulus stream of one unit: per cycle, the
/// `(input, value)` forcings to apply before stepping. Pure in the unit
/// and config, so the lane-scheduled and solo-scalar paths replay the
/// identical stream.
fn unit_stimulus(
    netlist: &Netlist,
    unit: &LaneUnit,
    config: &LaneSweepConfig,
) -> Vec<Vec<(NetId, bool)>> {
    let primary = netlist.primary_inputs();
    let mut rng = Rng::new(unit.seed());
    let mut stream: Vec<Vec<(NetId, bool)>> = (0..config.cycles)
        .map(|_| {
            let mut forcings = Vec::new();
            for &p in &primary {
                if rng.bool_with(config.toggle_probability) {
                    forcings.push((p, rng.bool_with(0.5)));
                }
            }
            forcings
        })
        .collect();
    if let LaneUnit::StuckAt { net, stuck, .. } = *unit {
        // Same random consumption as the fault-free sibling; only the
        // faulted input's forcings are overridden.
        for cycle in &mut stream {
            cycle.retain(|&(p, _)| p != net);
        }
        if let Some(first) = stream.first_mut() {
            first.push((net, stuck));
        }
    }
    stream
}

/// Demuxes one simulated lane (or solo scalar run) into a [`LanePoint`].
fn demux<F, G>(netlist: &Netlist, unit: &LaneUnit, report: EnergyReport, toggle: F, value: G) -> LanePoint
where
    F: Fn(NetId) -> u64,
    G: Fn(NetId) -> bool,
{
    let toggles = (0..netlist.gate_count())
        .map(|i| toggle(NetId(i as u32)))
        .collect();
    let values = (0..netlist.gate_count())
        .map(|i| value(NetId(i as u32)))
        .collect();
    LanePoint {
        unit: unit.clone(),
        report,
        toggles,
        values,
    }
}

/// Runs the sweep units lane-scheduled: packed into wide lockstep
/// batches of up to `config.max_lanes` lanes each, one gate visit
/// evaluating every lane of a batch as a single word op.
///
/// Results are demuxed back per unit and are bit-identical to
/// [`run_lane_sweep_serial`] (and hence to solo scalar runs) — same
/// per-cycle energy floats, values, and toggle counters.
///
/// # Errors
///
/// Returns [`ValidateNetlistError`] if the netlist fails validation.
pub fn run_lane_sweep(
    netlist: &Arc<Netlist>,
    power: &PowerConfig,
    units: &[LaneUnit],
    config: &LaneSweepConfig,
) -> Result<LaneSweep, ValidateNetlistError> {
    let max = config.max_lanes.clamp(1, gatesim::simd::MAX_LANES);
    let mut sweep = LaneSweep {
        points: Vec::with_capacity(units.len()),
        batches: 0,
        gate_evals: 0,
        gate_eval_slots: 0,
        gate_events: 0,
    };
    for chunk in units.chunks(max) {
        let mut sim = SimdLaneSim::new(Arc::clone(netlist), power.clone(), chunk.len())?;
        let stimuli: Vec<Vec<Vec<(NetId, bool)>>> = chunk
            .iter()
            .map(|u| unit_stimulus(netlist, u, config))
            .collect();
        for j in 0..config.cycles {
            for (lane, stim) in stimuli.iter().enumerate() {
                for &(net, v) in &stim[j] {
                    sim.set_input(lane, net, v);
                }
            }
            sim.step();
        }
        for (lane, unit) in chunk.iter().enumerate() {
            sweep.points.push(demux(
                netlist,
                unit,
                sim.report(lane).clone(),
                |net| sim.toggle_count(net, lane),
                |net| sim.value(net, lane),
            ));
        }
        sweep.batches += 1;
        sweep.gate_evals += sim.gate_evals();
        sweep.gate_eval_slots += sim.gate_eval_slots();
        sweep.gate_events += sim.gate_events();
    }
    Ok(sweep)
}

/// The serial reference: every unit run alone through the scalar
/// event-driven kernel, in `units` order. Bit-identical to
/// [`run_lane_sweep`]; exists as the equivalence baseline and the
/// bench's "what the lanes buy you" comparison.
///
/// # Errors
///
/// Returns [`ValidateNetlistError`] if the netlist fails validation.
pub fn run_lane_sweep_serial(
    netlist: &Arc<Netlist>,
    power: &PowerConfig,
    units: &[LaneUnit],
    config: &LaneSweepConfig,
) -> Result<LaneSweep, ValidateNetlistError> {
    let mut sweep = LaneSweep {
        points: Vec::with_capacity(units.len()),
        batches: units.len(),
        gate_evals: 0,
        gate_eval_slots: 0,
        gate_events: 0,
    };
    for unit in units {
        let mut sim = Simulator::with_kernel(
            Arc::clone(netlist),
            power.clone(),
            SimKernel::EventDriven,
        )?;
        for cycle in &unit_stimulus(netlist, unit, config) {
            for &(net, v) in cycle {
                sim.set_input(net, v);
            }
            sim.step();
        }
        sweep.gate_evals += sim.gate_evals();
        sweep.gate_eval_slots += sim.gate_eval_slots();
        sweep.gate_events += sim.gate_events();
        sweep.points.push(demux(
            netlist,
            unit,
            sim.report().clone(),
            |net| sim.toggle_count(net),
            |net| sim.value(net),
        ));
    }
    Ok(sweep)
}

/// Builds the unit list of a stuck-at fault-matrix sweep: the
/// fault-free Monte-Carlo unit first, then every primary input stuck at
/// 0 and at 1, all sharing one stimulus seed so every column differs
/// from the fault-free baseline only by its fault.
pub fn fault_matrix_units(netlist: &Netlist, seed: u64) -> Vec<LaneUnit> {
    let mut units = vec![LaneUnit::MonteCarlo { seed }];
    for &net in &netlist.primary_inputs() {
        for stuck in [false, true] {
            units.push(LaneUnit::StuckAt { seed, net, stuck });
        }
    }
    units
}

/// Per-net toggle statistics over the Monte-Carlo lanes of a sweep
/// (stuck-at variants are excluded — their activity is biased by the
/// fault): the toggle-count mean and maximum per net, in deterministic
/// (lane-order) accumulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleStats {
    /// Monte-Carlo lanes aggregated.
    pub lanes: usize,
    /// Mean toggle count per net, indexed by net id.
    pub per_net_mean: Vec<f64>,
    /// Maximum toggle count per net, indexed by net id.
    pub per_net_max: Vec<u64>,
}

/// Aggregates the Monte-Carlo points of a sweep into per-net toggle
/// statistics — the quantity the paper's gate-level estimator exists to
/// measure, now estimated over many stimulus vectors at once.
pub fn toggle_statistics(points: &[LanePoint]) -> ToggleStats {
    let mc: Vec<&LanePoint> = points
        .iter()
        .filter(|p| matches!(p.unit, LaneUnit::MonteCarlo { .. }))
        .collect();
    let nets = mc.first().map_or(0, |p| p.toggles.len());
    let mut per_net_mean = vec![0.0f64; nets];
    let mut per_net_max = vec![0u64; nets];
    for p in &mc {
        for (i, &t) in p.toggles.iter().enumerate() {
            per_net_mean[i] += t as f64;
            per_net_max[i] = per_net_max[i].max(t);
        }
    }
    if !mc.is_empty() {
        for m in &mut per_net_mean {
            *m /= mc.len() as f64;
        }
    }
    ToggleStats {
        lanes: mc.len(),
        per_net_mean,
        per_net_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::GateKind;

    fn power() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    /// A small sequential netlist: XOR front end into a 3-flop shift
    /// chain with a reconvergent AND observer.
    fn netlist() -> Arc<Netlist> {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let x = n.gate(GateKind::Xor, vec![a, b]);
        let y = n.gate(GateKind::Or, vec![x, c]);
        let mut q = n.dff(y, false);
        for _ in 0..2 {
            q = n.dff(q, false);
        }
        let out = n.gate(GateKind::And, vec![q, x]);
        n.mark_output("out", out);
        Arc::new(n)
    }

    #[test]
    fn lane_sweep_is_bitwise_equal_to_solo_scalar_runs() {
        let n = netlist();
        // Straddle a chunk seam: 5 units at max_lanes 3 → batches of
        // 3 + 2, and the chunking must not leak into any result.
        let units: Vec<LaneUnit> = (0..5).map(|s| LaneUnit::MonteCarlo { seed: s }).collect();
        let config = LaneSweepConfig {
            cycles: 40,
            toggle_probability: 0.3,
            max_lanes: 3,
        };
        let lanes = run_lane_sweep(&n, &power(), &units, &config).expect("valid");
        let serial = run_lane_sweep_serial(&n, &power(), &units, &config).expect("valid");
        assert_eq!(lanes.batches, 2);
        assert_eq!(lanes.points.len(), 5);
        for (l, s) in lanes.points.iter().zip(&serial.points) {
            assert_eq!(l.unit, s.unit);
            assert_eq!(l.toggles, s.toggles, "unit {:?}", l.unit);
            assert_eq!(l.values, s.values, "unit {:?}", l.unit);
            let lane_bits: Vec<u64> = l.report.per_cycle_j.iter().map(|e| e.to_bits()).collect();
            let solo_bits: Vec<u64> = s.report.per_cycle_j.iter().map(|e| e.to_bits()).collect();
            assert_eq!(lane_bits, solo_bits, "unit {:?} energy", l.unit);
        }
        // The activity metric is kernel- and schedule-invariant.
        assert_eq!(lanes.gate_events, serial.gate_events);
        // One lane eval covers every lane of its batch, so committed
        // slots dominate evals on the lane path.
        assert!(lanes.gate_eval_slots > lanes.gate_evals);
    }

    #[test]
    fn stuck_at_variants_differ_only_by_the_fault() {
        let n = netlist();
        let inputs = n.primary_inputs();
        let units = fault_matrix_units(&n, 7);
        assert_eq!(units.len(), 1 + 2 * inputs.len());
        let config = LaneSweepConfig {
            cycles: 30,
            ..LaneSweepConfig::default()
        };
        let sweep = run_lane_sweep(&n, &power(), &units, &config).expect("valid");
        let baseline = &sweep.points[0];
        // A stuck input never toggles after its forcing settles, and the
        // variant's stimulus on every *other* input is the baseline's.
        for point in &sweep.points[1..] {
            let LaneUnit::StuckAt { net, stuck, .. } = point.unit else {
                unreachable!("fault_matrix_units layout")
            };
            assert_eq!(point.values[net.0 as usize], stuck);
            assert!(point.toggles[net.0 as usize] <= 1, "one settle toggle at most");
            // The faulted run is a genuine variant of the baseline: same
            // cycle count, and the serial path reproduces it bitwise.
            assert_eq!(point.report.per_cycle_j.len(), baseline.report.per_cycle_j.len());
        }
        let serial = run_lane_sweep_serial(&n, &power(), &units, &config).expect("valid");
        assert_eq!(sweep.points, serial.points);
    }

    #[test]
    fn toggle_statistics_cover_only_monte_carlo_lanes() {
        let n = netlist();
        let mut units: Vec<LaneUnit> = (0..8).map(|s| LaneUnit::MonteCarlo { seed: s }).collect();
        units.push(LaneUnit::StuckAt {
            seed: 0,
            net: n.primary_inputs()[0],
            stuck: true,
        });
        let sweep =
            run_lane_sweep(&n, &power(), &units, &LaneSweepConfig::default()).expect("valid");
        let stats = toggle_statistics(&sweep.points);
        assert_eq!(stats.lanes, 8);
        assert_eq!(stats.per_net_mean.len(), n.gate_count());
        for i in 0..n.gate_count() {
            let max = sweep.points[..8].iter().map(|p| p.toggles[i]).max().unwrap();
            assert_eq!(stats.per_net_max[i], max);
            assert!(stats.per_net_mean[i] <= max as f64);
        }
    }
}
