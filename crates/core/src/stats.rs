//! Streaming statistics (Welford's algorithm).
//!
//! The energy cache of §4.2 stores, per execution path, only the running
//! mean and variance of the energies reported by the low-level simulator
//! — this module provides that accumulator.

/// Numerically stable running mean/variance.
///
/// # Examples
///
/// ```
/// use co_estimation::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation `σ/|µ|` (0 when the mean is 0 or fewer
    /// than 2 observations) — the scale-free "variance" the caching
    /// threshold compares against.
    pub fn coeff_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.coeff_of_variation(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut s = RunningStats::new();
        for _ in 0..100 {
            s.push(7.25);
        }
        assert!((s.mean() - 7.25).abs() < 1e-12);
        assert!(s.population_variance().abs() < 1e-18);
        assert_eq!(s.coeff_of_variation(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 1.37).sin() * 10.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
        assert!((s.min() - xs.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12);
        assert!((s.max() - xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).abs() < 1e-12);
    }

    #[test]
    fn cv_is_scale_free() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for x in [1.0, 2.0, 3.0] {
            a.push(x);
            b.push(x * 1e-9); // nanojoule scale
        }
        assert!((a.coeff_of_variation() - b.coeff_of_variation()).abs() < 1e-12);
    }
}
