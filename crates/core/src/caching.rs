//! Energy and delay caching (§4.2 of the paper).
//!
//! During co-simulation, a few computation paths execute a very large
//! number of times (the 10%-of-code/90%-of-time observation), and for
//! most of them the low-level simulator keeps reporting (nearly) the
//! same energy and delay. The energy cache exploits this: per
//! `(task, path)` it accumulates the mean and variance of the reported
//! energy; once a path has been simulated at least
//! [`CachingConfig::thresh_iss_calls`] times with a coefficient of
//! variation below [`CachingConfig::thresh_variance`], further executions
//! reuse the cached means instead of invoking the simulator.

use crate::stats::RunningStats;
use cfsm::{PathId, ProcId};
use std::collections::HashMap;

/// User knobs trading accuracy for speed (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CachingConfig {
    /// Maximum coefficient of variation (σ/µ) of a path's energy for its
    /// cached value to be used.
    pub thresh_variance: f64,
    /// Minimum number of detailed-simulator calls before the cache may
    /// serve a path.
    pub thresh_iss_calls: u32,
    /// Keep every raw energy observation per path (needed to draw the
    /// Fig. 4b energy histograms; costs memory, off by default).
    pub keep_samples: bool,
}

impl CachingConfig {
    /// Paper-style defaults: paths must be seen 3 times and vary by less
    /// than 5% to be served from the cache.
    pub fn new() -> Self {
        CachingConfig {
            thresh_variance: 0.05,
            thresh_iss_calls: 3,
            keep_samples: false,
        }
    }

    /// Aggressive caching: serve after a single observation regardless of
    /// variance (maximum speedup; exact only for data-independent power
    /// models such as the SPARClite's).
    pub fn aggressive() -> Self {
        CachingConfig {
            thresh_variance: f64::INFINITY,
            thresh_iss_calls: 1,
            keep_samples: false,
        }
    }

    /// A profiling configuration that never serves from the cache but
    /// records every observation — used to extract the per-path energy
    /// histograms of Fig. 4(b).
    pub fn profiling() -> Self {
        CachingConfig {
            thresh_variance: 0.0,
            thresh_iss_calls: u32::MAX,
            keep_samples: true,
        }
    }
}

impl Default for CachingConfig {
    fn default() -> Self {
        CachingConfig::new()
    }
}

/// Statistics the cache keeps for one `(task, path)` pair.
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    /// Energy observations, joules.
    pub energy: RunningStats,
    /// Delay observations, cycles.
    pub cycles: RunningStats,
    /// Raw energy samples (populated only under
    /// [`CachingConfig::keep_samples`]).
    pub samples: Vec<f64>,
}

/// The per-system energy/delay cache (see module docs).
///
/// # Examples
///
/// ```
/// use co_estimation::{EnergyCache, CachingConfig};
/// use cfsm::{ProcId, PathId};
///
/// let mut cache = EnergyCache::new(CachingConfig {
///     thresh_variance: 0.05,
///     thresh_iss_calls: 2,
///     keep_samples: false,
/// });
/// let key = (ProcId(0), PathId(42));
/// assert!(cache.lookup(key).is_none()); // cold
/// cache.record(key, 1.0e-9, 100);
/// assert!(cache.lookup(key).is_none()); // below call threshold
/// cache.record(key, 1.0e-9, 100);
/// let hit = cache.lookup(key).expect("cache serves stable path");
/// assert_eq!(hit.cycles, 100);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyCache {
    config: CachingConfig,
    entries: HashMap<(ProcId, PathId), PathStats>,
    hits: u64,
    misses: u64,
}

/// A value served by the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedCost {
    /// Mean energy, joules.
    pub energy_j: f64,
    /// Mean delay, rounded to whole cycles.
    pub cycles: u64,
}

impl EnergyCache {
    /// An empty cache with the given thresholds.
    pub fn new(config: CachingConfig) -> Self {
        EnergyCache {
            config,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &CachingConfig {
        &self.config
    }

    /// Attempts to serve `(task, path)` from the cache. Counts a hit or
    /// miss accordingly.
    pub fn lookup(&mut self, key: (ProcId, PathId)) -> Option<CachedCost> {
        let served = self.entries.get(&key).and_then(|st| {
            let eligible = st.energy.count() >= self.config.thresh_iss_calls as u64
                && st.energy.coeff_of_variation() <= self.config.thresh_variance;
            if eligible {
                Some(CachedCost {
                    energy_j: st.energy.mean(),
                    cycles: st.cycles.mean().round() as u64,
                })
            } else {
                None
            }
        });
        match served {
            Some(c) => {
                self.hits += 1;
                Some(c)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a detailed-simulator observation for `(task, path)`.
    pub fn record(&mut self, key: (ProcId, PathId), energy_j: f64, cycles: u64) {
        let keep = self.config.keep_samples;
        let st = self.entries.entry(key).or_default();
        st.energy.push(energy_j);
        st.cycles.push(cycles as f64);
        if keep {
            st.samples.push(energy_j);
        }
    }

    /// The statistics gathered for one path, if any (energy histograms —
    /// Fig. 4b — are built from these).
    pub fn path_stats(&self, key: (ProcId, PathId)) -> Option<&PathStats> {
        self.entries.get(&key)
    }

    /// Number of distinct `(task, path)` pairs seen.
    pub fn distinct_paths(&self) -> usize {
        self.entries.len()
    }

    /// `(hits, misses)` since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Iterates over all `(key, stats)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(ProcId, PathId), &PathStats)> {
        self.entries.iter()
    }

    /// `(eligible paths, max coefficient of variation among them)`:
    /// how many paths currently qualify for cache answers, and the
    /// worst relative spread of any energy the cache would replay — the
    /// §4.2 error bound actually in force (always `<= thresh_variance`).
    pub fn eligible_stats(&self) -> (usize, f64) {
        let mut eligible = 0usize;
        let mut max_cv = 0.0f64;
        for st in self.entries.values() {
            if st.energy.count() >= self.config.thresh_iss_calls as u64
                && st.energy.coeff_of_variation() <= self.config.thresh_variance
            {
                eligible += 1;
                max_cv = max_cv.max(st.energy.coeff_of_variation());
            }
        }
        (eligible, max_cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32, path: u64) -> (ProcId, PathId) {
        (ProcId(p), PathId(path))
    }

    fn cache(var: f64, calls: u32) -> EnergyCache {
        EnergyCache::new(CachingConfig {
            thresh_variance: var,
            thresh_iss_calls: calls,
            keep_samples: false,
        })
    }

    #[test]
    fn cold_paths_miss() {
        let mut c = cache(0.1, 2);
        assert!(c.lookup(key(0, 1)).is_none());
        assert_eq!(c.hit_miss(), (0, 1));
    }

    #[test]
    fn serves_after_threshold_calls() {
        let mut c = cache(0.1, 3);
        for _ in 0..2 {
            c.record(key(0, 1), 2e-9, 50);
            assert!(c.lookup(key(0, 1)).is_none(), "below call threshold");
        }
        c.record(key(0, 1), 2e-9, 50);
        let hit = c.lookup(key(0, 1)).expect("served");
        assert!((hit.energy_j - 2e-9).abs() < 1e-18);
        assert_eq!(hit.cycles, 50);
    }

    #[test]
    fn high_variance_path_never_served() {
        let mut c = cache(0.05, 2);
        // Energies varying by 2x → CV far above 5%.
        c.record(key(0, 9), 1e-9, 10);
        c.record(key(0, 9), 2e-9, 20);
        c.record(key(0, 9), 1e-9, 10);
        assert!(c.lookup(key(0, 9)).is_none());
    }

    #[test]
    fn low_variance_path_served_with_mean() {
        let mut c = cache(0.05, 2);
        c.record(key(1, 5), 1.00e-9, 100);
        c.record(key(1, 5), 1.02e-9, 100);
        c.record(key(1, 5), 0.98e-9, 100);
        let hit = c.lookup(key(1, 5)).expect("served");
        assert!((hit.energy_j - 1.0e-9).abs() < 1e-12 * 1e-9 + 1e-15);
    }

    #[test]
    fn keys_are_per_task_and_path() {
        let mut c = cache(1.0, 1);
        c.record(key(0, 7), 1e-9, 1);
        assert!(c.lookup(key(1, 7)).is_none(), "different task");
        assert!(c.lookup(key(0, 8)).is_none(), "different path");
        assert!(c.lookup(key(0, 7)).is_some());
        assert_eq!(c.distinct_paths(), 1);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut c = cache(1.0, 1);
        c.record(key(0, 1), 1e-9, 1);
        c.lookup(key(0, 1)); // hit
        c.lookup(key(0, 2)); // miss
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggressive_config_serves_after_one_call() {
        let mut c = EnergyCache::new(CachingConfig::aggressive());
        c.record(key(0, 3), 5e-9, 42);
        assert!(c.lookup(key(0, 3)).is_some());
    }

    #[test]
    fn path_stats_expose_histogram_inputs() {
        let mut c = cache(1.0, 1);
        for e in [1.0, 2.0, 3.0] {
            c.record(key(0, 4), e, 10);
        }
        let st = c.path_stats(key(0, 4)).expect("exists");
        assert_eq!(st.energy.count(), 3);
        assert!((st.energy.mean() - 2.0).abs() < 1e-12);
        assert_eq!(st.energy.min(), 1.0);
        assert_eq!(st.energy.max(), 3.0);
    }
}
