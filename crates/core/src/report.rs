//! Co-estimation run results: per-process figures, the run outcome, and
//! the complete [`CoSimReport`] the master hands back.

use crate::account::{AnomalyLedger, EnergyAccount};
use cfsm::Implementation;

/// Per-process results of a co-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// HW or SW mapping.
    pub mapping: Implementation,
    /// Energy attributed to the component's own execution, joules.
    pub energy_j: f64,
    /// Cycles the component was busy.
    pub busy_cycles: u64,
    /// Number of transition firings.
    pub firings: u64,
}

/// How a co-estimation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: the system quiesced normally.
    Completed,
    /// A watchdog budget (or the firing bound) tripped; the report covers
    /// the simulated time up to the trip and is *partial* but consistent.
    Degraded {
        /// Why the run was cut short.
        reason: String,
    },
}

impl RunOutcome {
    /// `true` when the run was cut short.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunOutcome::Degraded { .. })
    }
}

/// The complete result of one co-estimation run.
#[derive(Debug, Clone)]
pub struct CoSimReport {
    /// System name.
    pub system: String,
    /// Per-process results, indexed by [`ProcId`](cfsm::ProcId).
    pub processes: Vec<ProcessReport>,
    /// Bus (integration architecture) energy, joules.
    pub bus_energy_j: f64,
    /// Bus statistics.
    pub bus: busmodel::BusStats,
    /// Cache energy, joules.
    pub cache_energy_j: f64,
    /// Cache statistics (zeros when cache modeling is disabled).
    pub cache: cachesim::CacheStats,
    /// Simulated end time, master cycles.
    pub total_cycles: u64,
    /// Total transition firings.
    pub firings: u64,
    /// Calls answered by the detailed simulators.
    pub detailed_calls: u64,
    /// Calls served by an acceleration technique instead.
    pub accelerated_calls: u64,
    /// The full energy ledger (waveforms, per-component breakdown).
    pub account: EnergyAccount,
    /// Whether the run quiesced or was cut short by a budget.
    pub outcome: RunOutcome,
    /// Injected faults and observed degradations, in simulation order.
    pub anomalies: AnomalyLedger,
}

impl CoSimReport {
    /// Total system energy (components + bus + cache), joules.
    pub fn total_energy_j(&self) -> f64 {
        self.processes.iter().map(|p| p.energy_j).sum::<f64>()
            + self.bus_energy_j
            + self.cache_energy_j
    }

    /// Energy of the named process, joules.
    ///
    /// # Panics
    ///
    /// Panics if no process has that name.
    pub fn process_energy_j(&self, name: &str) -> f64 {
        self.processes
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no process named `{name}`"))
            .energy_j
    }

    /// Average system power at the configured clock, watts.
    pub fn average_power_w(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_energy_j() / (self.total_cycles as f64 / clock_hz)
        }
    }
}
