//! Co-estimation run results: per-process figures, the run outcome, and
//! the complete [`CoSimReport`] the master hands back — plus the
//! observability layer: [`Provenance`]-tagged energy attribution that
//! must sum *bit-exactly* to the report totals, and per-technique
//! effectiveness counters for the accuracy-vs-speedup tables.

use crate::account::{AnomalyLedger, EnergyAccount};
use cfsm::Implementation;

/// Where an energy contribution came from: which model or acceleration
/// technique produced the joules.
///
/// Every charge the master books carries exactly one provenance, so the
/// per-provenance buckets of a [`ProvenanceBreakdown`] are an exact
/// partition of the run's energy ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Provenance {
    /// Software energy measured by the enhanced instruction-set
    /// simulator (the detailed SW path).
    MeasuredIss,
    /// Energy replayed from the per-path energy cache (§4.2) instead of
    /// re-running the ISS.
    CacheReuse,
    /// Energy from an analytic macro-model (linear model backend or the
    /// macro-model acceleration layer).
    MacroModel,
    /// Energy extrapolated by periodic sampling: one detailed sample
    /// scaled over the skipped firings (§4.3).
    SampledScaled,
    /// Hardware energy from gate-level simulation of the synthesized
    /// netlist (the detailed HW path).
    GateLevel,
    /// Communication energy from the bus (integration architecture)
    /// model.
    BusModel,
    /// Instruction-cache energy from the cache model.
    CacheModel,
    /// Static (leakage) energy integrated over simulated time by the
    /// power-management layer; scaled down while a component is clock-
    /// or power-gated.
    Leakage,
    /// Wake-up penalty energy paid when a power-gated component is
    /// brought back up.
    WakeOverhead,
}

impl Provenance {
    /// Every provenance, in stable rendering order.
    pub const ALL: [Provenance; 9] = [
        Provenance::MeasuredIss,
        Provenance::CacheReuse,
        Provenance::MacroModel,
        Provenance::SampledScaled,
        Provenance::GateLevel,
        Provenance::BusModel,
        Provenance::CacheModel,
        Provenance::Leakage,
        Provenance::WakeOverhead,
    ];

    /// Stable machine-readable tag, shared with the trace layer's
    /// `EnergySample.provenance` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::MeasuredIss => "measured_iss",
            Provenance::CacheReuse => "cache_reuse",
            Provenance::MacroModel => "macro_model",
            Provenance::SampledScaled => "sampled_scaled",
            Provenance::GateLevel => "gate_level",
            Provenance::BusModel => "bus_model",
            Provenance::CacheModel => "cache_model",
            Provenance::Leakage => "leakage",
            Provenance::WakeOverhead => "wake_overhead",
        }
    }

    fn index(self) -> usize {
        match self {
            Provenance::MeasuredIss => 0,
            Provenance::CacheReuse => 1,
            Provenance::MacroModel => 2,
            Provenance::SampledScaled => 3,
            Provenance::GateLevel => 4,
            Provenance::BusModel => 5,
            Provenance::CacheModel => 6,
            Provenance::Leakage => 7,
            Provenance::WakeOverhead => 8,
        }
    }
}

/// Provenance-tagged energy attribution for one run.
///
/// # The bit-identity contract
///
/// The breakdown shadows the [`EnergyAccount`]: every charge the master
/// books is mirrored here with the *same* `f64` value, accumulated with
/// the *same* `+=` sequence per component, in the same arrival order.
/// IEEE-754 addition is deterministic for a fixed operand sequence, so
/// each entry of `component_energy_j` is bit-identical to the ledger's
/// per-component total, and [`total_energy_j`](Self::total_energy_j)
/// (which folds components in the same order as
/// [`CoSimReport::total_energy_j`]) is bit-identical to the report
/// total. [`CoSimReport::verify_provenance`] checks this by bit
/// pattern, not tolerance.
///
/// The per-provenance buckets are an exact *set partition* of the same
/// charges, but summing them interleaves additions in a different
/// order, so their sum is only guaranteed equal to the total up to
/// float associativity — use them for attribution, not reconciliation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvenanceBreakdown {
    /// Energy per provenance, joules, indexed by `Provenance::index`.
    energy_j: [f64; 9],
    /// Number of charges per provenance.
    records: [u64; 9],
    /// Mirror of the ledger's per-component accumulation, in component
    /// registration order (processes, then bus, then i-cache).
    component_energy_j: Vec<f64>,
}

impl ProvenanceBreakdown {
    /// An empty breakdown sized for `components` ledger components.
    pub fn new(components: usize) -> Self {
        ProvenanceBreakdown {
            energy_j: [0.0; 9],
            records: [0u64; 9],
            component_energy_j: vec![0.0; components],
        }
    }

    /// Mirrors one ledger charge: `energy_j` joules booked to component
    /// `component` with the given provenance.
    pub fn record(&mut self, component: usize, provenance: Provenance, energy_j: f64) {
        let i = provenance.index();
        self.energy_j[i] += energy_j;
        self.records[i] += 1;
        if self.component_energy_j.len() <= component {
            self.component_energy_j.resize(component + 1, 0.0);
        }
        self.component_energy_j[component] += energy_j;
    }

    /// Energy attributed to one provenance, joules.
    pub fn energy_for(&self, provenance: Provenance) -> f64 {
        self.energy_j[provenance.index()]
    }

    /// Number of charges booked under one provenance.
    pub fn records_for(&self, provenance: Provenance) -> u64 {
        self.records[provenance.index()]
    }

    /// Mirrored per-component energies, in ledger registration order.
    pub fn component_energy_j(&self) -> &[f64] {
        &self.component_energy_j
    }

    /// Total energy folded in component order — bit-identical to
    /// [`CoSimReport::total_energy_j`] (see the bit-identity contract).
    pub fn total_energy_j(&self) -> f64 {
        self.component_energy_j.iter().sum()
    }

    /// Sum of the per-provenance buckets, joules. Equals the total only
    /// up to float associativity; see the type-level docs.
    pub fn bucket_sum_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Total number of charges booked.
    pub fn total_records(&self) -> u64 {
        self.records.iter().sum()
    }

    /// Stable JSON object: per-provenance energy and record counts.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = Provenance::ALL
            .iter()
            .map(|&p| {
                format!(
                    "\"{}\": {{\"energy_j\": {:e}, \"records\": {}}}",
                    p.as_str(),
                    self.energy_for(p),
                    self.records_for(p)
                )
            })
            .collect();
        format!("{{{}}}", buckets.join(", "))
    }
}

/// Effectiveness of the energy cache (§4.2) in one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheEffectiveness {
    /// Firings answered from the cache (ISS calls avoided).
    pub hits: u64,
    /// Firings that went to the detailed path and fed the cache.
    pub misses: u64,
    /// Distinct execution paths observed.
    pub distinct_paths: usize,
    /// Paths currently eligible for cache answers (enough samples,
    /// variance under threshold).
    pub eligible_paths: usize,
    /// Largest coefficient of variation among eligible paths — the
    /// worst-case relative spread of any energy the cache replays.
    pub max_eligible_cv: f64,
    /// The configured variance threshold: the §4.2 error bound no
    /// eligible path may exceed.
    pub cv_bound: f64,
}

impl CacheEffectiveness {
    /// Fraction of cacheable firings answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Effectiveness of periodic sampling (§4.3) in one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SamplingEffectiveness {
    /// Configured sampling period (every `period`-th firing is
    /// simulated in detail).
    pub period: u32,
    /// Firings answered by scaling the last sample (ISS calls avoided).
    pub served: u64,
    /// Detailed samples actually taken.
    pub samples: u64,
}

impl SamplingEffectiveness {
    /// Sequence compaction ratio: firings covered per detailed sample.
    pub fn compaction_ratio(&self) -> f64 {
        if self.samples == 0 {
            1.0
        } else {
            (self.served + self.samples) as f64 / self.samples as f64
        }
    }
}

/// Per-technique effectiveness counters for one run: how many detailed
/// simulator calls each acceleration layer avoided, and the state that
/// bounds the error it introduced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccelEffectiveness {
    /// Firings answered per acceleration layer, in pipeline order
    /// (layer name, count).
    pub answered_by_layer: Vec<(String, u64)>,
    /// Energy-cache state, when a cache layer was configured.
    pub cache: Option<CacheEffectiveness>,
    /// Sampling state, when a sampling layer was configured.
    pub sampling: Option<SamplingEffectiveness>,
}

impl AccelEffectiveness {
    /// Total detailed-simulator calls avoided across all layers.
    pub fn iss_calls_avoided(&self) -> u64 {
        self.answered_by_layer.iter().map(|(_, n)| n).sum()
    }
}

/// Per-process results of a co-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// HW or SW mapping.
    pub mapping: Implementation,
    /// Energy attributed to the component's own execution, joules.
    pub energy_j: f64,
    /// Cycles the component was busy.
    pub busy_cycles: u64,
    /// Number of transition firings.
    pub firings: u64,
}

/// How a co-estimation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: the system quiesced normally.
    Completed,
    /// A watchdog budget (or the firing bound) tripped; the report covers
    /// the simulated time up to the trip and is *partial* but consistent.
    Degraded {
        /// Why the run was cut short.
        reason: String,
    },
}

impl RunOutcome {
    /// `true` when the run was cut short.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunOutcome::Degraded { .. })
    }
}

/// The complete result of one co-estimation run.
#[derive(Debug, Clone)]
pub struct CoSimReport {
    /// System name.
    pub system: String,
    /// Per-process results, indexed by [`ProcId`](cfsm::ProcId).
    pub processes: Vec<ProcessReport>,
    /// Bus (integration architecture) energy, joules.
    pub bus_energy_j: f64,
    /// Bus statistics.
    pub bus: busmodel::BusStats,
    /// Cache energy, joules.
    pub cache_energy_j: f64,
    /// Cache statistics (zeros when cache modeling is disabled).
    pub cache: cachesim::CacheStats,
    /// Simulated end time, master cycles.
    pub total_cycles: u64,
    /// Total transition firings.
    pub firings: u64,
    /// Calls answered by the detailed simulators.
    pub detailed_calls: u64,
    /// Calls served by an acceleration technique instead.
    pub accelerated_calls: u64,
    /// The full energy ledger (waveforms, per-component breakdown).
    pub account: EnergyAccount,
    /// Whether the run quiesced or was cut short by a budget.
    pub outcome: RunOutcome,
    /// Injected faults and observed degradations, in simulation order.
    pub anomalies: AnomalyLedger,
    /// Provenance-tagged energy attribution (sums bit-exactly to the
    /// report totals; see [`ProvenanceBreakdown`]). Not part of the
    /// golden snapshot.
    pub provenance: ProvenanceBreakdown,
    /// Per-technique effectiveness counters. Not part of the golden
    /// snapshot.
    pub effectiveness: AccelEffectiveness,
    /// Power-management results: per-component state residency and
    /// per-technique savings. `None` when the run used the default
    /// (all-Active, zero-leakage) policy. Not part of the golden
    /// snapshot.
    pub power: Option<crate::powermgmt::PowerReport>,
}

impl CoSimReport {
    /// Total system energy (components + bus + cache), joules.
    pub fn total_energy_j(&self) -> f64 {
        self.processes.iter().map(|p| p.energy_j).sum::<f64>()
            + self.bus_energy_j
            + self.cache_energy_j
    }

    /// Energy of the named process, joules.
    ///
    /// # Panics
    ///
    /// Panics if no process has that name.
    pub fn process_energy_j(&self, name: &str) -> f64 {
        self.processes
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no process named `{name}`"))
            .energy_j
    }

    /// Checks the provenance bit-identity contract: every mirrored
    /// per-component energy, and the folded total, must match the
    /// report's figures *bit for bit* (IEEE-754 bit patterns, not a
    /// tolerance). Components are ordered processes, then bus, then
    /// i-cache — the master's ledger registration order.
    ///
    /// Returns the first mismatch as a description, or `Ok(())`.
    pub fn verify_provenance(&self) -> Result<(), String> {
        let comp = self.provenance.component_energy_j();
        let n = self.processes.len();
        if comp.len() != n + 2 {
            return Err(format!(
                "provenance mirrors {} components, report has {} (processes + bus + cache)",
                comp.len(),
                n + 2
            ));
        }
        for (i, p) in self.processes.iter().enumerate() {
            if comp[i].to_bits() != p.energy_j.to_bits() {
                return Err(format!(
                    "process `{}`: provenance {:e} != report {:e} (bit patterns differ)",
                    p.name, comp[i], p.energy_j
                ));
            }
        }
        if comp[n].to_bits() != self.bus_energy_j.to_bits() {
            return Err(format!(
                "bus: provenance {:e} != report {:e}",
                comp[n], self.bus_energy_j
            ));
        }
        if comp[n + 1].to_bits() != self.cache_energy_j.to_bits() {
            return Err(format!(
                "icache: provenance {:e} != report {:e}",
                comp[n + 1],
                self.cache_energy_j
            ));
        }
        let total = self.provenance.total_energy_j();
        if total.to_bits() != self.total_energy_j().to_bits() {
            return Err(format!(
                "total: provenance {:e} != report {:e}",
                total,
                self.total_energy_j()
            ));
        }
        Ok(())
    }

    /// Average system power at the configured clock, watts.
    pub fn average_power_w(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_energy_j() / (self.total_cycles as f64 / clock_hz)
        }
    }
}
