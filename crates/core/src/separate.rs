//! The *separate estimation* baseline (§2 of the paper).
//!
//! This is the methodology the paper argues against: first run a
//! **timing-independent behavioral simulation** of the whole system
//! (every reaction takes zero time) and capture each component's input
//! traces; then drive every component's power estimator *independently*
//! with its captured trace, with no feedback between component timing and
//! system behavior.
//!
//! For systems whose execution traces are timing-sensitive — e.g. the
//! Fig. 1 consumer, whose loop bound is the *difference of arrival
//! times* of its inputs — the captured traces differ from the ones a
//! timing-accurate co-simulation produces, and the energy estimates can
//! be wrong by large factors (the paper measures a 62% under-estimation).

use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::{build_estimator, BuildEstimatorError, FiringInputs};
use busmodel::Bus;
use cfsm::{EventId, EventOccurrence, Execution, NetworkState, ProcId, TransitionId};
use std::collections::HashMap;

/// One captured firing of one process.
#[derive(Debug, Clone)]
pub struct FiringRecord {
    /// The process that fired.
    pub proc: ProcId,
    /// Which transition fired.
    pub transition: TransitionId,
    /// Variable values before the firing.
    pub vars_in: Vec<i64>,
    /// Input-event values visible at the firing.
    pub event_values: HashMap<EventId, i64>,
    /// The behavioral execution.
    pub execution: Execution,
}

/// The product of the behavioral (zero-delay) simulation.
#[derive(Debug, Clone, Default)]
pub struct BehavioralTrace {
    /// All firings, in behavioral order.
    pub firings: Vec<FiringRecord>,
}

impl BehavioralTrace {
    /// The firings of one process, in order.
    pub fn of_process(&self, p: ProcId) -> impl Iterator<Item = &FiringRecord> {
        self.firings.iter().filter(move |f| f.proc == p)
    }

    /// Number of firings of one process.
    pub fn firing_count(&self, p: ProcId) -> usize {
        self.of_process(p).count()
    }
}

/// Bounds runaway zero-delay loops.
const MAX_DELTA_FIRINGS: u64 = 10_000_000;

/// Runs the timing-independent behavioral simulation and captures every
/// component's execution trace.
///
/// Reactions take zero time: at each stimulus instant, enabled processes
/// fire (in process-id order) and their emissions are delivered
/// immediately, repeating until the system quiesces, before the next
/// stimulus is applied.
///
/// # Panics
///
/// Panics if the system does not quiesce (runaway zero-delay loop).
pub fn capture_traces(soc: &SocDescription) -> BehavioralTrace {
    let mut state: NetworkState = soc.network.spawn();
    let mut trace = BehavioralTrace::default();
    let mut stimulus = soc.stimulus.clone();
    stimulus.sort_by_key(|&(t, _)| t);
    let mut total = 0u64;
    for &(_, occ) in &stimulus {
        soc.network.broadcast(&mut state, occ);
        // Delta cycles until quiescent.
        while let Some(p) = soc.network.any_enabled(&state) {
            assert!(
                total < MAX_DELTA_FIRINGS,
                "behavioral simulation does not quiesce"
            );
            total += 1;
            let vars_in = state.runtime(p).vars().to_vec();
            let event_values: HashMap<EventId, i64> = {
                let buf = state.runtime(p).buffer();
                buf.present()
                    .map(|e| (e, buf.value(e).unwrap_or(0)))
                    .collect()
            };
            // `any_enabled` returned `p`, so the fire must succeed; if
            // the runtime disagrees, stop the delta loop rather than
            // spin or panic.
            let Some(fr) = soc.network.fire(&mut state, p) else {
                break;
            };
            for &(e, v) in &fr.execution.emitted {
                let occ = match v {
                    Some(v) => EventOccurrence::valued(e, v),
                    None => EventOccurrence::pure(e),
                };
                soc.network.broadcast(&mut state, occ);
            }
            trace.firings.push(FiringRecord {
                proc: p,
                transition: fr.transition,
                vars_in,
                event_values,
                execution: fr.execution,
            });
        }
    }
    trace
}

/// The result of separate (independent) power estimation.
#[derive(Debug, Clone)]
pub struct SeparateReport {
    /// Per-process energy, joules, indexed by [`ProcId`].
    pub process_energy_j: Vec<f64>,
    /// Per-process names.
    pub process_names: Vec<String>,
    /// Bus energy estimated from the captured (timing-free) trace.
    pub bus_energy_j: f64,
    /// Total firings replayed.
    pub firings: u64,
}

impl SeparateReport {
    /// Energy of the named process.
    ///
    /// # Panics
    ///
    /// Panics if no process has that name.
    pub fn process_energy_j(&self, name: &str) -> f64 {
        let i = self
            .process_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no process named `{name}`"));
        self.process_energy_j[i]
    }

    /// Total estimated energy (components + bus).
    pub fn total_energy_j(&self) -> f64 {
        self.process_energy_j.iter().sum::<f64>() + self.bus_energy_j
    }
}

/// Performs separate estimation: captures behavioral traces, then drives
/// each component's detailed estimator independently with its own trace.
///
/// # Errors
///
/// Returns a [`BuildEstimatorError`] if a component fails to build.
pub fn estimate_separately(
    soc: &SocDescription,
    config: &CoSimConfig,
) -> Result<SeparateReport, BuildEstimatorError> {
    let trace = capture_traces(soc);
    let mut process_energy = vec![0.0; soc.network.process_count()];
    let mut names = Vec::with_capacity(soc.network.process_count());
    for p in soc.network.process_ids() {
        names.push(soc.network.cfsm(p).name().to_string());
        let mut est = build_estimator(&soc.network, p, config)?;
        for rec in trace.of_process(p) {
            let ev = rec.event_values.clone();
            let cost = est.run_firing(&FiringInputs {
                transition: rec.transition,
                vars_in: &rec.vars_in,
                event_value: &|e| ev.get(&e).copied().unwrap_or(0),
                exec: &rec.execution,
            });
            process_energy[p.0 as usize] += cost.energy_j;
        }
    }
    // Bus energy from the captured trace (no contention information).
    let mut bus = Bus::new(config.bus.clone());
    let m = bus.register_master("trace", 0);
    let mut bus_energy = 0.0;
    for rec in &trace.firings {
        let ops: Vec<(u64, i64, bool)> = rec
            .execution
            .mem_accesses
            .iter()
            .map(|a| (a.addr, a.value, a.write))
            .collect();
        if !ops.is_empty() {
            bus_energy += bus.transfer(m, 0, &ops).energy_j;
        }
    }
    Ok(SeparateReport {
        process_energy_j: process_energy,
        process_names: names,
        bus_energy_j: bus_energy,
        firings: trace.firings.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, Cfsm, EventDef, Expr, Implementation, Network, Stmt};

    /// Producer (SW) emits DATA on GO; consumer (HW) counts DATA.
    fn soc() -> SocDescription {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let data = nb.event(EventDef::valued("DATA"));
        let mut prod = Cfsm::builder("producer");
        let s = prod.state("s");
        let v = prod.var("v", 0);
        prod.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: v,
                    expr: Expr::add(Expr::Var(v), Expr::Const(1)),
                },
                Stmt::Emit {
                    event: data,
                    value: Some(Expr::Var(v)),
                },
            ]),
            s,
        );
        nb.process(prod.finish().expect("valid"), Implementation::Sw);
        let mut cons = Cfsm::builder("consumer");
        let c = cons.state("c");
        let n = cons.var("n", 0);
        cons.transition(
            c,
            vec![data],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: n,
                expr: Expr::add(Expr::Var(n), Expr::Const(1)),
            }]),
            c,
        );
        nb.process(cons.finish().expect("valid"), Implementation::Hw);
        let network = nb.finish().expect("valid network");
        SocDescription {
            name: "sep-test".into(),
            network,
            stimulus: (0..6).map(|i| (i * 100, EventOccurrence::pure(go))).collect(),
            priorities: vec![1, 1],
        }
    }

    #[test]
    fn capture_records_all_firings_in_order() {
        let soc = soc();
        let trace = capture_traces(&soc);
        // Each GO → producer fires, then consumer fires.
        assert_eq!(trace.firings.len(), 12);
        let producer = soc.network.process_by_name("producer").expect("exists");
        let consumer = soc.network.process_by_name("consumer").expect("exists");
        assert_eq!(trace.firing_count(producer), 6);
        assert_eq!(trace.firing_count(consumer), 6);
        assert_eq!(trace.firings[0].proc, producer);
        assert_eq!(trace.firings[1].proc, consumer);
    }

    #[test]
    fn captured_vars_track_behavioral_state() {
        let soc = soc();
        let trace = capture_traces(&soc);
        let producer = soc.network.process_by_name("producer").expect("exists");
        let vars: Vec<i64> = trace.of_process(producer).map(|f| f.vars_in[0]).collect();
        assert_eq!(vars, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn separate_estimation_sums_component_energies() {
        let soc = soc();
        let rep = estimate_separately(&soc, &CoSimConfig::date2000_defaults())
            .expect("estimates");
        assert_eq!(rep.firings, 12);
        assert!(rep.process_energy_j("producer") > 0.0);
        assert!(rep.process_energy_j("consumer") > 0.0);
        assert!(rep.total_energy_j() > 0.0);
        assert_eq!(rep.bus_energy_j, 0.0, "no shared memory in this system");
    }

    #[test]
    fn separate_is_deterministic() {
        let soc = soc();
        let cfg = CoSimConfig::date2000_defaults();
        let a = estimate_separately(&soc, &cfg).expect("a");
        let b = estimate_separately(&soc, &cfg).expect("b");
        assert_eq!(
            a.total_energy_j().to_bits(),
            b.total_energy_j().to_bits()
        );
    }
}
