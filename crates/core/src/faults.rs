//! Declarative fault injection for co-simulation runs.
//!
//! A [`FaultPlan`] is a schedule of faults the master applies at dispatch
//! time: dropping, duplicating or delaying a CFSM event occurrence,
//! freezing a process, corrupting an ISS energy sample, stalling the bus
//! arbiter, or forcing instruction fetches to bypass the i-cache. Faults
//! reference processes and events *by name*; the names are resolved (and
//! validated) once, when the [`CoSimulator`](crate::CoSimulator) is built.
//!
//! Each fault arms at `at_cycle` and fires on the *next matching occasion*
//! at or after that time — the next delivery of the named event, the next
//! estimate of the named process, and so on. Every application is recorded
//! in the run report's [`AnomalyLedger`](crate::AnomalyLedger), along with
//! the degradations it provokes downstream (overwritten buffers, shed
//! events, clamped samples, watchdog trips).
//!
//! An empty plan is guaranteed zero-cost: the master's hot paths check
//! [`FaultPlan::is_empty`] once and a run with an empty plan is bit-for-bit
//! identical to one with no fault layer at all.

use crate::estimator::BuildEstimatorError;
use cfsm::{EventId, Network, ProcId};
use std::fmt;

/// One injectable fault kind (see module docs). Processes and events are
/// named; unknown names are rejected when the simulator is built.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Drop the next occurrence of the named event before delivery.
    DropEvent {
        /// Event name.
        event: String,
    },
    /// Deliver the next occurrence of the named event twice.
    DuplicateEvent {
        /// Event name.
        event: String,
    },
    /// Postpone the next occurrence of the named event.
    DelayEvent {
        /// Event name.
        event: String,
        /// Delay, master clock cycles.
        cycles: u64,
    },
    /// Prevent the named process from firing for a window of time.
    FreezeProcess {
        /// Process name.
        process: String,
        /// Freeze duration, master clock cycles (must be nonzero).
        cycles: u64,
    },
    /// Multiply the next energy sample of the named process by `factor`.
    /// Non-finite or negative results are clamped to zero and recorded.
    CorruptEnergy {
        /// Process name.
        process: String,
        /// Multiplier applied to the sample (must be finite).
        factor: f64,
    },
    /// Stall the bus arbiter: no grants for a window of time.
    StallBus {
        /// Stall duration, master clock cycles (must be nonzero).
        cycles: u64,
    },
    /// Make the next `batches` instruction-fetch batches bypass the
    /// i-cache: every fetch is priced as a miss and no cache state is
    /// updated.
    ForceCacheMisses {
        /// Number of fetch batches (≈ software firings) affected.
        batches: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DropEvent { event } => write!(f, "drop next `{event}`"),
            FaultKind::DuplicateEvent { event } => write!(f, "duplicate next `{event}`"),
            FaultKind::DelayEvent { event, cycles } => {
                write!(f, "delay next `{event}` by {cycles} cycles")
            }
            FaultKind::FreezeProcess { process, cycles } => {
                write!(f, "freeze `{process}` for {cycles} cycles")
            }
            FaultKind::CorruptEnergy { process, factor } => {
                write!(f, "corrupt next energy sample of `{process}` by ×{factor}")
            }
            FaultKind::StallBus { cycles } => write!(f, "stall bus for {cycles} cycles"),
            FaultKind::ForceCacheMisses { batches } => {
                write!(f, "bypass i-cache for {batches} fetch batches")
            }
        }
    }
}

/// A scheduled fault: arms at `at_cycle`, fires on the next matching
/// occasion at or after it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Simulated time at which the fault arms, master clock cycles.
    pub at_cycle: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A declarative schedule of faults (see module docs).
///
/// # Examples
///
/// ```
/// use co_estimation::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .drop_event(1_000, "PKT_READY")
///     .freeze_process(5_000, "checksum", 20_000)
///     .stall_bus(8_000, 4_000);
/// assert_eq!(plan.faults.len(), 3);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, applied independently of their order here.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plan, reading as intent at call sites.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when no faults are scheduled — the master's zero-cost gate.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds an arbitrary fault.
    pub fn with(mut self, at_cycle: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at_cycle, kind });
        self
    }

    /// Drops the next occurrence of `event` at or after `at_cycle`.
    pub fn drop_event(self, at_cycle: u64, event: impl Into<String>) -> Self {
        self.with(at_cycle, FaultKind::DropEvent { event: event.into() })
    }

    /// Duplicates the next occurrence of `event` at or after `at_cycle`.
    pub fn duplicate_event(self, at_cycle: u64, event: impl Into<String>) -> Self {
        self.with(at_cycle, FaultKind::DuplicateEvent { event: event.into() })
    }

    /// Delays the next occurrence of `event` by `cycles`.
    pub fn delay_event(self, at_cycle: u64, event: impl Into<String>, cycles: u64) -> Self {
        self.with(at_cycle, FaultKind::DelayEvent { event: event.into(), cycles })
    }

    /// Freezes `process` for `cycles` starting at or after `at_cycle`.
    pub fn freeze_process(self, at_cycle: u64, process: impl Into<String>, cycles: u64) -> Self {
        self.with(at_cycle, FaultKind::FreezeProcess { process: process.into(), cycles })
    }

    /// Corrupts the next energy sample of `process` by `factor`.
    pub fn corrupt_energy(self, at_cycle: u64, process: impl Into<String>, factor: f64) -> Self {
        self.with(at_cycle, FaultKind::CorruptEnergy { process: process.into(), factor })
    }

    /// Stalls the bus arbiter for `cycles` starting at or after `at_cycle`.
    pub fn stall_bus(self, at_cycle: u64, cycles: u64) -> Self {
        self.with(at_cycle, FaultKind::StallBus { cycles })
    }

    /// Bypasses the i-cache for the next `batches` fetch batches.
    pub fn force_cache_misses(self, at_cycle: u64, batches: u64) -> Self {
        self.with(at_cycle, FaultKind::ForceCacheMisses { batches })
    }
}

/// [`FaultKind`] with names resolved to network ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ResolvedFaultKind {
    DropEvent(EventId),
    DuplicateEvent(EventId),
    DelayEvent(EventId, u64),
    FreezeProcess(ProcId, u64),
    CorruptEnergy(ProcId, f64),
    StallBus(u64),
    ForceCacheMisses(u64),
}

/// One armed fault inside the master. `armed` flips to `false` once the
/// fault has been applied (every fault is one-shot).
#[derive(Debug, Clone)]
pub(crate) struct ResolvedFault {
    pub at_cycle: u64,
    pub kind: ResolvedFaultKind,
    pub armed: bool,
    /// Rendered source spec, used when recording the injection.
    pub describe: String,
}

impl ResolvedFault {
    /// Whether this fault may fire at simulated time `now`.
    pub fn ready(&self, now: u64) -> bool {
        self.armed && self.at_cycle <= now
    }
}

/// Resolves a plan's names against `network`, validating parameters.
pub(crate) fn resolve(
    plan: &FaultPlan,
    network: &Network,
) -> Result<Vec<ResolvedFault>, BuildEstimatorError> {
    let event = |name: &str| {
        network.event_by_name(name).ok_or_else(|| {
            BuildEstimatorError::InvalidParams(format!("fault plan names unknown event `{name}`"))
        })
    };
    let process = |name: &str| {
        network.process_by_name(name).ok_or_else(|| {
            BuildEstimatorError::InvalidParams(format!(
                "fault plan names unknown process `{name}`"
            ))
        })
    };
    let nonzero = |what: &str, cycles: u64| {
        if cycles == 0 {
            Err(BuildEstimatorError::InvalidParams(format!(
                "fault plan: {what} duration must be nonzero"
            )))
        } else {
            Ok(cycles)
        }
    };
    plan.faults
        .iter()
        .map(|spec| {
            let kind = match &spec.kind {
                FaultKind::DropEvent { event: e } => ResolvedFaultKind::DropEvent(event(e)?),
                FaultKind::DuplicateEvent { event: e } => {
                    ResolvedFaultKind::DuplicateEvent(event(e)?)
                }
                FaultKind::DelayEvent { event: e, cycles } => {
                    ResolvedFaultKind::DelayEvent(event(e)?, *cycles)
                }
                FaultKind::FreezeProcess { process: p, cycles } => {
                    ResolvedFaultKind::FreezeProcess(process(p)?, nonzero("freeze", *cycles)?)
                }
                FaultKind::CorruptEnergy { process: p, factor } => {
                    if !factor.is_finite() {
                        return Err(BuildEstimatorError::InvalidParams(format!(
                            "fault plan: corruption factor {factor} is not finite"
                        )));
                    }
                    ResolvedFaultKind::CorruptEnergy(process(p)?, *factor)
                }
                FaultKind::StallBus { cycles } => {
                    ResolvedFaultKind::StallBus(nonzero("bus stall", *cycles)?)
                }
                FaultKind::ForceCacheMisses { batches } => {
                    ResolvedFaultKind::ForceCacheMisses(*batches)
                }
            };
            Ok(ResolvedFault {
                at_cycle: spec.at_cycle,
                kind,
                armed: true,
                describe: format!("{} (armed at cycle {})", spec.kind, spec.at_cycle),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, Cfsm, EventDef, Implementation};

    fn two_proc_network() -> Network {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        for name in ["alpha", "beta"] {
            let mut mb = Cfsm::builder(name);
            let s = mb.state("s");
            mb.transition(s, vec![go], None, Cfg::straight_line(vec![]), s);
            nb.process(mb.finish().expect("valid machine"), Implementation::Hw);
        }
        nb.finish().expect("valid network")
    }

    #[test]
    fn builder_accumulates_specs() {
        let plan = FaultPlan::new()
            .drop_event(10, "GO")
            .duplicate_event(20, "GO")
            .delay_event(30, "GO", 7)
            .freeze_process(40, "alpha", 100)
            .corrupt_energy(50, "beta", -2.0)
            .stall_bus(60, 5)
            .force_cache_misses(70, 3);
        assert_eq!(plan.faults.len(), 7);
        assert_eq!(plan.faults[0].at_cycle, 10);
        assert_eq!(plan.faults[3].kind, FaultKind::FreezeProcess {
            process: "alpha".into(),
            cycles: 100,
        });
    }

    #[test]
    fn resolve_maps_names_to_ids() {
        let net = two_proc_network();
        let plan = FaultPlan::new().drop_event(1, "GO").freeze_process(2, "beta", 9);
        let resolved = resolve(&plan, &net).expect("resolves");
        assert_eq!(resolved.len(), 2);
        assert!(resolved.iter().all(|f| f.armed));
        assert!(matches!(resolved[0].kind, ResolvedFaultKind::DropEvent(_)));
        assert!(matches!(resolved[1].kind, ResolvedFaultKind::FreezeProcess(p, 9)
            if net.cfsm(p).name() == "beta"));
    }

    #[test]
    fn resolve_rejects_unknown_names() {
        let net = two_proc_network();
        let bad_event = FaultPlan::new().drop_event(0, "NO_SUCH");
        assert!(matches!(
            resolve(&bad_event, &net),
            Err(BuildEstimatorError::InvalidParams(msg)) if msg.contains("NO_SUCH")
        ));
        let bad_proc = FaultPlan::new().freeze_process(0, "gamma", 5);
        assert!(matches!(
            resolve(&bad_proc, &net),
            Err(BuildEstimatorError::InvalidParams(msg)) if msg.contains("gamma")
        ));
    }

    #[test]
    fn resolve_rejects_degenerate_parameters() {
        let net = two_proc_network();
        for plan in [
            FaultPlan::new().freeze_process(0, "alpha", 0),
            FaultPlan::new().stall_bus(0, 0),
            FaultPlan::new().corrupt_energy(0, "alpha", f64::NAN),
            FaultPlan::new().corrupt_energy(0, "alpha", f64::INFINITY),
        ] {
            assert!(
                matches!(resolve(&plan, &net), Err(BuildEstimatorError::InvalidParams(_))),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn ready_gates_on_time_and_armed_state() {
        let net = two_proc_network();
        let plan = FaultPlan::new().drop_event(100, "GO");
        let mut resolved = resolve(&plan, &net).expect("resolves");
        assert!(!resolved[0].ready(99));
        assert!(resolved[0].ready(100));
        resolved[0].armed = false;
        assert!(!resolved[0].ready(100));
    }

    #[test]
    fn descriptions_render_the_spec() {
        let net = two_proc_network();
        let plan = FaultPlan::new().freeze_process(42, "alpha", 7);
        let resolved = resolve(&plan, &net).expect("resolves");
        assert!(resolved[0].describe.contains("alpha"), "{}", resolved[0].describe);
        assert!(resolved[0].describe.contains("42"), "{}", resolved[0].describe);
    }
}
