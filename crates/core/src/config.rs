//! System descriptions and co-simulation configuration.

use crate::caching::CachingConfig;
use crate::sampling::SamplingConfig;
use cfsm::{EventOccurrence, Network};

/// A complete system-on-chip description: the CFSM network (with its
/// HW/SW mapping), the environment stimulus, and the per-process
/// priorities of the integration architecture.
#[derive(Debug, Clone)]
pub struct SocDescription {
    /// Human-readable system name.
    pub name: String,
    /// The CFSM network (processes + events + mapping).
    pub network: Network,
    /// Environment events: `(delivery cycle, occurrence)`.
    pub stimulus: Vec<(u64, EventOccurrence)>,
    /// Per-process priority (larger = more urgent), indexed by
    /// [`ProcId`](cfsm::ProcId). Used both by the RTOS (for SW tasks) and
    /// the bus arbiter (for masters) — the exploration knob of Fig. 7.
    pub priorities: Vec<u8>,
}

impl SocDescription {
    /// Sets one process's priority (design-space exploration knob).
    pub fn set_priority(&mut self, p: cfsm::ProcId, priority: u8) {
        self.priorities[p.0 as usize] = priority;
    }
}

/// Which acceleration (speedup) techniques are active (§4).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Acceleration {
    /// Energy and delay caching (§4.2).
    pub caching: Option<CachingConfig>,
    /// Software/hardware power macro-modeling (§4.1). Mutually
    /// exclusive with the other techniques in practice (it replaces the
    /// detailed estimators entirely).
    pub macromodel: bool,
    /// Firing-level statistical sampling (§4.3).
    pub sampling: Option<SamplingConfig>,
}

impl Acceleration {
    /// The unaccelerated baseline (paper column "Orig.").
    pub fn none() -> Self {
        Acceleration::default()
    }

    /// Energy caching with the given thresholds.
    pub fn caching(config: CachingConfig) -> Self {
        Acceleration {
            caching: Some(config),
            ..Default::default()
        }
    }

    /// Macro-modeling only.
    pub fn macromodel() -> Self {
        Acceleration {
            macromodel: true,
            ..Default::default()
        }
    }

    /// Firing-level sampling with the given period.
    pub fn sampling(config: SamplingConfig) -> Self {
        Acceleration {
            sampling: Some(config),
            ..Default::default()
        }
    }
}

/// Which family of per-component power estimators the master builds —
/// the backend selector for the [`PowerEstimator`](crate::PowerEstimator)
/// seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorBackend {
    /// The paper's detailed backends: gate-level simulation for HW
    /// processes, the enhanced ISS for SW processes.
    #[default]
    Detailed,
    /// The table-driven
    /// [`LinearModelEstimator`](crate::LinearModelEstimator) for every
    /// process: characterized per-macro-op cost tables, no cycle-level
    /// simulation.
    Linear,
}

/// The RTOS scheduling policy for software tasks on the shared CPU
/// ("the user is allowed to … set RTOS parameters such as scheduling
/// policy and priorities", §3). Scheduling is non-preemptive: the policy
/// picks among simultaneously ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtosPolicy {
    /// Highest static priority first (process-id order among equals).
    #[default]
    FixedPriority,
    /// Priorities ignored: process-id order among the ready tasks.
    /// (Readiness is re-evaluated on every master event, so this behaves
    /// as first-come first-served for tasks that become ready at
    /// different instants.)
    Fifo,
}

/// Full configuration of a co-estimation run.
#[derive(Debug, Clone)]
pub struct CoSimConfig {
    /// Master clock frequency, hertz (power conversions only; all
    /// simulators share the master clock).
    pub clock_hz: f64,
    /// RTOS scheduling policy for the software tasks.
    pub rtos_policy: RtosPolicy,
    /// Hardware power parameters.
    pub hw_power: gatesim::PowerConfig,
    /// Hardware synthesis parameters.
    pub synth: gatesim::SynthConfig,
    /// Which software power model variant to use.
    pub sw_power: iss::PowerModelKind,
    /// Which family of per-component estimators to build.
    pub backend: EstimatorBackend,
    /// Bus / integration-architecture parameters.
    pub bus: busmodel::BusConfig,
    /// Instruction-cache configuration (`None` disables cache modeling).
    pub icache: Option<cachesim::CacheConfig>,
    /// Active acceleration techniques.
    pub accel: Acceleration,
    /// Power-waveform bucket width, cycles.
    pub waveform_bucket_cycles: u64,
    /// Safety bound on the number of transition firings — one instance of
    /// the general watchdog budget mechanism: exhausting it terminates the
    /// run with a [`Degraded`](crate::RunOutcome::Degraded) report.
    pub max_firings: u64,
    /// Scheduled fault injections (empty = zero-cost, bit-for-bit
    /// identical to a run without the fault layer).
    pub faults: crate::faults::FaultPlan,
    /// Execution budgets guarding the run (all disabled by default).
    pub watchdog: desim::WatchdogConfig,
    /// Power-management policy (DVFS operating points, gating,
    /// leakage). The default [`PowerPolicy::none`](crate::PowerPolicy::none)
    /// is a guaranteed noop: the run is bit-identical to one without
    /// the power layer.
    pub power: crate::powermgmt::PowerPolicy,
}

impl CoSimConfig {
    /// Paper-flavoured defaults: 25 MHz SPARClite-era clock, 3.3 V,
    /// the §5.3 bus parameters, an 8 KiB I-cache, no acceleration.
    pub fn date2000_defaults() -> Self {
        CoSimConfig {
            clock_hz: 25e6,
            rtos_policy: RtosPolicy::FixedPriority,
            hw_power: gatesim::PowerConfig::date2000_defaults(),
            synth: gatesim::SynthConfig::new(),
            sw_power: iss::PowerModelKind::SparcLite,
            backend: EstimatorBackend::Detailed,
            bus: busmodel::BusConfig::date2000_defaults(),
            icache: Some(cachesim::CacheConfig::sparclite_icache()),
            accel: Acceleration::none(),
            waveform_bucket_cycles: 1_000,
            max_firings: 50_000_000,
            faults: crate::faults::FaultPlan::none(),
            watchdog: desim::WatchdogConfig::unlimited(),
            power: crate::powermgmt::PowerPolicy::none(),
        }
    }

    /// Returns a copy with the given acceleration settings.
    pub fn with_accel(&self, accel: Acceleration) -> Self {
        CoSimConfig {
            accel,
            ..self.clone()
        }
    }

    /// Returns a copy with a different estimator backend family.
    pub fn with_backend(&self, backend: EstimatorBackend) -> Self {
        CoSimConfig {
            backend,
            ..self.clone()
        }
    }

    /// Returns a copy with a different bus DMA block size (the Table 1/2
    /// sweep knob).
    pub fn with_dma_block_size(&self, size: u32) -> Self {
        CoSimConfig {
            bus: self.bus.with_dma_block_size(size),
            ..self.clone()
        }
    }

    /// Returns a copy with the given fault plan.
    pub fn with_faults(&self, faults: crate::faults::FaultPlan) -> Self {
        CoSimConfig {
            faults,
            ..self.clone()
        }
    }

    /// Returns a copy with the given watchdog budgets.
    pub fn with_watchdog(&self, watchdog: desim::WatchdogConfig) -> Self {
        CoSimConfig {
            watchdog,
            ..self.clone()
        }
    }

    /// Returns a copy with the given power-management policy (the
    /// exploration knob of the power sweeps).
    pub fn with_power_policy(&self, power: crate::powermgmt::PowerPolicy) -> Self {
        CoSimConfig {
            power,
            ..self.clone()
        }
    }
}

impl Default for CoSimConfig {
    fn default() -> Self {
        CoSimConfig::date2000_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_flavoured() {
        let c = CoSimConfig::date2000_defaults();
        assert_eq!(c.clock_hz, 25e6);
        assert_eq!(c.bus.vdd, 3.3);
        assert_eq!(c.bus.addr_width, 8);
        assert!(c.icache.is_some());
        assert_eq!(c.accel, Acceleration::none());
    }

    #[test]
    fn accel_constructors() {
        assert!(Acceleration::none().caching.is_none());
        assert!(Acceleration::macromodel().macromodel);
        let s = Acceleration::sampling(SamplingConfig { period: 4 });
        assert_eq!(s.sampling.expect("set").period, 4);
        let c = Acceleration::caching(CachingConfig::new());
        assert!(c.caching.is_some());
    }

    #[test]
    fn with_dma_changes_only_bus() {
        let c = CoSimConfig::date2000_defaults();
        let c2 = c.with_dma_block_size(64);
        assert_eq!(c2.bus.dma_block_size, 64);
        assert_eq!(c2.clock_hz, c.clock_hz);
    }
}
