//! `co-estimation` — the SOC power co-estimation framework of
//! *"Efficient Power Co-Estimation Techniques for System-on-Chip Design"*
//! (Lajolo, Raghunathan, Dey, Lavagno — DATE 2000).
//!
//! A system is described as a CFSM network with a HW/SW mapping
//! ([`SocDescription`]); the [`CoSimulator`] simulates its discrete-event
//! behavioral model while concurrently and synchronously driving the
//! per-component power estimators — *power co-estimation*. The
//! estimators sit behind the object-safe [`PowerEstimator`] trait
//! ([`build_estimator`] picks one per process from the configured
//! [`EstimatorBackend`]): gate-level simulation for hardware
//! ([`HwEstimator`]), an enhanced ISS for software ([`SwEstimator`]), or
//! a characterized table-driven model ([`LinearModelEstimator`]); the
//! behavioral bus model prices the integration architecture and a cache
//! simulator is attached to the master. The baseline the paper argues
//! against, independent per-component estimation from behavioral traces,
//! is provided by [`estimate_separately`].
//!
//! Three acceleration techniques (§4) can be switched on through
//! [`Acceleration`]; the master assembles them into an [`AccelPipeline`]
//! of composable [`AccelLayer`]s, each of which either answers a firing
//! from its own state or delegates down to the detailed backend:
//!
//! * **energy & delay caching** ([`CacheLayer`] over [`EnergyCache`],
//!   §4.2),
//! * **software/hardware power macro-modeling** ([`MacroModelLayer`]
//!   over [`ParameterFile`], §4.1),
//! * **statistical sampling / sequence compaction** ([`SamplingLayer`],
//!   [`KMemoryCompactor`], §4.3).
//!
//! The whole stack is observable through the `soctrace` crate:
//! [`CoSimulator::attach_trace`] threads a zero-cost-when-disabled
//! [`soctrace::TraceSink`] through the desim kernel, the master, the
//! acceleration layers and the bus/cache models, emitting structured
//! [`soctrace::TraceRecord`]s (firings, layer decisions, ledger charges,
//! bus grants, cache batches, fault injections, watchdog trips) without
//! perturbing the simulated schedule.
//!
//! A composable power-management layer ([`PowerPolicy`]) assigns DVFS
//! operating points ([`OperatingPoint`]) and idle-timeout clock/power
//! gating ([`GatingPolicy`]) per component, and integrates static
//! leakage ([`LeakageModel`]) over simulated time: dynamic charges are
//! scaled at the master's charge choke point by the component's
//! [`PowerState`] at charge time, and every new joule is provenance-
//! tagged ([`Provenance::Leakage`], [`Provenance::WakeOverhead`]) so
//! [`CoSimReport::verify_provenance`] stays an exact bit-level
//! partition. The default policy is a guaranteed noop.
//!
//! [`explore_bus_architecture`] drives the iterative design-space
//! exploration of §5.3; [`explore_bus_architecture_parallel`] and
//! [`explore_partitions_parallel`] fan the same sweeps out over a scoped
//! worker pool ([`ExploreOptions`]) with **bit-for-bit identical**
//! results and throughput metrics ([`SweepStats`]); and
//! [`explore_power_policies`] / [`explore_power_policies_parallel`]
//! widen the sweep to operating points × gating policies.
//!
//! The framework is fault-aware: a [`FaultPlan`] schedules declarative
//! fault injections (dropped/duplicated/delayed events, frozen processes,
//! corrupted energy samples, bus stalls, cache bypasses) that the master
//! applies at dispatch time, watchdog budgets
//! ([`desim::WatchdogConfig`]) bound runaway or livelocked runs, and the
//! report records every injection and degradation in an
//! [`AnomalyLedger`], tagging the run with a [`RunOutcome`].
//!
//! # Examples
//!
//! Building a tiny SOC and co-estimating its power:
//!
//! ```
//! use cfsm::{Cfsm, Cfg, Stmt, Expr, Network, EventDef, Implementation, EventOccurrence};
//! use co_estimation::{CoSimulator, CoSimConfig, SocDescription};
//!
//! let mut nb = Network::builder();
//! let tick = nb.event(EventDef::pure("TICK"));
//! let mut mb = Cfsm::builder("counter");
//! let s = mb.state("s");
//! let v = mb.var("v", 0);
//! mb.transition(s, vec![tick], None,
//!     Cfg::straight_line(vec![Stmt::Assign {
//!         var: v,
//!         expr: Expr::add(Expr::Var(v), Expr::Const(1)),
//!     }]), s);
//! nb.process(mb.finish()?, Implementation::Hw);
//!
//! let soc = SocDescription {
//!     name: "counter".into(),
//!     network: nb.finish()?,
//!     stimulus: (0..4).map(|i| (i * 100, EventOccurrence::pure(tick))).collect(),
//!     priorities: vec![1],
//! };
//! let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults())?;
//! let report = sim.run();
//! assert_eq!(report.firings, 4);
//! assert!(report.total_energy_j() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod account;
mod caching;
mod config;
mod estimator;
mod explore;
mod explore_parallel;
mod faults;
mod lanes;
mod macromodel;
mod master;
mod powermgmt;
mod report;
mod sampling;
mod separate;
mod snapshot;
pub mod spec;
mod stats;
mod verify;

pub use account::{
    Anomaly, AnomalyKind, AnomalyLedger, ComponentId, ComponentTotals, EnergyAccount, Waveform,
};
pub use accel::{
    AccelLayer, AccelPipeline, CacheLayer, CostSource, FiringCtx, MacroModelLayer, SamplingLayer,
};
pub use caching::{CachedCost, CachingConfig, EnergyCache, PathStats};
pub use config::{Acceleration, CoSimConfig, EstimatorBackend, RtosPolicy, SocDescription};
pub use estimator::{
    build_estimator, BuildEstimatorError, DetailedCost, FiringInputs, HwEstimator,
    LinearModelEstimator, PowerEstimator, SwEstimator,
};
pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use report::{
    AccelEffectiveness, CacheEffectiveness, Provenance, ProvenanceBreakdown, SamplingEffectiveness,
};
pub use explore::{
    explore_bus_architecture, explore_fault_matrix, explore_partitions, explore_power_policies,
    explore_stimulus_seeds, minimum_energy, permutations, ExplorationPoint, FaultPoint,
    PartitionPoint, PowerPoint, StimulusJitter, StimulusPoint,
};
pub use explore_parallel::{
    explore_bus_architecture_parallel, explore_fault_matrix_parallel,
    explore_partitions_parallel, explore_power_policies_parallel,
    explore_stimulus_seeds_parallel, ExploreOptions, SweepReport, SweepStats, TimelineOptions,
};
pub use lanes::{
    fault_matrix_units, run_lane_sweep, run_lane_sweep_serial, toggle_statistics, LanePoint,
    LaneSweep, LaneSweepConfig, LaneUnit, ToggleStats,
};
pub use powermgmt::{
    ComponentPolicy, ComponentPowerReport, GateMode, GatingPolicy, LeakageModel, OperatingPoint,
    PowerPolicy, PowerReport, PowerSavings, PowerState,
};
pub use snapshot::snapshot_diff;
pub use macromodel::{
    characterize_hw, characterize_sw, MacroCost, ParameterFile, ParseParameterError,
};
pub use master::CoSimulator;
pub use report::{CoSimReport, ProcessReport, RunOutcome};
pub use sampling::{compact_static, KMemoryCompactor, SamplingConfig, StreamStats};
pub use separate::{
    capture_traces, estimate_separately, BehavioralTrace, FiringRecord, SeparateReport,
};
pub use stats::RunningStats;
pub use socverify::{Diagnostic, Finding, Severity, VerifyReport};
pub use verify::verify_soc;
