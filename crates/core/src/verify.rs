//! Pre-simulation verification — the `core`-side seam over the
//! [`socverify`] static checker.
//!
//! The checker itself is pure graph analysis over the CFSM network (see
//! `crates/verify`); this module binds it to the co-estimation entry
//! points so a doomed spec fails in microseconds with a precise
//! diagnosis instead of burning a watchdog budget:
//!
//! * [`verify_soc`] — check a [`SocDescription`] directly (the stimulus
//!   supplies the environment event set);
//! * [`CoSimulator::verify`](crate::CoSimulator::verify) — check an
//!   already-built master without running it;
//! * [`CoSimulator::new_verified`](crate::CoSimulator::new_verified) —
//!   build-and-check, rejecting error-severity specs with
//!   [`BuildEstimatorError::Unverifiable`](crate::BuildEstimatorError::Unverifiable);
//! * [`ExploreOptions::verify_first`](crate::ExploreOptions::verify_first)
//!   — gate a whole design-space sweep on one up-front check (the
//!   network's liveness structure is invariant under re-mapping and
//!   re-prioritisation, so one check covers every point).
//!
//! Verification is read-only: it never perturbs a simulation result,
//! and a `Degraded`-capable watchdog remains the dynamic backstop for
//! the guard-dependent deadlocks the static over-approximation cannot
//! see (DESIGN.md §13).

use crate::config::SocDescription;
use crate::estimator::BuildEstimatorError;
use socverify::{verify_network, VerifyReport};

/// Statically checks a SoC description for liveness defects.
///
/// The stimulus's event types form the *environment* set — events the
/// outside world can always produce. The returned report carries every
/// finding; [`VerifyReport::has_errors`] is the go/no-go signal
/// (warnings such as dead consumers are advisory).
pub fn verify_soc(soc: &SocDescription) -> VerifyReport {
    let environment = soc.stimulus.iter().map(|(_, occ)| occ.event).collect();
    verify_network(&soc.network, &environment)
}

/// Maps a report to `Err(Unverifiable)` when it carries error-severity
/// findings, for the `new_verified` / `verify_first` gates.
pub(crate) fn gate(report: VerifyReport) -> Result<(), BuildEstimatorError> {
    if report.has_errors() {
        Err(BuildEstimatorError::Unverifiable(report))
    } else {
        Ok(())
    }
}
