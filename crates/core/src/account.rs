//! Energy book-keeping and power waveforms.
//!
//! The simulation master "collects the cycles and energy statistics for
//! each invocation of the lower-level simulators, performs the necessary
//! book-keeping, and can display energy and power waveforms for the
//! various parts of the system" (§3). [`EnergyAccount`] is that ledger.

use std::fmt;

/// Index of an energy ledger component (one per process, plus the bus
/// and the cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

/// A time-bucketed power waveform for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    bucket_cycles: u64,
    energy_j: Vec<f64>,
}

impl Waveform {
    fn new(bucket_cycles: u64) -> Self {
        Waveform {
            bucket_cycles,
            energy_j: Vec::new(),
        }
    }

    /// Cycles per bucket.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Energy per bucket, joules.
    pub fn energy_per_bucket_j(&self) -> &[f64] {
        &self.energy_j
    }

    /// Average power per bucket at the given clock, watts.
    pub fn power_per_bucket_w(&self, freq_hz: f64) -> Vec<f64> {
        let dt = self.bucket_cycles as f64 / freq_hz;
        self.energy_j.iter().map(|e| e / dt).collect()
    }

    /// Index and power of the peak bucket (None when empty).
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.energy_j
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &e)| (i, e))
    }

    fn deposit(&mut self, start_cycle: u64, end_cycle: u64, energy_j: f64) {
        let end_cycle = end_cycle.max(start_cycle + 1);
        let first = (start_cycle / self.bucket_cycles) as usize;
        let last = ((end_cycle - 1) / self.bucket_cycles) as usize;
        if self.energy_j.len() <= last {
            self.energy_j.resize(last + 1, 0.0);
        }
        // Deposit proportionally to the overlap with each bucket.
        let span = (end_cycle - start_cycle) as f64;
        for b in first..=last {
            let b_start = b as u64 * self.bucket_cycles;
            let b_end = b_start + self.bucket_cycles;
            let overlap =
                (end_cycle.min(b_end) - start_cycle.max(b_start)) as f64;
            self.energy_j[b] += energy_j * overlap / span;
        }
    }
}

/// Per-component energy totals of one record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTotals {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Total busy cycles attributed.
    pub busy_cycles: u64,
    /// Number of cost records (≈ firings / transfers).
    pub records: u64,
}

/// The system-wide energy ledger (see module docs).
///
/// # Examples
///
/// ```
/// use co_estimation::EnergyAccount;
///
/// let mut acct = EnergyAccount::new(100); // 100-cycle waveform buckets
/// let producer = acct.add_component("producer");
/// acct.record(producer, 0, 250, 3.0e-9);
/// assert!((acct.total_energy_j() - 3.0e-9).abs() < 1e-18);
/// assert_eq!(acct.totals(producer).busy_cycles, 250);
/// assert_eq!(acct.waveform(producer).energy_per_bucket_j().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    names: Vec<String>,
    totals: Vec<ComponentTotals>,
    waveforms: Vec<Waveform>,
    bucket_cycles: u64,
}

impl EnergyAccount {
    /// A ledger with the given waveform bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be nonzero");
        EnergyAccount {
            names: Vec::new(),
            totals: Vec::new(),
            waveforms: Vec::new(),
            bucket_cycles,
        }
    }

    /// Registers a component.
    pub fn add_component(&mut self, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(self.names.len() as u32);
        self.names.push(name.into());
        self.totals.push(ComponentTotals::default());
        self.waveforms.push(Waveform::new(self.bucket_cycles));
        id
    }

    /// Records one cost spanning `[start_cycle, end_cycle)`.
    pub fn record(&mut self, c: ComponentId, start_cycle: u64, end_cycle: u64, energy_j: f64) {
        let t = &mut self.totals[c.0 as usize];
        t.energy_j += energy_j;
        t.busy_cycles += end_cycle.saturating_sub(start_cycle);
        t.records += 1;
        self.waveforms[c.0 as usize].deposit(start_cycle, end_cycle, energy_j);
    }

    /// Records static energy (leakage, wake overhead) spanning
    /// `[start_cycle, end_cycle)` — same energy and waveform
    /// accumulation as [`record`](Self::record), but the span is *not*
    /// booked as busy cycles: the component was idle or gated, not
    /// working.
    pub fn record_static(
        &mut self,
        c: ComponentId,
        start_cycle: u64,
        end_cycle: u64,
        energy_j: f64,
    ) {
        let t = &mut self.totals[c.0 as usize];
        t.energy_j += energy_j;
        t.records += 1;
        self.waveforms[c.0 as usize].deposit(start_cycle, end_cycle, energy_j);
    }

    /// A component's name.
    pub fn name(&self, c: ComponentId) -> &str {
        &self.names[c.0 as usize]
    }

    /// A component's totals.
    pub fn totals(&self, c: ComponentId) -> ComponentTotals {
        self.totals[c.0 as usize]
    }

    /// A component's waveform.
    pub fn waveform(&self, c: ComponentId) -> &Waveform {
        &self.waveforms[c.0 as usize]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.names.len()
    }

    /// Iterates `(id, name, totals)`.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &str, ComponentTotals)> {
        (0..self.names.len()).map(|i| {
            (
                ComponentId(i as u32),
                self.names[i].as_str(),
                self.totals[i],
            )
        })
    }

    /// Total energy across all components, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.totals.iter().map(|t| t.energy_j).sum()
    }

    /// Renders all component waveforms as CSV: one row per bucket, one
    /// column per component plus a `total`, energies in joules. Suitable
    /// for any plotting tool (the paper's master "can display energy and
    /// power waveforms for the various parts of the system").
    pub fn to_csv(&self) -> String {
        let mut s = String::from("bucket,start_cycle");
        for name in &self.names {
            s.push(',');
            s.push_str(name);
        }
        s.push_str(",total\n");
        let len = self
            .waveforms
            .iter()
            .map(|w| w.energy_j.len())
            .max()
            .unwrap_or(0);
        for b in 0..len {
            s.push_str(&format!("{b},{}", b as u64 * self.bucket_cycles));
            let mut total = 0.0;
            for w in &self.waveforms {
                let e = w.energy_j.get(b).copied().unwrap_or(0.0);
                total += e;
                s.push_str(&format!(",{e:.6e}"));
            }
            s.push_str(&format!(",{total:.6e}\n"));
        }
        s
    }

    /// The total-system waveform (element-wise sum).
    pub fn system_waveform(&self) -> Waveform {
        let len = self
            .waveforms
            .iter()
            .map(|w| w.energy_j.len())
            .max()
            .unwrap_or(0);
        let mut sum = vec![0.0; len];
        for w in &self.waveforms {
            for (i, e) in w.energy_j.iter().enumerate() {
                sum[i] += e;
            }
        }
        Waveform {
            bucket_cycles: self.bucket_cycles,
            energy_j: sum,
        }
    }
}

/// What went wrong (or was deliberately made to go wrong) at one instant
/// of a co-simulation run.
///
/// Anomalies cover both *causes* — injected faults — and *effects* — the
/// degradations the system model exhibits in response (an overwritten
/// single-place buffer, a shed event, a clamped energy sample, a stalled
/// arbiter, a watchdog trip). The master records them unconditionally, so
/// a report always explains its own degradations.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyKind {
    /// A fault from the configured `FaultPlan` was applied.
    FaultInjected {
        /// Human-readable description of the fault that fired.
        description: String,
    },
    /// A delivery overwrote an unconsumed value in a process's
    /// single-place event buffer (the POLIS loss semantics).
    BufferOverwrite {
        /// The process whose buffer lost a value.
        process: String,
        /// The event whose delivery caused the overwrite.
        event: String,
    },
    /// An event occurrence was dropped before delivery.
    EventShed {
        /// The shed event's name.
        event: String,
    },
    /// A corrupted energy sample was clamped to zero to keep the ledger
    /// finite and non-negative.
    EnergyClamped {
        /// The process whose sample was clamped.
        process: String,
        /// The raw (rejected) sample value, joules.
        raw_j: f64,
    },
    /// An instruction-fetch batch bypassed the i-cache (every fetch
    /// priced as a miss, no cache-state update).
    CacheBypassed {
        /// Number of fetch addresses in the bypassed batch.
        fetches: u64,
    },
    /// The bus arbiter was stalled: no grants until the given cycle.
    BusStalled {
        /// First cycle at which grants resume.
        until_cycle: u64,
    },
    /// A watchdog budget tripped and the run terminated with a partial
    /// (degraded) report.
    WatchdogTrip {
        /// The exhausted budget, rendered.
        reason: String,
    },
    /// An internal inconsistency was recovered from instead of panicking.
    RecoveredError {
        /// What was inconsistent.
        context: String,
    },
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyKind::FaultInjected { description } => {
                write!(f, "fault injected: {description}")
            }
            AnomalyKind::BufferOverwrite { process, event } => {
                write!(f, "buffer overwrite in `{process}` by event `{event}`")
            }
            AnomalyKind::EventShed { event } => write!(f, "event `{event}` shed"),
            AnomalyKind::EnergyClamped { process, raw_j } => {
                write!(f, "energy sample of `{process}` clamped (raw {raw_j:e} J)")
            }
            AnomalyKind::CacheBypassed { fetches } => {
                write!(f, "i-cache bypassed for {fetches} fetches")
            }
            AnomalyKind::BusStalled { until_cycle } => {
                write!(f, "bus arbiter stalled until cycle {until_cycle}")
            }
            AnomalyKind::WatchdogTrip { reason } => write!(f, "watchdog trip: {reason}"),
            AnomalyKind::RecoveredError { context } => {
                write!(f, "recovered error: {context}")
            }
        }
    }
}

/// One recorded anomaly: what happened, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Simulated time of the anomaly, master clock cycles.
    pub at_cycle: u64,
    /// What happened.
    pub kind: AnomalyKind,
}

/// The run-report ledger of injected faults and observed degradations,
/// in simulation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnomalyLedger {
    entries: Vec<Anomaly>,
}

impl AnomalyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an anomaly observed at `at_cycle`.
    pub fn record(&mut self, at_cycle: u64, kind: AnomalyKind) {
        self.entries.push(Anomaly { at_cycle, kind });
    }

    /// All entries, in simulation order.
    pub fn entries(&self) -> &[Anomaly] {
        &self.entries
    }

    /// Iterates the entries.
    pub fn iter(&self) -> impl Iterator<Item = &Anomaly> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing anomalous was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of injected faults ([`AnomalyKind::FaultInjected`] entries).
    pub fn faults_injected(&self) -> usize {
        self.entries
            .iter()
            .filter(|a| matches!(a.kind, AnomalyKind::FaultInjected { .. }))
            .count()
    }
}

impl fmt::Display for AnomalyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "no anomalies");
        }
        for (i, a) in self.entries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "cycle {:>10}: {}", a.at_cycle, a.kind)?;
        }
        Ok(())
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>14} {:>12} {:>8}", "component", "energy (J)", "cycles", "records")?;
        for (_, name, t) in self.iter() {
            writeln!(
                f,
                "{:<20} {:>14.4e} {:>12} {:>8}",
                name, t.energy_j, t.busy_cycles, t.records
            )?;
        }
        write!(f, "{:<20} {:>14.4e}", "TOTAL", self.total_energy_j())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("hw");
        a.record(c, 0, 10, 1e-9);
        a.record(c, 10, 30, 2e-9);
        let t = a.totals(c);
        assert!((t.energy_j - 3e-9).abs() < 1e-18);
        assert_eq!(t.busy_cycles, 30);
        assert_eq!(t.records, 2);
    }

    #[test]
    fn waveform_spreads_energy_over_buckets() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        // 20 cycles spanning exactly 2 buckets → half each.
        a.record(c, 0, 20, 4e-9);
        let w = a.waveform(c);
        assert_eq!(w.energy_per_bucket_j().len(), 2);
        assert!((w.energy_per_bucket_j()[0] - 2e-9).abs() < 1e-18);
        assert!((w.energy_per_bucket_j()[1] - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn waveform_partial_overlap() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        // [5, 15): half in bucket 0, half in bucket 1.
        a.record(c, 5, 15, 2e-9);
        let w = a.waveform(c);
        assert!((w.energy_per_bucket_j()[0] - 1e-9).abs() < 1e-18);
        assert!((w.energy_per_bucket_j()[1] - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn peak_detection() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        a.record(c, 0, 10, 1e-9);
        a.record(c, 20, 30, 9e-9);
        a.record(c, 40, 50, 3e-9);
        let (idx, e) = a.waveform(c).peak().expect("nonempty");
        assert_eq!(idx, 2);
        assert!((e - 9e-9).abs() < 1e-18);
    }

    #[test]
    fn system_waveform_sums_components() {
        let mut a = EnergyAccount::new(10);
        let x = a.add_component("x");
        let y = a.add_component("y");
        a.record(x, 0, 10, 1e-9);
        a.record(y, 0, 10, 2e-9);
        let sys = a.system_waveform();
        assert!((sys.energy_per_bucket_j()[0] - 3e-9).abs() < 1e-18);
        assert!((a.total_energy_j() - 3e-9).abs() < 1e-18);
    }

    #[test]
    fn power_conversion() {
        let mut a = EnergyAccount::new(100);
        let c = a.add_component("x");
        a.record(c, 0, 100, 1e-9);
        // 1 nJ over 100 cycles at 1 MHz = 100 µs → 10 µW.
        let p = a.waveform(c).power_per_bucket_w(1e6);
        assert!((p[0] - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_record_counts_one_cycle_bucket() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        a.record(c, 25, 25, 1e-9); // instantaneous
        let w = a.waveform(c);
        assert!((w.energy_per_bucket_j()[2] - 1e-9).abs() < 1e-18);
        assert_eq!(a.totals(c).busy_cycles, 0);
    }

    #[test]
    fn csv_export_has_header_rows_and_totals() {
        let mut a = EnergyAccount::new(10);
        let x = a.add_component("hw");
        let y = a.add_component("sw");
        a.record(x, 0, 10, 1e-9);
        a.record(y, 10, 20, 2e-9);
        let csv = a.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("bucket,start_cycle,hw,sw,total"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,0,"));
        assert!(rows[1].starts_with("1,10,"));
        // Total column equals the ledger total.
        let total: f64 = rows
            .iter()
            .map(|r| r.rsplit(',').next().expect("total").parse::<f64>().expect("num"))
            .sum();
        assert!((total - a.total_energy_j()).abs() < 1e-15);
    }

    #[test]
    fn anomaly_ledger_records_in_order() {
        let mut ledger = AnomalyLedger::new();
        assert!(ledger.is_empty());
        ledger.record(10, AnomalyKind::FaultInjected { description: "froze `x`".into() });
        ledger.record(25, AnomalyKind::BufferOverwrite { process: "q".into(), event: "E".into() });
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.faults_injected(), 1);
        assert_eq!(ledger.entries()[1].at_cycle, 25);
        let text = ledger.to_string();
        assert!(text.contains("froze `x`") && text.contains("overwrite"), "{text}");
    }

    #[test]
    fn peak_is_total_order_on_floats() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        a.record(c, 0, 10, f64::NAN); // must not panic
        a.record(c, 20, 30, 1e-9);
        assert!(a.waveform(c).peak().is_some());
    }

    #[test]
    fn display_renders_table() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("producer");
        a.record(c, 0, 5, 1e-9);
        let s = a.to_string();
        assert!(s.contains("producer"));
        assert!(s.contains("TOTAL"));
    }
}
