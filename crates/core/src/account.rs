//! Energy book-keeping and power waveforms.
//!
//! The simulation master "collects the cycles and energy statistics for
//! each invocation of the lower-level simulators, performs the necessary
//! book-keeping, and can display energy and power waveforms for the
//! various parts of the system" (§3). [`EnergyAccount`] is that ledger.

use std::fmt;

/// Index of an energy ledger component (one per process, plus the bus
/// and the cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

/// A time-bucketed power waveform for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    bucket_cycles: u64,
    energy_j: Vec<f64>,
}

impl Waveform {
    fn new(bucket_cycles: u64) -> Self {
        Waveform {
            bucket_cycles,
            energy_j: Vec::new(),
        }
    }

    /// Cycles per bucket.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Energy per bucket, joules.
    pub fn energy_per_bucket_j(&self) -> &[f64] {
        &self.energy_j
    }

    /// Average power per bucket at the given clock, watts.
    pub fn power_per_bucket_w(&self, freq_hz: f64) -> Vec<f64> {
        let dt = self.bucket_cycles as f64 / freq_hz;
        self.energy_j.iter().map(|e| e / dt).collect()
    }

    /// Index and power of the peak bucket (None when empty).
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.energy_j
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN energies"))
            .map(|(i, &e)| (i, e))
    }

    fn deposit(&mut self, start_cycle: u64, end_cycle: u64, energy_j: f64) {
        let end_cycle = end_cycle.max(start_cycle + 1);
        let first = (start_cycle / self.bucket_cycles) as usize;
        let last = ((end_cycle - 1) / self.bucket_cycles) as usize;
        if self.energy_j.len() <= last {
            self.energy_j.resize(last + 1, 0.0);
        }
        // Deposit proportionally to the overlap with each bucket.
        let span = (end_cycle - start_cycle) as f64;
        for b in first..=last {
            let b_start = b as u64 * self.bucket_cycles;
            let b_end = b_start + self.bucket_cycles;
            let overlap =
                (end_cycle.min(b_end) - start_cycle.max(b_start)) as f64;
            self.energy_j[b] += energy_j * overlap / span;
        }
    }
}

/// Per-component energy totals of one record.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTotals {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Total busy cycles attributed.
    pub busy_cycles: u64,
    /// Number of cost records (≈ firings / transfers).
    pub records: u64,
}

/// The system-wide energy ledger (see module docs).
///
/// # Examples
///
/// ```
/// use co_estimation::EnergyAccount;
///
/// let mut acct = EnergyAccount::new(100); // 100-cycle waveform buckets
/// let producer = acct.add_component("producer");
/// acct.record(producer, 0, 250, 3.0e-9);
/// assert!((acct.total_energy_j() - 3.0e-9).abs() < 1e-18);
/// assert_eq!(acct.totals(producer).busy_cycles, 250);
/// assert_eq!(acct.waveform(producer).energy_per_bucket_j().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyAccount {
    names: Vec<String>,
    totals: Vec<ComponentTotals>,
    waveforms: Vec<Waveform>,
    bucket_cycles: u64,
}

impl EnergyAccount {
    /// A ledger with the given waveform bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be nonzero");
        EnergyAccount {
            names: Vec::new(),
            totals: Vec::new(),
            waveforms: Vec::new(),
            bucket_cycles,
        }
    }

    /// Registers a component.
    pub fn add_component(&mut self, name: impl Into<String>) -> ComponentId {
        let id = ComponentId(self.names.len() as u32);
        self.names.push(name.into());
        self.totals.push(ComponentTotals::default());
        self.waveforms.push(Waveform::new(self.bucket_cycles));
        id
    }

    /// Records one cost spanning `[start_cycle, end_cycle)`.
    pub fn record(&mut self, c: ComponentId, start_cycle: u64, end_cycle: u64, energy_j: f64) {
        let t = &mut self.totals[c.0 as usize];
        t.energy_j += energy_j;
        t.busy_cycles += end_cycle.saturating_sub(start_cycle);
        t.records += 1;
        self.waveforms[c.0 as usize].deposit(start_cycle, end_cycle, energy_j);
    }

    /// A component's name.
    pub fn name(&self, c: ComponentId) -> &str {
        &self.names[c.0 as usize]
    }

    /// A component's totals.
    pub fn totals(&self, c: ComponentId) -> ComponentTotals {
        self.totals[c.0 as usize]
    }

    /// A component's waveform.
    pub fn waveform(&self, c: ComponentId) -> &Waveform {
        &self.waveforms[c.0 as usize]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.names.len()
    }

    /// Iterates `(id, name, totals)`.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &str, ComponentTotals)> {
        (0..self.names.len()).map(|i| {
            (
                ComponentId(i as u32),
                self.names[i].as_str(),
                self.totals[i],
            )
        })
    }

    /// Total energy across all components, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.totals.iter().map(|t| t.energy_j).sum()
    }

    /// Renders all component waveforms as CSV: one row per bucket, one
    /// column per component plus a `total`, energies in joules. Suitable
    /// for any plotting tool (the paper's master "can display energy and
    /// power waveforms for the various parts of the system").
    pub fn to_csv(&self) -> String {
        let mut s = String::from("bucket,start_cycle");
        for name in &self.names {
            s.push(',');
            s.push_str(name);
        }
        s.push_str(",total\n");
        let len = self
            .waveforms
            .iter()
            .map(|w| w.energy_j.len())
            .max()
            .unwrap_or(0);
        for b in 0..len {
            s.push_str(&format!("{b},{}", b as u64 * self.bucket_cycles));
            let mut total = 0.0;
            for w in &self.waveforms {
                let e = w.energy_j.get(b).copied().unwrap_or(0.0);
                total += e;
                s.push_str(&format!(",{e:.6e}"));
            }
            s.push_str(&format!(",{total:.6e}\n"));
        }
        s
    }

    /// The total-system waveform (element-wise sum).
    pub fn system_waveform(&self) -> Waveform {
        let len = self
            .waveforms
            .iter()
            .map(|w| w.energy_j.len())
            .max()
            .unwrap_or(0);
        let mut sum = vec![0.0; len];
        for w in &self.waveforms {
            for (i, e) in w.energy_j.iter().enumerate() {
                sum[i] += e;
            }
        }
        Waveform {
            bucket_cycles: self.bucket_cycles,
            energy_j: sum,
        }
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>14} {:>12} {:>8}", "component", "energy (J)", "cycles", "records")?;
        for (_, name, t) in self.iter() {
            writeln!(
                f,
                "{:<20} {:>14.4e} {:>12} {:>8}",
                name, t.energy_j, t.busy_cycles, t.records
            )?;
        }
        write!(f, "{:<20} {:>14.4e}", "TOTAL", self.total_energy_j())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("hw");
        a.record(c, 0, 10, 1e-9);
        a.record(c, 10, 30, 2e-9);
        let t = a.totals(c);
        assert!((t.energy_j - 3e-9).abs() < 1e-18);
        assert_eq!(t.busy_cycles, 30);
        assert_eq!(t.records, 2);
    }

    #[test]
    fn waveform_spreads_energy_over_buckets() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        // 20 cycles spanning exactly 2 buckets → half each.
        a.record(c, 0, 20, 4e-9);
        let w = a.waveform(c);
        assert_eq!(w.energy_per_bucket_j().len(), 2);
        assert!((w.energy_per_bucket_j()[0] - 2e-9).abs() < 1e-18);
        assert!((w.energy_per_bucket_j()[1] - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn waveform_partial_overlap() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        // [5, 15): half in bucket 0, half in bucket 1.
        a.record(c, 5, 15, 2e-9);
        let w = a.waveform(c);
        assert!((w.energy_per_bucket_j()[0] - 1e-9).abs() < 1e-18);
        assert!((w.energy_per_bucket_j()[1] - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn peak_detection() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        a.record(c, 0, 10, 1e-9);
        a.record(c, 20, 30, 9e-9);
        a.record(c, 40, 50, 3e-9);
        let (idx, e) = a.waveform(c).peak().expect("nonempty");
        assert_eq!(idx, 2);
        assert!((e - 9e-9).abs() < 1e-18);
    }

    #[test]
    fn system_waveform_sums_components() {
        let mut a = EnergyAccount::new(10);
        let x = a.add_component("x");
        let y = a.add_component("y");
        a.record(x, 0, 10, 1e-9);
        a.record(y, 0, 10, 2e-9);
        let sys = a.system_waveform();
        assert!((sys.energy_per_bucket_j()[0] - 3e-9).abs() < 1e-18);
        assert!((a.total_energy_j() - 3e-9).abs() < 1e-18);
    }

    #[test]
    fn power_conversion() {
        let mut a = EnergyAccount::new(100);
        let c = a.add_component("x");
        a.record(c, 0, 100, 1e-9);
        // 1 nJ over 100 cycles at 1 MHz = 100 µs → 10 µW.
        let p = a.waveform(c).power_per_bucket_w(1e6);
        assert!((p[0] - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_record_counts_one_cycle_bucket() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("x");
        a.record(c, 25, 25, 1e-9); // instantaneous
        let w = a.waveform(c);
        assert!((w.energy_per_bucket_j()[2] - 1e-9).abs() < 1e-18);
        assert_eq!(a.totals(c).busy_cycles, 0);
    }

    #[test]
    fn csv_export_has_header_rows_and_totals() {
        let mut a = EnergyAccount::new(10);
        let x = a.add_component("hw");
        let y = a.add_component("sw");
        a.record(x, 0, 10, 1e-9);
        a.record(y, 10, 20, 2e-9);
        let csv = a.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("bucket,start_cycle,hw,sw,total"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0,0,"));
        assert!(rows[1].starts_with("1,10,"));
        // Total column equals the ledger total.
        let total: f64 = rows
            .iter()
            .map(|r| r.rsplit(',').next().expect("total").parse::<f64>().expect("num"))
            .sum();
        assert!((total - a.total_energy_j()).abs() < 1e-15);
    }

    #[test]
    fn display_renders_table() {
        let mut a = EnergyAccount::new(10);
        let c = a.add_component("producer");
        a.record(c, 0, 5, 1e-9);
        let s = a.to_string();
        assert!(s.contains("producer"));
        assert!(s.contains("TOTAL"));
    }
}
