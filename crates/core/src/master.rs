//! The co-simulation master — the paper's contribution (§3).
//!
//! [`CoSimulator`] simulates the discrete-event behavioral model of the
//! entire system with a global view of time, and synchronizes the
//! per-component power estimators with it: whenever a CFSM transition
//! fires (the unit of synchronization), the master captures the
//! component's pre-firing state, dispatches the transition to that
//! component's estimator — gate-level simulator, enhanced ISS, energy
//! cache, or macro-model, depending on the mapping and the active
//! acceleration — and folds the returned `(cycles, energy)` back into
//! the global schedule: software transitions are serialized on the
//! embedded CPU by priority (the RTOS model), shared-memory traffic is
//! serialized and priced by the bus model, instruction fetches drive the
//! cache simulator (whose reference stream comes from the *behavioral*
//! model, as in the paper), and emissions are delivered when the firing
//! completes — making downstream execution traces timing-sensitive,
//! which is exactly why co-estimation is needed (§2).

use crate::account::{AnomalyKind, AnomalyLedger, ComponentId, EnergyAccount};
use crate::caching::EnergyCache;
use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::{BuildEstimatorError, ComponentEstimator, DetailedCost};
use crate::faults::{self, ResolvedFault, ResolvedFaultKind};
use crate::macromodel::{characterize_hw, characterize_sw, ParameterFile};
use busmodel::{Bus, MasterId};
use cachesim::Cache;
use cfsm::{
    EventId, EventOccurrence, Implementation, NetworkState, PathId, ProcId,
};
use desim::{EventQueue, SimTime, Watchdog};
use iss::PowerModel;
use std::collections::HashMap;

/// Master events.
#[derive(Debug, Clone)]
enum Ev {
    /// Environment stimulus or inter-process emission delivery.
    Deliver(EventOccurrence),
    /// A hardware process finished its firing.
    HwDone(ProcId),
    /// The software task occupying the CPU finished.
    SwDone(ProcId),
    /// The bus arbiter may be able to grant a DMA block.
    BusKick,
    /// An injected freeze on the process expires; re-examine readiness.
    Unfreeze(ProcId),
}

/// What delivery action a fault interception selected.
enum Delivery {
    Pass,
    Drop,
    Duplicate,
    Delay(u64),
}

/// A firing waiting for its shared-memory phase to finish on the bus.
#[derive(Debug, Clone)]
struct FiringWait {
    proc: ProcId,
    transition: cfsm::TransitionId,
    exec_end: u64,
    detailed: bool,
    is_sw: bool,
    emissions: Vec<(EventId, Option<i64>)>,
}

/// How a firing's cost was obtained (speedup accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// Detailed simulator (ISS / gate-level).
    Detailed,
    /// Served by the energy cache.
    Cache,
    /// Computed by the macro-model.
    MacroModel,
    /// Reused under firing-level sampling.
    Sampled,
}

/// Per-process results of a co-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessReport {
    /// Process name.
    pub name: String,
    /// HW or SW mapping.
    pub mapping: Implementation,
    /// Energy attributed to the component's own execution, joules.
    pub energy_j: f64,
    /// Cycles the component was busy.
    pub busy_cycles: u64,
    /// Number of transition firings.
    pub firings: u64,
}

/// How a co-estimation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: the system quiesced normally.
    Completed,
    /// A watchdog budget (or the firing bound) tripped; the report covers
    /// the simulated time up to the trip and is *partial* but consistent.
    Degraded {
        /// Why the run was cut short.
        reason: String,
    },
}

impl RunOutcome {
    /// `true` when the run was cut short.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunOutcome::Degraded { .. })
    }
}

/// The complete result of one co-estimation run.
#[derive(Debug, Clone)]
pub struct CoSimReport {
    /// System name.
    pub system: String,
    /// Per-process results, indexed by [`ProcId`].
    pub processes: Vec<ProcessReport>,
    /// Bus (integration architecture) energy, joules.
    pub bus_energy_j: f64,
    /// Bus statistics.
    pub bus: busmodel::BusStats,
    /// Cache energy, joules.
    pub cache_energy_j: f64,
    /// Cache statistics (zeros when cache modeling is disabled).
    pub cache: cachesim::CacheStats,
    /// Simulated end time, master cycles.
    pub total_cycles: u64,
    /// Total transition firings.
    pub firings: u64,
    /// Calls answered by the detailed simulators.
    pub detailed_calls: u64,
    /// Calls served by an acceleration technique instead.
    pub accelerated_calls: u64,
    /// The full energy ledger (waveforms, per-component breakdown).
    pub account: EnergyAccount,
    /// Whether the run quiesced or was cut short by a budget.
    pub outcome: RunOutcome,
    /// Injected faults and observed degradations, in simulation order.
    pub anomalies: AnomalyLedger,
}

impl CoSimReport {
    /// Total system energy (components + bus + cache), joules.
    pub fn total_energy_j(&self) -> f64 {
        self.processes.iter().map(|p| p.energy_j).sum::<f64>()
            + self.bus_energy_j
            + self.cache_energy_j
    }

    /// Energy of the named process, joules.
    ///
    /// # Panics
    ///
    /// Panics if no process has that name.
    pub fn process_energy_j(&self, name: &str) -> f64 {
        self.processes
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no process named `{name}`"))
            .energy_j
    }

    /// Average system power at the configured clock, watts.
    pub fn average_power_w(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_energy_j() / (self.total_cycles as f64 / clock_hz)
        }
    }
}

/// The co-simulation master (see module docs).
///
/// # Examples
///
/// See the `systems` crate for complete SOC descriptions; the general
/// shape is:
///
/// ```no_run
/// use co_estimation::{CoSimulator, CoSimConfig};
/// # fn soc() -> co_estimation::SocDescription { unimplemented!() }
///
/// let mut sim = CoSimulator::new(soc(), CoSimConfig::date2000_defaults())?;
/// let report = sim.run();
/// println!("total energy: {:.3e} J", report.total_energy_j());
/// # Ok::<(), co_estimation::BuildEstimatorError>(())
/// ```
#[derive(Debug)]
pub struct CoSimulator {
    soc: SocDescription,
    config: CoSimConfig,
    state: NetworkState,
    estimators: Vec<ComponentEstimator>,
    queue: EventQueue<Ev>,
    bus: Bus,
    bus_master: Vec<MasterId>,
    icache: Option<Cache>,
    account: EnergyAccount,
    comp_of_proc: Vec<ComponentId>,
    bus_comp: ComponentId,
    cache_comp: ComponentId,
    cache: Option<EnergyCache>,
    sw_params: Option<ParameterFile>,
    hw_params: Option<ParameterFile>,
    sample_state: HashMap<(ProcId, PathId), (u32, DetailedCost)>,
    /// Firings whose shared-memory phase is still being granted block by
    /// block on the bus, keyed by bus request id.
    bus_pending: HashMap<busmodel::ReqId, FiringWait>,
    busy: Vec<bool>,
    cpu_free_at: u64,
    now: u64,
    end_time: u64,
    firings: u64,
    firings_per_proc: Vec<u64>,
    detailed_calls: u64,
    accelerated_calls: u64,
    /// Resolved one-shot faults from the configured plan (empty = no
    /// fault layer; the hot paths gate on this).
    faults: Vec<ResolvedFault>,
    /// Per-process injected-freeze horizon; a process may not fire while
    /// `now < frozen_until[p]`. All zeros without faults.
    frozen_until: Vec<u64>,
    /// Injected arbiter stall: no bus grants while `now < bus_stall_until`.
    bus_stall_until: u64,
    /// Remaining fetch batches that bypass the i-cache.
    force_miss_batches: u64,
    /// Per-process buffer-overwrite counts already recorded as anomalies.
    lost_seen: Vec<u64>,
    anomalies: AnomalyLedger,
    watchdog: Watchdog,
    /// Set when a budget trips; `step` refuses further work once set.
    degraded: Option<String>,
}

impl CoSimulator {
    /// Builds the master: synthesizes/compiles every component, wires the
    /// bus, cache and ledger, and queues the stimulus.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildEstimatorError`] if any component fails to build,
    /// if the priority vector does not have one entry per process, or if
    /// the fault plan names an unknown process/event or has degenerate
    /// parameters.
    pub fn new(soc: SocDescription, config: CoSimConfig) -> Result<Self, BuildEstimatorError> {
        if soc.priorities.len() != soc.network.process_count() {
            return Err(BuildEstimatorError::PriorityCount {
                expected: soc.network.process_count(),
                got: soc.priorities.len(),
            });
        }
        let faults = faults::resolve(&config.faults, &soc.network)?;
        let n = soc.network.process_count();
        let mut estimators = Vec::with_capacity(n);
        for p in soc.network.process_ids() {
            estimators.push(ComponentEstimator::build(&soc.network, p, &config)?);
        }
        let mut bus = Bus::new(config.bus.clone());
        let mut bus_master = Vec::with_capacity(n);
        for p in soc.network.process_ids() {
            bus_master.push(bus.register_master(
                soc.network.cfsm(p).name(),
                soc.priorities[p.0 as usize],
            ));
        }
        let mut account = EnergyAccount::new(config.waveform_bucket_cycles);
        let comp_of_proc: Vec<ComponentId> = soc
            .network
            .process_ids()
            .map(|p| account.add_component(soc.network.cfsm(p).name()))
            .collect();
        let bus_comp = account.add_component("bus");
        let cache_comp = account.add_component("icache");
        let mut queue = EventQueue::new();
        for &(t, occ) in &soc.stimulus {
            queue.push(SimTime::from_cycles(t), Ev::Deliver(occ));
        }
        let cache = config.accel.caching.clone().map(EnergyCache::new);
        let (sw_params, hw_params) = if config.accel.macromodel {
            (
                Some(characterize_sw(&PowerModel::of_kind(config.sw_power))),
                Some(characterize_hw(&config.synth, &config.hw_power)),
            )
        } else {
            (None, None)
        };
        let state = soc.network.spawn();
        let icache = config.icache.clone().map(Cache::new);
        Ok(CoSimulator {
            state,
            estimators,
            queue,
            bus,
            bus_master,
            icache,
            account,
            comp_of_proc,
            bus_comp,
            cache_comp,
            cache,
            sw_params,
            hw_params,
            sample_state: HashMap::new(),
            bus_pending: HashMap::new(),
            busy: vec![false; n],
            cpu_free_at: 0,
            now: 0,
            end_time: 0,
            firings: 0,
            firings_per_proc: vec![0; n],
            detailed_calls: 0,
            accelerated_calls: 0,
            faults,
            frozen_until: vec![0; n],
            bus_stall_until: 0,
            force_miss_batches: 0,
            lost_seen: vec![0; n],
            anomalies: AnomalyLedger::new(),
            watchdog: Watchdog::new(config.watchdog.clone()),
            degraded: None,
            soc,
            config,
        })
    }

    /// Runs to quiescence — or until a watchdog budget or the firing
    /// bound trips, in which case the report's
    /// [`outcome`](CoSimReport::outcome) is [`RunOutcome::Degraded`] and
    /// its figures cover the simulated time up to the trip.
    pub fn run(&mut self) -> CoSimReport {
        while self.step() {}
        self.report()
    }

    /// Processes one master event; returns `false` when the queue is
    /// exhausted or a budget (watchdog or firing bound) trips.
    pub fn step(&mut self) -> bool {
        if self.degraded.is_some() {
            return false;
        }
        if self.firings >= self.config.max_firings {
            // The firing bound is one instance of the watchdog budget
            // mechanism: report Degraded only when work actually remains.
            if !self.queue.is_empty() {
                self.degrade(format!(
                    "firing budget of {} exhausted with events pending",
                    self.config.max_firings
                ));
            }
            return false;
        }
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = t.cycles();
        if let Some(trip) = self.watchdog.observe(t) {
            // The popped event is intentionally not handled: budgets cut
            // the run *before* the offending dispatch.
            self.degrade(trip.to_string());
            return false;
        }
        if !self.faults.is_empty() {
            self.apply_timed_faults();
        }
        match ev {
            Ev::Deliver(occ) => self.deliver(occ),
            Ev::HwDone(p) | Ev::SwDone(p) => self.busy[p.0 as usize] = false,
            Ev::BusKick => self.bus_kick(t.cycles()),
            Ev::Unfreeze(p) => {
                // The freeze horizon has passed; dispatch_ready below
                // re-examines the process's readiness.
                debug_assert!(self.frozen_until[p.0 as usize] <= self.now);
            }
        }
        self.dispatch_ready();
        true
    }

    /// Records a watchdog trip and marks the run degraded.
    fn degrade(&mut self, reason: String) {
        self.anomalies
            .record(self.now, AnomalyKind::WatchdogTrip { reason: reason.clone() });
        self.degraded = Some(reason);
    }

    /// Applies armed time-triggered faults (freeze, bus stall, cache
    /// bypass). Delivery- and estimate-triggered kinds are handled at
    /// their interception points.
    fn apply_timed_faults(&mut self) {
        let now = self.now;
        for i in 0..self.faults.len() {
            if !self.faults[i].ready(now) {
                continue;
            }
            match self.faults[i].kind {
                ResolvedFaultKind::FreezeProcess(p, cycles) => {
                    let until = now.saturating_add(cycles);
                    self.frozen_until[p.0 as usize] =
                        self.frozen_until[p.0 as usize].max(until);
                    self.queue.push(SimTime::from_cycles(until), Ev::Unfreeze(p));
                }
                ResolvedFaultKind::StallBus(cycles) => {
                    let until = now.saturating_add(cycles);
                    self.bus_stall_until = self.bus_stall_until.max(until);
                    // Grants resume here; swallowed kicks are re-issued.
                    self.queue.push(SimTime::from_cycles(until), Ev::BusKick);
                    self.anomalies
                        .record(now, AnomalyKind::BusStalled { until_cycle: until });
                }
                ResolvedFaultKind::ForceCacheMisses(batches) => {
                    self.force_miss_batches = self.force_miss_batches.saturating_add(batches);
                }
                _ => continue,
            }
            self.faults[i].armed = false;
            let description = self.faults[i].describe.clone();
            self.anomalies.record(now, AnomalyKind::FaultInjected { description });
        }
    }

    /// Delivers one event occurrence, routing it through any armed
    /// delivery fault first.
    fn deliver(&mut self, occ: EventOccurrence) {
        if !self.faults.is_empty() {
            match self.intercept_delivery(&occ) {
                Delivery::Pass => {}
                Delivery::Drop => return,
                Delivery::Duplicate => {
                    self.broadcast_tracked(occ);
                    self.broadcast_tracked(occ);
                    return;
                }
                Delivery::Delay(cycles) => {
                    self.queue.push(
                        SimTime::from_cycles(self.now.saturating_add(cycles)),
                        Ev::Deliver(occ),
                    );
                    return;
                }
            }
        }
        self.broadcast_tracked(occ);
    }

    /// Broadcasts `occ` and records any single-place-buffer overwrites it
    /// caused (the POLIS event-loss semantics) in the anomaly ledger.
    fn broadcast_tracked(&mut self, occ: EventOccurrence) {
        self.soc.network.broadcast(&mut self.state, occ);
        for p in self.soc.network.process_ids() {
            let lost = self.state.runtime(p).buffer().lost_count();
            if lost > self.lost_seen[p.0 as usize] {
                self.lost_seen[p.0 as usize] = lost;
                self.anomalies.record(
                    self.now,
                    AnomalyKind::BufferOverwrite {
                        process: self.soc.network.cfsm(p).name().to_string(),
                        event: self.soc.network.events()[occ.event.0 as usize].name.clone(),
                    },
                );
            }
        }
    }

    /// Checks armed delivery faults against `occ`; the first match is
    /// consumed and its action returned.
    fn intercept_delivery(&mut self, occ: &EventOccurrence) -> Delivery {
        let now = self.now;
        let hit = self.faults.iter().position(|f| {
            f.ready(now)
                && matches!(f.kind,
                    ResolvedFaultKind::DropEvent(e)
                    | ResolvedFaultKind::DuplicateEvent(e)
                    | ResolvedFaultKind::DelayEvent(e, _) if e == occ.event)
        });
        let Some(i) = hit else {
            return Delivery::Pass;
        };
        self.faults[i].armed = false;
        let description = self.faults[i].describe.clone();
        self.anomalies.record(now, AnomalyKind::FaultInjected { description });
        match self.faults[i].kind {
            ResolvedFaultKind::DropEvent(e) => {
                let event = self.soc.network.events()[e.0 as usize].name.clone();
                self.anomalies.record(now, AnomalyKind::EventShed { event });
                Delivery::Drop
            }
            ResolvedFaultKind::DuplicateEvent(_) => Delivery::Duplicate,
            ResolvedFaultKind::DelayEvent(_, cycles) => Delivery::Delay(cycles),
            _ => Delivery::Pass,
        }
    }

    /// Tries to grant one DMA block at time `t`; a successful grant
    /// schedules the next kick at its end, and a finished request
    /// completes the owning firing.
    fn bus_kick(&mut self, t: u64) {
        if t < self.bus_stall_until {
            // Injected arbiter stall: grants resume at the stall horizon,
            // where a kick is already queued.
            return;
        }
        match self.bus.grant_block(t) {
            Some(g) => {
                self.account.record(self.bus_comp, g.start, g.end, g.energy_j);
                self.queue.push(SimTime::from_cycles(g.end), Ev::BusKick);
                if g.request_done {
                    let Some(wait) = self.bus_pending.remove(&g.request) else {
                        // Every bus request should map to a pending firing;
                        // if not, record the inconsistency and keep going
                        // instead of poisoning the whole run.
                        self.anomalies.record(
                            t,
                            AnomalyKind::RecoveredError {
                                context: format!(
                                    "bus request {:?} completed with no pending firing",
                                    g.request
                                ),
                            },
                        );
                        return;
                    };
                    let end = g.end.max(wait.exec_end);
                    self.complete_firing(wait, end);
                }
            }
            None => {
                // Busy bus: the grant that made it busy scheduled a kick
                // at its end. Idle bus with only future-paced blocks:
                // kick again when the earliest becomes ready.
                if self.bus.busy_until() <= t {
                    if let Some(r) = self.bus.next_ready_time() {
                        if r > t {
                            self.queue.push(SimTime::from_cycles(r), Ev::BusKick);
                        }
                    }
                }
            }
        }
    }

    /// Finishes a firing at time `end`: charges the bus-wait idling,
    /// delivers emissions, and releases the component (and CPU).
    fn complete_firing(&mut self, wait: FiringWait, end: u64) {
        let p = wait.proc;
        let idle = end.saturating_sub(wait.exec_end);
        let idle_energy =
            self.estimators[p.0 as usize].wait_energy(wait.transition, idle, wait.detailed);
        if idle > 0 {
            self.account
                .record(self.comp_of_proc[p.0 as usize], wait.exec_end, end, idle_energy);
        }
        for (e, v) in wait.emissions {
            let occ = match v {
                Some(v) => EventOccurrence::valued(e, v),
                None => EventOccurrence::pure(e),
            };
            self.queue.push(SimTime::from_cycles(end), Ev::Deliver(occ));
        }
        let done = if wait.is_sw {
            self.cpu_free_at = end;
            Ev::SwDone(p)
        } else {
            Ev::HwDone(p)
        };
        self.queue.push(SimTime::from_cycles(end), done);
        self.end_time = self.end_time.max(end);
    }

    /// Current simulation time, cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The energy cache (for histogram extraction — Fig. 4b).
    pub fn energy_cache(&self) -> Option<&EnergyCache> {
        self.cache.as_ref()
    }

    /// The characterized software parameter file, when macro-modeling is
    /// active.
    pub fn sw_parameter_file(&self) -> Option<&ParameterFile> {
        self.sw_params.as_ref()
    }

    /// Schedules every process that can run at the current time.
    fn dispatch_ready(&mut self) {
        let t = self.now;
        // Hardware processes run concurrently; order simultaneous starts
        // by bus priority (descending), then process id.
        let mut hw_ready: Vec<ProcId> = self
            .soc
            .network
            .process_ids()
            .filter(|&p| {
                self.soc.network.mapping(p) == Implementation::Hw
                    && !self.busy[p.0 as usize]
                    && self.frozen_until[p.0 as usize] <= t
                    && self.soc.network.cfsm(p).enabled(self.state.runtime(p)).is_some()
            })
            .collect();
        hw_ready.sort_by_key(|&p| {
            (
                std::cmp::Reverse(self.soc.priorities[p.0 as usize]),
                p.0,
            )
        });
        for p in hw_ready {
            self.busy[p.0 as usize] = true;
            self.fire(p, t);
        }
        // Software: one task at a time on the shared CPU, arbitrated by
        // the configured RTOS policy, dispatched when the CPU is free.
        if self.cpu_free_at <= t {
            let sw_ready: Option<ProcId> = self
                .soc
                .network
                .process_ids()
                .filter(|&p| {
                    self.soc.network.mapping(p) == Implementation::Sw
                        && !self.busy[p.0 as usize]
                        && self.frozen_until[p.0 as usize] <= t
                        && self
                            .soc
                            .network
                            .cfsm(p)
                            .enabled(self.state.runtime(p))
                            .is_some()
                })
                .max_by_key(|&p| {
                    let pri = match self.config.rtos_policy {
                        crate::config::RtosPolicy::FixedPriority => {
                            self.soc.priorities[p.0 as usize]
                        }
                        crate::config::RtosPolicy::Fifo => 0,
                    };
                    (pri, std::cmp::Reverse(p.0))
                });
            if let Some(p) = sw_ready {
                self.busy[p.0 as usize] = true;
                self.fire(p, t);
            }
        }
    }

    /// Fires process `p` at time `t`: behavioral execution, cost
    /// estimation, cache integration, and either immediate completion or
    /// hand-off to the bus arbiter for the shared-memory phase.
    fn fire(&mut self, p: ProcId, t: u64) {
        // Pre-firing snapshot (what the estimators replay).
        let vars_in = self.state.runtime(p).vars().to_vec();
        let ev_snapshot: HashMap<EventId, i64> = {
            let buf = self.state.runtime(p).buffer();
            buf.present()
                .map(|e| (e, buf.value(e).unwrap_or(0)))
                .collect()
        };
        let Some(fr) = self.soc.network.fire(&mut self.state, p) else {
            // dispatch_ready only fires enabled processes, so this is an
            // internal inconsistency — record it and release the slot
            // instead of panicking mid-run.
            self.busy[p.0 as usize] = false;
            self.anomalies.record(
                t,
                AnomalyKind::RecoveredError {
                    context: format!(
                        "process `{}` dispatched while not enabled",
                        self.soc.network.cfsm(p).name()
                    ),
                },
            );
            return;
        };
        self.firings += 1;
        self.firings_per_proc[p.0 as usize] += 1;

        // Component cost, through the acceleration pipeline.
        let (mut cost, source) = self.estimate(p, &fr, &vars_in, &ev_snapshot);
        if !self.faults.is_empty() {
            cost = self.corrupt_cost(p, cost);
        }

        // Instruction-cache references come from the *behavioral* model
        // (block trace), independent of which estimator priced the
        // firing — exactly as in the paper.
        let mut stall_cycles = 0u64;
        if let Some(icache) = &mut self.icache {
            if let Some(addrs) = self.estimators[p.0 as usize].ifetch_addrs(fr.transition, &fr.execution)
            {
                if self.force_miss_batches > 0 {
                    // Injected bypass: every fetch goes to the next level
                    // at miss cost; the cache itself is neither consulted
                    // nor updated.
                    self.force_miss_batches -= 1;
                    let cfg = icache.config();
                    let fetches = addrs.len() as u64;
                    let de = fetches as f64 * (cfg.access_energy_j + cfg.miss_energy_j);
                    stall_cycles = fetches * cfg.miss_penalty_cycles;
                    self.account.record(self.cache_comp, t, t + stall_cycles.max(1), de);
                    self.anomalies.record(t, AnomalyKind::CacheBypassed { fetches });
                } else {
                    let e0 = icache.energy_j();
                    let s0 = icache.stall_cycles();
                    icache.access_all(addrs);
                    let de = icache.energy_j() - e0;
                    stall_cycles = icache.stall_cycles() - s0;
                    self.account.record(self.cache_comp, t, t + stall_cycles.max(1), de);
                }
            }
        }

        // The component's execution phase: computation plus cache-miss
        // stalls (charged at the processor's stall power).
        let detailed = source == CostSource::Detailed;
        let stall_energy =
            self.estimators[p.0 as usize].wait_energy(fr.transition, stall_cycles, detailed);
        let exec_end = t + cost.cycles + stall_cycles;
        self.account.record(
            self.comp_of_proc[p.0 as usize],
            t,
            exec_end,
            cost.energy_j + stall_energy,
        );
        self.end_time = self.end_time.max(exec_end);

        let is_sw = !self.estimators[p.0 as usize].is_hw();
        let wait = FiringWait {
            proc: p,
            transition: fr.transition,
            exec_end,
            detailed,
            is_sw,
            emissions: fr.execution.emitted.clone(),
        };

        // Shared-memory phase: the transactions are granted DMA block by
        // DMA block under priority arbitration; the firing completes when
        // its last block does.
        let ops: Vec<(u64, i64, bool)> = fr
            .execution
            .mem_accesses
            .iter()
            .map(|a| (a.addr, a.value, a.write))
            .collect();
        if ops.is_empty() {
            self.complete_firing(wait, exec_end);
        } else {
            if is_sw {
                // The processor owns the transfer (programmed I/O / DMA
                // set-up interleaved with computation); the RTOS keeps
                // the CPU allocated until the last block completes.
                self.cpu_free_at = u64::MAX;
            }
            // The component issues its transactions *throughout* its
            // computation, not in a burst at the end: pace the blocks
            // evenly across the execution window, so concurrent
            // components genuinely contend for the bus.
            let blocks = (ops.len() as u64).div_ceil(self.config.bus.dma_block_size as u64);
            let interval = cost.cycles / blocks.max(1);
            let req = self.bus.enqueue_paced(
                self.bus_master[p.0 as usize],
                t,
                &ops,
                interval,
            );
            self.bus_pending.insert(req, wait);
            self.queue.push(SimTime::from_cycles(t), Ev::BusKick);
        }
    }

    /// Applies an armed energy-corruption fault to `p`'s sample, clamping
    /// non-finite or negative results to zero (recorded as an anomaly) so
    /// the ledger stays finite and non-negative.
    fn corrupt_cost(&mut self, p: ProcId, mut cost: DetailedCost) -> DetailedCost {
        let now = self.now;
        let hit = self.faults.iter().position(|f| {
            f.ready(now) && matches!(f.kind, ResolvedFaultKind::CorruptEnergy(fp, _) if fp == p)
        });
        let Some(i) = hit else {
            return cost;
        };
        let ResolvedFaultKind::CorruptEnergy(_, factor) = self.faults[i].kind else {
            return cost;
        };
        self.faults[i].armed = false;
        let description = self.faults[i].describe.clone();
        self.anomalies.record(now, AnomalyKind::FaultInjected { description });
        let raw = cost.energy_j * factor;
        if raw.is_finite() && raw >= 0.0 {
            cost.energy_j = raw;
        } else {
            self.anomalies.record(
                now,
                AnomalyKind::EnergyClamped {
                    process: self.soc.network.cfsm(p).name().to_string(),
                    raw_j: raw,
                },
            );
            cost.energy_j = 0.0;
        }
        cost
    }

    /// Routes one firing through the active acceleration technique.
    fn estimate(
        &mut self,
        p: ProcId,
        fr: &cfsm::FireResult,
        vars_in: &[i64],
        ev_snapshot: &HashMap<EventId, i64>,
    ) -> (DetailedCost, CostSource) {
        // Macro-modeling replaces the detailed estimators entirely. The
        // parameter files are characterized in `new` whenever the
        // technique is enabled; if one is somehow missing, fall through
        // to detailed simulation rather than panicking.
        if self.config.accel.macromodel {
            let params = if self.estimators[p.0 as usize].is_hw() {
                self.hw_params.as_ref()
            } else {
                self.sw_params.as_ref()
            };
            if let Some(params) = params {
                let (cycles, energy_j) = params.estimate(&fr.execution.macro_ops);
                self.accelerated_calls += 1;
                return (
                    DetailedCost {
                        cycles: cycles.max(1),
                        energy_j,
                    },
                    CostSource::MacroModel,
                );
            }
        }
        let key = (p, fr.execution.path);
        // Energy cache.
        if let Some(cache) = &mut self.cache {
            if let Some(hit) = cache.lookup(key) {
                self.accelerated_calls += 1;
                return (
                    DetailedCost {
                        cycles: hit.cycles,
                        energy_j: hit.energy_j,
                    },
                    CostSource::Cache,
                );
            }
        }
        // Firing-level sampling.
        if let Some(s) = &self.config.accel.sampling {
            if let Some((countdown, last)) = self.sample_state.get_mut(&key) {
                if *countdown > 0 {
                    *countdown -= 1;
                    let last = *last;
                    self.accelerated_calls += 1;
                    return (last, CostSource::Sampled);
                }
                *countdown = s.period.saturating_sub(1);
            }
        }
        // Detailed simulation.
        let cost = self.estimators[p.0 as usize].run(
            fr.transition,
            vars_in,
            &|e| ev_snapshot.get(&e).copied().unwrap_or(0),
            &fr.execution,
            self.config.synth.width,
        );
        self.detailed_calls += 1;
        if let Some(cache) = &mut self.cache {
            cache.record(key, cost.energy_j, cost.cycles);
        }
        if let Some(s) = &self.config.accel.sampling {
            let entry = self
                .sample_state
                .entry(key)
                .or_insert((s.period.saturating_sub(1), cost));
            entry.1 = cost;
        }
        (cost, CostSource::Detailed)
    }

    /// Builds the final report.
    fn report(&self) -> CoSimReport {
        let processes = self
            .soc
            .network
            .process_ids()
            .map(|p| {
                let totals = self.account.totals(self.comp_of_proc[p.0 as usize]);
                ProcessReport {
                    name: self.soc.network.cfsm(p).name().to_string(),
                    mapping: self.soc.network.mapping(p),
                    energy_j: totals.energy_j,
                    busy_cycles: totals.busy_cycles,
                    firings: self.firings_per_proc[p.0 as usize],
                }
            })
            .collect();
        CoSimReport {
            system: self.soc.name.clone(),
            processes,
            bus_energy_j: self.account.totals(self.bus_comp).energy_j,
            bus: self.bus.stats(),
            cache_energy_j: self.account.totals(self.cache_comp).energy_j,
            cache: self
                .icache
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
            total_cycles: self.end_time,
            firings: self.firings,
            detailed_calls: self.detailed_calls,
            accelerated_calls: self.accelerated_calls,
            account: self.account.clone(),
            outcome: match &self.degraded {
                Some(reason) => RunOutcome::Degraded { reason: reason.clone() },
                None => RunOutcome::Completed,
            },
            anomalies: self.anomalies.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching::CachingConfig;
    use crate::config::Acceleration;
    use cfsm::{Cfg, Cfsm, EventDef, Expr, Network, Stmt};

    /// A two-process system: a SW producer that reacts to GO by emitting
    /// DATA(v), and an HW consumer that accumulates DATA values.
    fn two_proc_soc(n_stimuli: u64) -> SocDescription {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let data = nb.event(EventDef::valued("DATA"));

        let mut prod = Cfsm::builder("producer");
        let s = prod.state("s");
        let v = prod.var("v", 0);
        prod.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: v,
                    expr: Expr::add(Expr::Var(v), Expr::Const(3)),
                },
                Stmt::Emit {
                    event: data,
                    value: Some(Expr::Var(v)),
                },
            ]),
            s,
        );
        nb.process(prod.finish().expect("valid"), Implementation::Sw);

        let mut cons = Cfsm::builder("consumer");
        let c = cons.state("c");
        let acc = cons.var("acc", 0);
        cons.transition(
            c,
            vec![data],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: acc,
                expr: Expr::add(Expr::Var(acc), Expr::EventValue(data)),
            }]),
            c,
        );
        nb.process(cons.finish().expect("valid"), Implementation::Hw);

        let network = nb.finish().expect("valid network");
        let stimulus = (0..n_stimuli)
            .map(|i| (i * 10_000, EventOccurrence::pure(go)))
            .collect();
        SocDescription {
            name: "two-proc".into(),
            network,
            stimulus,
            priorities: vec![1, 1],
        }
    }

    fn run_with(accel: Acceleration, n: u64) -> CoSimReport {
        let cfg = CoSimConfig::date2000_defaults().with_accel(accel);
        let mut sim = CoSimulator::new(two_proc_soc(n), cfg).expect("builds");
        sim.run()
    }

    #[test]
    fn baseline_run_produces_energy_and_time() {
        let r = run_with(Acceleration::none(), 5);
        assert_eq!(r.firings, 10, "5 producer + 5 consumer firings");
        assert!(r.total_energy_j() > 0.0);
        assert!(r.total_cycles > 0);
        assert!(r.process_energy_j("producer") > 0.0);
        assert!(r.process_energy_j("consumer") > 0.0);
        assert_eq!(r.detailed_calls, 10);
        assert_eq!(r.accelerated_calls, 0);
        assert!(r.cache.accesses > 0, "SW fetches hit the icache");
    }

    #[test]
    fn consumer_accumulates_all_values() {
        let cfg = CoSimConfig::date2000_defaults();
        let soc = two_proc_soc(4);
        let consumer = soc.network.process_by_name("consumer").expect("exists");
        let mut sim = CoSimulator::new(soc, cfg).expect("builds");
        let _ = sim.run();
        // 3 + 6 + 9 + 12 = 30.
        assert_eq!(sim.state.runtime(consumer).vars()[0], 30);
    }

    #[test]
    fn caching_reduces_detailed_calls_without_changing_energy() {
        let base = run_with(Acceleration::none(), 20);
        let cached = run_with(
            Acceleration::caching(CachingConfig {
                thresh_variance: 0.05,
                thresh_iss_calls: 2,
                keep_samples: false,
            }),
            20,
        );
        assert!(cached.detailed_calls < base.detailed_calls);
        assert!(cached.accelerated_calls > 0);
        // SPARClite power model + repeatable HW runs → identical totals
        // within float tolerance.
        let rel = (cached.total_energy_j() - base.total_energy_j()).abs()
            / base.total_energy_j();
        assert!(rel < 0.01, "caching error {rel} too large");
    }

    #[test]
    fn macromodel_overestimates_but_is_fast() {
        let base = run_with(Acceleration::none(), 10);
        let mm = run_with(Acceleration::macromodel(), 10);
        assert_eq!(mm.detailed_calls, 0, "macro-model never calls simulators");
        assert_eq!(mm.accelerated_calls, mm.firings);
        // Conservative: the additive model over-estimates.
        assert!(
            mm.process_energy_j("producer") > base.process_energy_j("producer"),
            "macromodel should over-estimate SW energy"
        );
    }

    #[test]
    fn sampling_reuses_previous_costs() {
        let sampled = run_with(
            Acceleration::sampling(crate::SamplingConfig { period: 4 }),
            16,
        );
        assert!(sampled.accelerated_calls > 0);
        assert!(sampled.detailed_calls < sampled.firings);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_with(Acceleration::none(), 8);
        let b = run_with(Acceleration::none(), 8);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_energy_j().to_bits(), b.total_energy_j().to_bits());
    }

    #[test]
    fn bus_unused_when_no_shared_memory() {
        let r = run_with(Acceleration::none(), 3);
        assert_eq!(r.bus.words, 0);
        assert_eq!(r.bus_energy_j, 0.0);
    }

    #[test]
    fn waveforms_cover_run() {
        let r = run_with(Acceleration::none(), 5);
        let sys = r.account.system_waveform();
        assert!(!sys.energy_per_bucket_j().is_empty());
        let sum: f64 = sys.energy_per_bucket_j().iter().sum();
        assert!((sum - r.total_energy_j()).abs() < 1e-9 * r.total_energy_j());
    }

    #[test]
    fn rtos_policy_changes_sw_dispatch_order() {
        // Two SW tasks both enabled by the same stimulus: under
        // FixedPriority the high-priority one runs first; under Fifo the
        // lower process id wins.
        fn two_sw_soc() -> SocDescription {
            let mut nb = cfsm::Network::builder();
            let go = nb.event(EventDef::pure("GO"));
            let a_done = nb.event(EventDef::pure("A_DONE"));
            let b_done = nb.event(EventDef::pure("B_DONE"));
            for (name, done) in [("a", a_done), ("b", b_done)] {
                let mut mb = Cfsm::builder(name);
                let s = mb.state("s");
                mb.transition(
                    s,
                    vec![go],
                    None,
                    Cfg::straight_line(vec![Stmt::Emit {
                        event: done,
                        value: None,
                    }]),
                    s,
                );
                nb.process(mb.finish().expect("valid"), Implementation::Sw);
            }
            SocDescription {
                name: "two-sw".into(),
                network: nb.finish().expect("valid"),
                stimulus: vec![(100, EventOccurrence::pure(go))],
                priorities: vec![1, 9], // `b` outranks `a`
            }
        }
        let first_busy = |policy: crate::RtosPolicy| {
            let mut cfg = CoSimConfig::date2000_defaults();
            cfg.rtos_policy = policy;
            cfg.waveform_bucket_cycles = 8; // resolve the two CPU slots
            let mut sim = CoSimulator::new(two_sw_soc(), cfg).expect("builds");
            let r = sim.run();
            // The task dispatched first finishes first; with identical
            // bodies, the one with the *earlier* completion window is the
            // one whose waveform bucket charge starts first. Use busy
            // windows via the account: both have equal busy_cycles, so
            // compare who fired in the earlier CPU slot by peak position.
            let a = r.account.waveform(crate::ComponentId(0)).peak().expect("a ran");
            let b = r.account.waveform(crate::ComponentId(1)).peak().expect("b ran");
            (a.0, b.0)
        };
        let (a_pri, b_pri) = first_busy(crate::RtosPolicy::FixedPriority);
        let (a_fifo, b_fifo) = first_busy(crate::RtosPolicy::Fifo);
        assert!(b_pri < a_pri, "priority: b (pri 9) runs first ({b_pri} vs {a_pri})");
        assert!(a_fifo < b_fifo, "fifo: a (lower id) runs first ({a_fifo} vs {b_fifo})");
    }

    #[test]
    fn max_firings_bounds_run() {
        let mut cfg = CoSimConfig::date2000_defaults();
        cfg.max_firings = 4;
        let mut sim = CoSimulator::new(two_proc_soc(100), cfg).expect("builds");
        let r = sim.run();
        assert!(r.firings <= 5, "bounded by max_firings");
        assert!(r.outcome.is_degraded(), "cut short with work pending");
    }

    #[test]
    fn quiescent_run_completes_with_empty_ledger_overhead() {
        let r = run_with(Acceleration::none(), 5);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.anomalies.faults_injected(), 0);
    }

    #[test]
    fn wrong_priority_count_is_a_typed_error() {
        let mut soc = two_proc_soc(1);
        soc.priorities = vec![1, 2, 3];
        let err = CoSimulator::new(soc, CoSimConfig::date2000_defaults());
        assert!(matches!(
            err,
            Err(BuildEstimatorError::PriorityCount { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn unknown_fault_target_is_a_typed_error() {
        let cfg = CoSimConfig::date2000_defaults()
            .with_faults(crate::FaultPlan::new().freeze_process(0, "no_such_process", 10));
        let err = CoSimulator::new(two_proc_soc(1), cfg);
        assert!(matches!(err, Err(BuildEstimatorError::InvalidParams(_))));
    }

    #[test]
    fn watchdog_cycle_budget_degrades_run() {
        // Stimulus reaches cycle 990_000; cap simulated time well before.
        let cfg = CoSimConfig::date2000_defaults().with_watchdog(desim::WatchdogConfig {
            max_cycles: Some(50_000),
            ..desim::WatchdogConfig::default()
        });
        let mut sim = CoSimulator::new(two_proc_soc(100), cfg).expect("builds");
        let r = sim.run();
        assert!(r.outcome.is_degraded(), "{:?}", r.outcome);
        assert!(r.total_cycles <= 60_000, "partial report stops near the budget");
        assert!(r.total_energy_j() > 0.0, "partial energy is still accounted");
        assert!(
            r.anomalies.iter().any(|a| matches!(a.kind, AnomalyKind::WatchdogTrip { .. })),
            "trip recorded in the ledger"
        );
    }

    #[test]
    fn empty_fault_plan_is_bit_for_bit_free() {
        let base = run_with(Acceleration::none(), 8);
        let cfg = CoSimConfig::date2000_defaults()
            .with_faults(crate::FaultPlan::none())
            .with_watchdog(desim::WatchdogConfig::unlimited());
        let mut sim = CoSimulator::new(two_proc_soc(8), cfg).expect("builds");
        let r = sim.run();
        assert_eq!(r.total_energy_j().to_bits(), base.total_energy_j().to_bits());
        assert_eq!(r.total_cycles, base.total_cycles);
        assert_eq!(r.firings, base.firings);
        assert_eq!(r.outcome, base.outcome);
    }
}
