//! Software (and hardware) power macro-modeling (§4.1 of the paper).
//!
//! Macro-modeling pre-characterizes the ~25 POLIS macro-operations
//! (`AVV`, `AEMIT`, `TIVART`, `ADD`, `EQ`, …) in terms of delay, code
//! size and energy, and stores the results in a *parameter file* (Fig. 3):
//!
//! ```text
//! .unit_time cycle
//! .unit_size byte
//! .unit_energy nJ
//! .time AVV 5
//! .size AVV 7
//! .energy AVV 110
//! ```
//!
//! During co-simulation, a transition's cost is the **additive** sum of
//! its executed macro-operations' table entries — the low-level simulator
//! is never invoked. Because characterization compiles each
//! macro-operation *in isolation* (operands loaded from memory, result
//! stored back — see [`iss::codegen::macro_op_template`]) while the real
//! generated code keeps values in registers across macro-op boundaries
//! and overlaps execution in the pipeline, the macro-model systematically
//! **over-estimates** (paper Table 2: +19.6%…+32.9%) while preserving the
//! ranking of design alternatives (Fig. 6).

use cfsm::{MacroOp, ALL_MACRO_OPS};
use iss::codegen::macro_op_template;
use iss::isa::INSTR_BYTES;
use iss::{Cpu, PowerModel};
use std::collections::BTreeMap;
use std::fmt;

/// One characterized macro-operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroCost {
    /// Delay in cycles.
    pub time_cycles: u64,
    /// Code size in bytes.
    pub size_bytes: u64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
}

/// Name of the per-activation overhead entry (transition dispatch:
/// window rotation, variable load/store, breakpoint).
pub const ACTIVATION_ENTRY: &str = "ACTIV";

/// A characterized macro-operation library (the parameter file of
/// Fig. 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParameterFile {
    entries: BTreeMap<String, MacroCost>,
}

/// Errors from [`ParameterFile::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseParameterError {
    /// A line did not match `.directive NAME VALUE`.
    BadLine(usize),
    /// A numeric field failed to parse.
    BadNumber(usize),
    /// An unknown directive was found.
    UnknownDirective(usize, String),
}

impl fmt::Display for ParseParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseParameterError::BadLine(n) => write!(f, "malformed line {n}"),
            ParseParameterError::BadNumber(n) => write!(f, "invalid number on line {n}"),
            ParseParameterError::UnknownDirective(n, d) => {
                write!(f, "unknown directive `{d}` on line {n}")
            }
        }
    }
}

impl std::error::Error for ParseParameterError {}

impl ParameterFile {
    /// An empty library.
    pub fn new() -> Self {
        ParameterFile::default()
    }

    /// Sets the cost of one macro-operation mnemonic.
    pub fn set(&mut self, mnemonic: impl Into<String>, cost: MacroCost) {
        self.entries.insert(mnemonic.into(), cost);
    }

    /// Looks up a macro-operation's cost.
    pub fn cost(&self, op: MacroOp) -> Option<MacroCost> {
        self.entries.get(op.mnemonic()).copied()
    }

    /// Number of characterized operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Additively estimates a macro-operation trace: `(cycles, energy_j)`.
    /// If the library carries an `ACTIV` entry (per-activation overhead:
    /// register-window rotation, state load/store, breakpoint), it is
    /// added once.
    ///
    /// # Panics
    ///
    /// Panics if the trace contains an uncharacterized operation.
    pub fn estimate(&self, trace: &[MacroOp]) -> (u64, f64) {
        let mut cycles = 0u64;
        let mut nj = 0.0;
        for &op in trace {
            let c = self
                .cost(op)
                .unwrap_or_else(|| panic!("macro-op {op} not characterized"));
            cycles += c.time_cycles;
            nj += c.energy_nj;
        }
        if let Some(a) = self.entries.get(ACTIVATION_ENTRY) {
            cycles += a.time_cycles;
            nj += a.energy_nj;
        }
        (cycles, nj * 1e-9)
    }

    /// Renders the POLIS-style parameter-file text (Fig. 3).
    pub fn to_text(&self) -> String {
        let mut s = String::from(".unit_time cycle\n.unit_size byte\n.unit_energy nJ\n");
        for (name, c) in &self.entries {
            s.push_str(&format!(".time {name} {}\n", c.time_cycles));
        }
        for (name, c) in &self.entries {
            s.push_str(&format!(".size {name} {}\n", c.size_bytes));
        }
        for (name, c) in &self.entries {
            s.push_str(&format!(".energy {name} {}\n", c.energy_nj));
        }
        s
    }

    /// Parses parameter-file text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseParameterError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, ParseParameterError> {
        let mut pf = ParameterFile::new();
        for (i, line) in text.lines().enumerate() {
            let n = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().ok_or(ParseParameterError::BadLine(n))?;
            match directive {
                ".unit_time" | ".unit_size" | ".unit_energy" => continue,
                ".time" | ".size" | ".energy" => {
                    let name = parts.next().ok_or(ParseParameterError::BadLine(n))?;
                    let value = parts.next().ok_or(ParseParameterError::BadLine(n))?;
                    if parts.next().is_some() {
                        return Err(ParseParameterError::BadLine(n));
                    }
                    let entry = pf.entries.entry(name.to_string()).or_insert(MacroCost {
                        time_cycles: 0,
                        size_bytes: 0,
                        energy_nj: 0.0,
                    });
                    match directive {
                        ".time" => {
                            entry.time_cycles = value
                                .parse()
                                .map_err(|_| ParseParameterError::BadNumber(n))?
                        }
                        ".size" => {
                            entry.size_bytes = value
                                .parse()
                                .map_err(|_| ParseParameterError::BadNumber(n))?
                        }
                        ".energy" => {
                            entry.energy_nj = value
                                .parse()
                                .map_err(|_| ParseParameterError::BadNumber(n))?
                        }
                        _ => unreachable!(),
                    }
                }
                other => {
                    return Err(ParseParameterError::UnknownDirective(n, other.to_string()))
                }
            }
        }
        Ok(pf)
    }
}

/// Runs the software characterization flow (Fig. 3): every macro-op's
/// isolated template program is executed on a fresh ISS and its cycles,
/// code size and energy recorded.
pub fn characterize_sw(power: &PowerModel) -> ParameterFile {
    let mut pf = ParameterFile::new();
    // Cost of the template harness (base-address setup + breakpoint
    // trap), measured once and excluded from every macro-op's entry so
    // the characterization reflects the operation itself.
    let harness = {
        let mut h = Cpu::new(power.clone());
        h.run(
            &[
                iss::isa::Instr::Set {
                    rd: iss::isa::Reg(1),
                    imm: iss::isa::memmap::VAR_BASE as i64,
                },
                iss::isa::Instr::Halt,
            ],
            0,
            0,
            &[],
        )
    };
    for &op in ALL_MACRO_OPS {
        let code = macro_op_template(op);
        let mut cpu = Cpu::new(power.clone());
        // MEMRD templates read one shared word.
        let out = cpu.run(&code, 0, 0, &[0]);
        let size: u32 = code.iter().map(|i| i.slots()).sum::<u32>() - 1; // minus halt
        pf.set(
            op.mnemonic(),
            MacroCost {
                time_cycles: out.cycles.saturating_sub(harness.cycles).max(1),
                size_bytes: size as u64 * INSTR_BYTES,
                energy_nj: (out.energy_j - harness.energy_j).max(1e-10) * 1e9,
            },
        );
    }
    // Per-activation overhead: the generated code rotates a register
    // window, loads/stores the transition's variables, and hits the
    // breakpoint. Characterized with a representative two-variable
    // working set.
    {
        use iss::isa::{memmap, Instr, Reg};
        let code = [
            Instr::Save,
            Instr::Set {
                rd: Reg(1),
                imm: memmap::VAR_BASE as i64,
            },
            Instr::Ld {
                rd: Reg(16),
                rs1: Reg(1),
                offset: 0,
            },
            Instr::Ld {
                rd: Reg(17),
                rs1: Reg(1),
                offset: 8,
            },
            Instr::St {
                rs: Reg(16),
                rs1: Reg(1),
                offset: 0,
            },
            Instr::St {
                rs: Reg(17),
                rs1: Reg(1),
                offset: 8,
            },
            Instr::Restore,
            Instr::Halt,
        ];
        let mut cpu = Cpu::new(power.clone());
        let out = cpu.run(&code, 0, 0, &[]);
        pf.set(
            ACTIVATION_ENTRY,
            MacroCost {
                time_cycles: out.cycles,
                size_bytes: code.iter().map(|i| i.slots()).sum::<u32>() as u64 * INSTR_BYTES,
                energy_nj: out.energy_j * 1e9,
            },
        );
    }
    pf
}

/// Runs the hardware characterization flow: each macro-operation's
/// datapath block is instantiated as a small netlist at the given word
/// width and exercised with pseudo-random vectors; the mean per-evaluation
/// switched energy becomes the `.energy` entry. `.time` is one cycle per
/// operation slice (the FSMD executes each block slice in a cycle).
pub fn characterize_hw(
    synth: &gatesim::SynthConfig,
    power: &gatesim::PowerConfig,
) -> ParameterFile {
    use gatesim::bus::{self, Bus};
    use gatesim::{Netlist, Simulator};

    let w = synth.width;
    let mut pf = ParameterFile::new();
    // A deterministic LCG for stimulus (no external randomness).
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 16
    };
    let mean_energy = |build: &dyn Fn(&mut Netlist, &Bus, &Bus) -> Bus,
                       rng: &mut dyn FnMut() -> u64| {
        let mut nl = Netlist::new();
        let a = bus::input_bus(&mut nl, w);
        let b = bus::input_bus(&mut nl, w);
        let _ = build(&mut nl, &a, &b);
        // The op netlists are built from fixed templates; if one ever
        // fails validation, characterize the op as free rather than
        // panic (the parameter file stays usable).
        let Ok(mut sim) = Simulator::new(&nl, power.clone()) else {
            return 0.0;
        };
        let rounds = 64;
        let mut total = 0.0;
        for _ in 0..rounds {
            sim.set_input_bus(a.nets(), rng() & bus::mask_to_width(-1, w));
            sim.set_input_bus(b.nets(), rng() & bus::mask_to_width(-1, w));
            total += sim.step();
        }
        total / rounds as f64
    };

    for &op in ALL_MACRO_OPS {
        let energy_j = match op {
            MacroOp::Binary(b) => {
                use cfsm::BinOp::*;
                match b {
                    Add => mean_energy(
                        &|nl, x, y| {
                            let c0 = nl.constant(false);
                            bus::adder(nl, x, y, c0).0
                        },
                        &mut next,
                    ),
                    Sub => mean_energy(&|nl, x, y| bus::subtractor(nl, x, y).0, &mut next),
                    Mul => mean_energy(&|nl, x, y| bus::multiplier(nl, x, y), &mut next),
                    And => mean_energy(
                        &|nl, x, y| bus::bitwise(nl, gatesim::GateKind::And, x, y),
                        &mut next,
                    ),
                    Or => mean_energy(
                        &|nl, x, y| bus::bitwise(nl, gatesim::GateKind::Or, x, y),
                        &mut next,
                    ),
                    Xor => mean_energy(
                        &|nl, x, y| bus::bitwise(nl, gatesim::GateKind::Xor, x, y),
                        &mut next,
                    ),
                    Eq | Ne => mean_energy(
                        &|nl, x, y| {
                            let e = bus::equal(nl, x, y);
                            Bus(vec![e])
                        },
                        &mut next,
                    ),
                    Lt | Le | Gt | Ge => mean_energy(
                        &|nl, x, y| {
                            let e = bus::less_than_signed(nl, x, y);
                            Bus(vec![e])
                        },
                        &mut next,
                    ),
                    Shl | Shr => mean_energy(
                        &|nl, x, _| bus::shift_left_const(nl, x, 1),
                        &mut next,
                    ),
                    // Division has no hardware implementation; charge the
                    // multiplier's cost as a conservative stand-in (such
                    // processes are normally mapped to software).
                    Div | Rem => mean_energy(&|nl, x, y| bus::multiplier(nl, x, y), &mut next),
                }
            }
            MacroOp::Unary(u) => {
                use cfsm::UnOp::*;
                match u {
                    Neg => mean_energy(&|nl, x, _| bus::negate(nl, x), &mut next),
                    Not => mean_energy(&|nl, x, _| bus::bitwise_not(nl, x), &mut next),
                    LNot => mean_energy(
                        &|nl, x, _| {
                            let nz = bus::nonzero(nl, x);
                            let b = nl.gate(gatesim::GateKind::Not, vec![nz]);
                            Bus(vec![b])
                        },
                        &mut next,
                    ),
                }
            }
            // Register write / controller activity approximations: one
            // word register's clock + data load.
            MacroOp::Avv | MacroOp::MemRead | MacroOp::MemWrite => {
                let mut nl = Netlist::new();
                let d = bus::input_bus(&mut nl, w);
                let en = nl.constant(true);
                let _q = bus::register(&mut nl, &d, en, 0);
                match Simulator::new(&nl, power.clone()) {
                    Ok(mut sim) => {
                        let rounds = 64;
                        let mut total = 0.0;
                        for _ in 0..rounds {
                            sim.set_input_bus(d.nets(), next() & bus::mask_to_width(-1, w));
                            total += sim.step();
                        }
                        total / rounds as f64
                    }
                    // Template netlists validate by construction; a
                    // failure characterizes the op as free.
                    Err(_) => 0.0,
                }
            }
            MacroOp::Aemit | MacroOp::TivarT | MacroOp::TivarF => {
                // A handful of control lines toggling.
                power.switch_energy_j(8.0)
            }
        };
        pf.set(
            op.mnemonic(),
            MacroCost {
                time_cycles: 1,
                size_bytes: 0,
                energy_nj: energy_j * 1e9,
            },
        );
    }
    // Per-activation overhead of the FSMD run protocol: the state-load
    // and start-handshake cycles, charged at a representative
    // controller's clock-tree energy (~40 flops).
    pf.set(
        ACTIVATION_ENTRY,
        MacroCost {
            time_cycles: 2,
            size_bytes: 0,
            energy_nj: power.switch_energy_j(2.0 * 40.0 * power.clock_cap_per_dff_ff) * 1e9,
        },
    );
    pf
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::BinOp;

    #[test]
    fn characterize_sw_covers_all_ops() {
        let pf = characterize_sw(&PowerModel::sparclite());
        assert_eq!(pf.len(), ALL_MACRO_OPS.len() + 1); // ops + ACTIV
        for &op in ALL_MACRO_OPS {
            let c = pf.cost(op).expect("characterized");
            assert!(c.time_cycles > 0, "{op} must take time");
            assert!(c.energy_nj > 0.0, "{op} must take energy");
            assert!(c.size_bytes > 0, "{op} must take space");
        }
    }

    #[test]
    fn expensive_ops_characterize_higher() {
        let pf = characterize_sw(&PowerModel::sparclite());
        let add = pf.cost(MacroOp::Binary(BinOp::Add)).expect("ADD");
        let div = pf.cost(MacroOp::Binary(BinOp::Div)).expect("DIV");
        assert!(div.time_cycles > add.time_cycles);
        assert!(div.energy_nj > add.energy_nj);
    }

    #[test]
    fn estimate_is_additive() {
        let mut pf = ParameterFile::new();
        pf.set(
            "AVV",
            MacroCost {
                time_cycles: 5,
                size_bytes: 7,
                energy_nj: 110.0,
            },
        );
        pf.set(
            "AEMIT",
            MacroCost {
                time_cycles: 12,
                size_bytes: 8,
                energy_nj: 680.0,
            },
        );
        let (cyc, e) = pf.estimate(&[MacroOp::Avv, MacroOp::Aemit, MacroOp::Avv]);
        assert_eq!(cyc, 5 + 12 + 5);
        assert!((e - (110.0 + 680.0 + 110.0) * 1e-9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "not characterized")]
    fn estimate_rejects_unknown_ops() {
        ParameterFile::new().estimate(&[MacroOp::Avv]);
    }

    #[test]
    fn text_roundtrip() {
        let pf = characterize_sw(&PowerModel::sparclite());
        let text = pf.to_text();
        assert!(text.contains(".unit_time cycle"));
        assert!(text.contains(".time AVV"));
        assert!(text.contains(".energy AEMIT"));
        let back = ParameterFile::from_text(&text).expect("parses");
        assert_eq!(back.len(), pf.len());
        for &op in ALL_MACRO_OPS {
            let a = pf.cost(op).expect("orig");
            let b = back.cost(op).expect("parsed");
            assert_eq!(a.time_cycles, b.time_cycles);
            assert_eq!(a.size_bytes, b.size_bytes);
            // Energy survives the decimal round-trip.
            assert!((a.energy_nj - b.energy_nj).abs() < 1e-9 * a.energy_nj.abs() + 1e-12);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            ParameterFile::from_text(".bogus AVV 1"),
            Err(ParseParameterError::UnknownDirective(1, _))
        ));
        assert!(matches!(
            ParameterFile::from_text(".time AVV"),
            Err(ParseParameterError::BadLine(1))
        ));
        assert!(matches!(
            ParameterFile::from_text(".time AVV abc"),
            Err(ParseParameterError::BadNumber(1))
        ));
        assert!(matches!(
            ParameterFile::from_text(".time AVV 1 2"),
            Err(ParseParameterError::BadLine(1))
        ));
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let pf = ParameterFile::from_text("# header\n\n.time AVV 5\n.energy AVV 1.5\n")
            .expect("parses");
        let c = pf.cost(MacroOp::Avv).expect("AVV");
        assert_eq!(c.time_cycles, 5);
        assert!((c.energy_nj - 1.5).abs() < 1e-12);
    }

    #[test]
    fn characterize_hw_covers_all_ops() {
        let pf = characterize_hw(
            &gatesim::SynthConfig::with_width(8),
            &gatesim::PowerConfig::date2000_defaults(),
        );
        assert_eq!(pf.len(), ALL_MACRO_OPS.len() + 1); // ops + ACTIV
        let add = pf.cost(MacroOp::Binary(BinOp::Add)).expect("ADD");
        let mul = pf.cost(MacroOp::Binary(BinOp::Mul)).expect("MUL");
        assert!(mul.energy_nj > add.energy_nj, "multiplier switches more");
    }

    #[test]
    fn sw_characterization_is_deterministic() {
        let a = characterize_sw(&PowerModel::sparclite()).to_text();
        let b = characterize_sw(&PowerModel::sparclite()).to_text();
        assert_eq!(a, b);
    }
}
