//! Stable textual serialization of [`CoSimReport`] for golden-file
//! testing.
//!
//! The snapshot is designed for *drift detection*, not pretty-printing:
//! every section lists its keys in a fixed (alphabetical) order, every
//! float is rendered both human-readably (`{:.9e}`) and bit-exactly (the
//! IEEE-754 bit pattern in hex), and collection entries appear in their
//! deterministic simulation order. Two reports produce the same snapshot
//! **iff** they are observably identical — including float results down
//! to the last ULP, which is exactly the equality the parallel sweep's
//! determinism contract promises.
//!
//! Raw power waveforms are summarized (bucket count, bit-exact energy
//! sum, peak) instead of dumped bucket-by-bucket, keeping goldens small
//! while still catching any redistribution of energy over time.

use crate::report::{CoSimReport, RunOutcome};

/// Renders a float as `mantissa-exponent / bit-pattern` — readable and
/// bit-exact at once.
fn fmt_f64(x: f64) -> String {
    format!("{x:.9e} (bits 0x{:016x})", x.to_bits())
}

impl CoSimReport {
    /// The stable textual snapshot of this report: fixed key order,
    /// floats rendered with their IEEE-754 bit patterns. Byte-identical
    /// snapshots ⇔ observably identical reports.
    pub fn golden_snapshot(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("[report]\n");
        s.push_str(&format!("accelerated_calls = {}\n", self.accelerated_calls));
        s.push_str(&format!("detailed_calls = {}\n", self.detailed_calls));
        s.push_str(&format!("firings = {}\n", self.firings));
        let outcome = match &self.outcome {
            RunOutcome::Completed => "completed".to_string(),
            RunOutcome::Degraded { reason } => format!("degraded: {reason}"),
        };
        s.push_str(&format!("outcome = {outcome}\n"));
        s.push_str(&format!("system = {}\n", self.system));
        s.push_str(&format!("total_cycles = {}\n", self.total_cycles));
        s.push_str(&format!("total_energy_j = {}\n", fmt_f64(self.total_energy_j())));

        s.push_str("\n[bus]\n");
        s.push_str(&format!("blocks = {}\n", self.bus.blocks));
        s.push_str(&format!("busy_cycles = {}\n", self.bus.busy_cycles));
        s.push_str(&format!("energy_j = {}\n", fmt_f64(self.bus_energy_j)));
        s.push_str(&format!("toggles = {}\n", self.bus.toggles));
        s.push_str(&format!("wait_cycles = {}\n", self.bus.wait_cycles));
        s.push_str(&format!("words = {}\n", self.bus.words));

        s.push_str("\n[cache]\n");
        s.push_str(&format!("accesses = {}\n", self.cache.accesses));
        s.push_str(&format!("energy_j = {}\n", fmt_f64(self.cache_energy_j)));
        s.push_str(&format!("hits = {}\n", self.cache.hits));
        s.push_str(&format!("misses = {}\n", self.cache.misses));

        for (i, p) in self.processes.iter().enumerate() {
            s.push_str(&format!("\n[process {i} {}]\n", p.name));
            s.push_str(&format!("busy_cycles = {}\n", p.busy_cycles));
            s.push_str(&format!("energy_j = {}\n", fmt_f64(p.energy_j)));
            s.push_str(&format!("firings = {}\n", p.firings));
            s.push_str(&format!("mapping = {}\n", p.mapping));
        }

        s.push_str("\n[account]\n");
        for (id, name, totals) in self.account.iter() {
            let w = self.account.waveform(id);
            let buckets = w.energy_per_bucket_j().len();
            let sum: f64 = w.energy_per_bucket_j().iter().sum();
            let peak = match w.peak() {
                Some((idx, e)) => format!("bucket {idx} at {}", fmt_f64(e)),
                None => "none".to_string(),
            };
            s.push_str(&format!(
                "component {} {name}: energy_j = {}, busy_cycles = {}, records = {}, \
                 waveform = {{buckets = {buckets}, sum_j = {}, peak = {peak}}}\n",
                id.0,
                fmt_f64(totals.energy_j),
                totals.busy_cycles,
                totals.records,
                fmt_f64(sum),
            ));
        }

        s.push_str("\n[anomalies]\n");
        s.push_str(&format!("count = {}\n", self.anomalies.len()));
        for a in self.anomalies.iter() {
            s.push_str(&format!("cycle {} = {}\n", a.at_cycle, a.kind));
        }
        s
    }
}

/// Compares two snapshots line by line; `None` when identical, otherwise
/// a readable report of the first divergence (with a little context) and
/// the total number of differing lines.
pub fn snapshot_diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut differing = 0usize;
    let mut first: Option<usize> = None;
    for i in 0..exp.len().max(act.len()) {
        if exp.get(i) != act.get(i) {
            differing += 1;
            if first.is_none() {
                first = Some(i);
            }
        }
    }
    let i = first.unwrap_or(0);
    let mut out = format!(
        "{differing} line(s) differ; first divergence at line {}:\n",
        i + 1
    );
    let ctx_start = i.saturating_sub(2);
    for j in ctx_start..i {
        if let Some(line) = exp.get(j) {
            out.push_str(&format!("    {line}\n"));
        }
    }
    out.push_str(&format!(
        "  - expected: {}\n  + actual:   {}\n",
        exp.get(i).unwrap_or(&"<missing line>"),
        act.get(i).unwrap_or(&"<missing line>"),
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoSimConfig, SocDescription};
    use crate::master::CoSimulator;
    use cfsm::{Cfg, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt};

    fn tiny_soc() -> SocDescription {
        let mut nb = Network::builder();
        let tick = nb.event(EventDef::pure("TICK"));
        let mut mb = Cfsm::builder("counter");
        let st = mb.state("s");
        let v = mb.var("v", 0);
        mb.transition(
            st,
            vec![tick],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: v,
                expr: Expr::add(Expr::Var(v), Expr::Const(1)),
            }]),
            st,
        );
        nb.process(mb.finish().expect("valid machine"), Implementation::Hw);
        SocDescription {
            name: "tiny".into(),
            network: nb.finish().expect("valid network"),
            stimulus: (0..3).map(|i| (i * 100, EventOccurrence::pure(tick))).collect(),
            priorities: vec![1],
        }
    }

    fn snapshot() -> String {
        let mut sim = CoSimulator::new(tiny_soc(), CoSimConfig::date2000_defaults())
            .expect("builds");
        sim.run().golden_snapshot()
    }

    #[test]
    fn snapshot_is_deterministic_and_sectioned() {
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a, b);
        for section in ["[report]", "[bus]", "[cache]", "[process 0 counter]", "[account]", "[anomalies]"] {
            assert!(a.contains(section), "missing {section} in:\n{a}");
        }
        assert!(a.contains("bits 0x"), "floats carry bit patterns");
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = "x = 1\ny = 2\nz = 3\n";
        let b = "x = 1\ny = 9\nz = 3\n";
        assert!(snapshot_diff(a, a).is_none());
        let d = snapshot_diff(a, b).expect("differs");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("y = 2") && d.contains("y = 9"), "{d}");
    }

    #[test]
    fn diff_handles_length_mismatch() {
        let d = snapshot_diff("a\nb\n", "a\n").expect("differs");
        assert!(d.contains("<missing line>"), "{d}");
    }
}
