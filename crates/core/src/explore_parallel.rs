//! Parallel design-space exploration: the serial sweeps of
//! [`crate::explore`], fanned out across a scoped worker pool.
//!
//! The paper's whole point of fast co-estimation is *iterative*
//! architecture exploration (§5.3): a 48-point sweep is only as useful as
//! its latency. Every point of a sweep is an independent co-simulation,
//! so the engine enumerates the whole work list up front, hands indices
//! to `std::thread::scope` workers through an atomic cursor, collects
//! `(index, result)` pairs over an `mpsc` channel, and reassembles the
//! output in index order.
//!
//! # Determinism contract
//!
//! The reassembled `Vec` is **bit-for-bit identical** to the serial
//! sweep's at every worker count:
//!
//! * both paths share the per-point evaluators of [`crate::explore`], so
//!   each index denotes exactly the same `(configuration, simulation)`;
//! * each co-simulation is single-threaded and deterministic, so a point
//!   computes the same report regardless of which worker runs it or when;
//! * reassembly is by work-list index, so scheduling order never leaks
//!   into the output.
//!
//! Errors keep the serial semantics too: workers record the lowest
//! work-list index that failed, stop claiming indices *above* it (indices
//! below still run, since one of them could fail earlier in enumeration
//! order), and the engine returns the lowest-indexed error — exactly the
//! error the serial sweep would have returned, since every point before
//! it evaluated cleanly.

use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::BuildEstimatorError;
use crate::explore::{
    check_partition_count, eval_bus_point, eval_fault_point, eval_partition_point,
    eval_power_point, eval_stimulus_point, permutations, ExplorationPoint, FaultPoint,
    PartitionPoint, PowerPoint, StimulusJitter, StimulusPoint,
};
use crate::faults::FaultPlan;
use crate::report::CoSimReport;
use cfsm::ProcId;
use soctrace::{ArcSharedSink, ProfileReport};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// Per-point power-timeline capture for a sweep (see
/// [`ExploreOptions::timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Width of each timeline window, master clock cycles (clamped to
    /// ≥ 1 by the sink).
    pub window_cycles: u64,
}

impl TimelineOptions {
    /// A timeline with the given window width.
    pub fn new(window_cycles: u64) -> Self {
        TimelineOptions { window_cycles }
    }
}

impl Default for TimelineOptions {
    /// 1000-cycle windows — the ledger's default waveform bucket.
    fn default() -> Self {
        TimelineOptions { window_cycles: 1_000 }
    }
}

/// How a parallel sweep should run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker threads evaluating points. The engine clamps this to the
    /// number of points, so over-provisioning is harmless.
    pub workers: NonZeroUsize,
    /// When set, overrides the base configuration's watchdog for every
    /// point, so one degraded (livelocked / runaway) design point cannot
    /// hang the whole sweep. `None` keeps the base config's budgets.
    pub watchdog: Option<desim::WatchdogConfig>,
    /// When set, every point's master runs with this shared span
    /// profiler attached and each point is timed as a
    /// [`soctrace::SpanKind::SweepPoint`] span; workers aggregate into
    /// the one report through the `Arc<Mutex<_>>` sink. Wall-time
    /// observability only — results stay bit-identical.
    pub profile: Option<ArcSharedSink<ProfileReport>>,
    /// When `true`, the sweep statically verifies the base spec once
    /// before evaluating any point and fails fast with
    /// [`BuildEstimatorError::Unverifiable`] on error-severity
    /// findings. One check covers every point: liveness structure is
    /// invariant under the re-mappings and re-prioritisations a sweep
    /// explores. Off by default (sweeps of trusted specs pay nothing).
    pub verify_first: bool,
    /// When set, every point's master runs with a private
    /// [`soctrace::PowerTimelineSink`] attached and the point's
    /// peak-window power lands in
    /// [`SweepStats::point_peak_power_w`], turning a sweep's scalar
    /// energy ranking into an energy *and* transient-peak ranking.
    /// Observability only — results stay bit-identical.
    pub timeline: Option<TimelineOptions>,
}

impl ExploreOptions {
    /// One worker, base watchdog: the parallel engine degenerates to a
    /// serial sweep (still channel-collected, still index-ordered).
    pub fn serial() -> Self {
        ExploreOptions {
            workers: NonZeroUsize::MIN,
            watchdog: None,
            profile: None,
            verify_first: false,
            timeline: None,
        }
    }

    /// A fixed worker count (clamped up to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        ExploreOptions {
            workers: NonZeroUsize::new(workers).unwrap_or(NonZeroUsize::MIN),
            watchdog: None,
            profile: None,
            verify_first: false,
            timeline: None,
        }
    }

    /// Returns a copy with the given per-point watchdog budgets.
    pub fn guarded(mut self, watchdog: desim::WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Returns a copy with the given shared span profiler attached to
    /// every point's master.
    pub fn profiled(mut self, sink: ArcSharedSink<ProfileReport>) -> Self {
        self.profile = Some(sink);
        self
    }

    /// Returns a copy that statically verifies the spec before the
    /// sweep starts (see [`ExploreOptions::verify_first`]).
    pub fn verified(mut self) -> Self {
        self.verify_first = true;
        self
    }

    /// Returns a copy that captures a per-point power timeline and
    /// reports each point's peak-window power (see
    /// [`ExploreOptions::timeline`]).
    pub fn with_timeline(mut self, timeline: TimelineOptions) -> Self {
        self.timeline = Some(timeline);
        self
    }
}

impl Default for ExploreOptions {
    /// All the parallelism the host offers (1 when it cannot tell).
    fn default() -> Self {
        ExploreOptions {
            workers: thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
            watchdog: None,
            profile: None,
            verify_first: false,
            timeline: None,
        }
    }
}

/// Aggregate metrics of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Points in the returned result (skipped/infeasible points excluded).
    pub points: usize,
    /// Wall-clock time of the whole sweep, milliseconds.
    pub wall_ms: f64,
    /// Sweep throughput, points per second.
    pub points_per_sec: f64,
    /// How many returned points carry a degraded (budget-tripped) report.
    pub degraded: usize,
    /// Worker threads actually used (after clamping to the point count).
    pub workers: usize,
    /// Per-point evaluation wall-clock, milliseconds, aligned with the
    /// returned points.
    pub point_wall_ms: Vec<f64>,
    /// Per-point peak-window power, watts, aligned with the returned
    /// points. Empty unless [`ExploreOptions::timeline`] is set.
    pub point_peak_power_w: Vec<f64>,
}

/// A parallel sweep's result: the points (bit-identical to the serial
/// sweep) plus the throughput metrics.
#[derive(Debug, Clone)]
pub struct SweepReport<T> {
    /// The evaluated points, in work-list (serial enumeration) order.
    pub points: Vec<T>,
    /// Sweep metrics.
    pub stats: SweepStats,
}

/// Evaluates `total` independent work items on a scoped worker pool and
/// returns `(point, eval_ms)` pairs in index order. `eval` returning
/// `Ok(None)` marks an absent (skipped) point; an `Err` cancels indices
/// above it and the lowest-indexed error is propagated (see module docs).
fn run_indexed<T, F>(
    total: usize,
    workers: NonZeroUsize,
    eval: F,
) -> Result<(Vec<(T, f64)>, usize), BuildEstimatorError>
where
    T: Send,
    F: Fn(usize) -> Result<Option<T>, BuildEstimatorError> + Sync,
{
    type Slot<T> = Option<Result<Option<(T, f64)>, BuildEstimatorError>>;
    let workers = workers.get().min(total.max(1));
    let next = AtomicUsize::new(0);
    let min_err = AtomicUsize::new(usize::MAX);
    let (tx, rx) = mpsc::channel();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, min_err, eval) = (&next, &min_err, &eval);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // Indices are claimed in increasing order, so once one is
                // past the end or above a known failure, all later claims
                // would be too: stop this worker.
                if i >= total || i > min_err.load(Ordering::Acquire) {
                    break;
                }
                let t0 = Instant::now();
                let out = match eval(i) {
                    Ok(point) => Ok(point.map(|p| (p, t0.elapsed().as_secs_f64() * 1e3))),
                    Err(e) => {
                        min_err.fetch_min(i, Ordering::AcqRel);
                        Err(e)
                    }
                };
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Slot<T>> = std::iter::repeat_with(|| None).take(total).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    let mut items = Vec::with_capacity(total);
    for slot in slots {
        match slot {
            Some(Ok(Some(item))) => items.push(item),
            Some(Ok(None)) | None => {} // skipped, or cancelled past an error
            Some(Err(e)) => return Err(e),
        }
    }
    Ok((items, workers))
}

/// Wraps collected items, timings and per-point peaks into a
/// [`SweepReport`].
fn finish<T>(
    items: Vec<((T, Option<f64>), f64)>,
    t0: Instant,
    workers: usize,
    report_of: impl Fn(&T) -> &CoSimReport,
) -> SweepReport<T> {
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut points = Vec::with_capacity(items.len());
    let mut point_wall_ms = Vec::with_capacity(items.len());
    let mut point_peak_power_w = Vec::new();
    for ((point, peak), ms) in items {
        points.push(point);
        point_wall_ms.push(ms);
        if let Some(w) = peak {
            point_peak_power_w.push(w);
        }
    }
    let degraded = points
        .iter()
        .filter(|p| report_of(p).outcome.is_degraded())
        .count();
    let points_per_sec = if wall_ms > 0.0 {
        points.len() as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    SweepReport {
        stats: SweepStats {
            points: points.len(),
            wall_ms,
            points_per_sec,
            degraded,
            workers,
            point_wall_ms,
            point_peak_power_w,
        },
        points,
    }
}

/// The parallel counterpart of
/// [`explore_bus_architecture`](crate::explore_bus_architecture): same
/// enumeration (every priority permutation × every DMA size), same
/// bit-for-bit results, fanned out over `options.workers` threads.
///
/// # Errors
///
/// Returns the lowest-enumeration-order [`BuildEstimatorError`] — the
/// same error the serial sweep returns.
pub fn explore_bus_architecture_parallel(
    soc: &SocDescription,
    base: &CoSimConfig,
    prioritized_procs: &[ProcId],
    dma_sizes: &[u32],
    options: &ExploreOptions,
) -> Result<SweepReport<ExplorationPoint>, BuildEstimatorError> {
    if options.verify_first {
        crate::verify::gate(crate::verify::verify_soc(soc))?;
    }
    let config = match &options.watchdog {
        Some(w) => base.with_watchdog(w.clone()),
        None => base.clone(),
    };
    let perms = permutations(prioritized_procs);
    let total = perms.len() * dma_sizes.len();
    let t0 = Instant::now();
    let (items, workers) = run_indexed(total, options.workers, |i| {
        let perm = &perms[i / dma_sizes.len()];
        let dma = dma_sizes[i % dma_sizes.len()];
        eval_bus_point(soc, &config, perm, dma, options.profile.as_ref(), options.timeline)
            .map(Some)
    })?;
    Ok(finish(items, t0, workers, |p| &p.report))
}

/// The parallel counterpart of
/// [`explore_partitions`](crate::explore_partitions): every 2^n HW/SW
/// partition of `movable`, infeasible (unsynthesizable) points absent,
/// results bit-for-bit identical to the serial sweep.
///
/// # Errors
///
/// Rejects more than 16 movable processes, and propagates the
/// lowest-enumeration-order build failure that is not a synthesis
/// infeasibility.
pub fn explore_partitions_parallel(
    soc: &SocDescription,
    base: &CoSimConfig,
    movable: &[ProcId],
    options: &ExploreOptions,
) -> Result<SweepReport<PartitionPoint>, BuildEstimatorError> {
    if options.verify_first {
        crate::verify::gate(crate::verify::verify_soc(soc))?;
    }
    check_partition_count(movable)?;
    let config = match &options.watchdog {
        Some(w) => base.with_watchdog(w.clone()),
        None => base.clone(),
    };
    let total = 1usize << movable.len();
    let t0 = Instant::now();
    let (items, workers) = run_indexed(total, options.workers, |i| {
        eval_partition_point(
            soc,
            &config,
            movable,
            i as u32,
            options.profile.as_ref(),
            options.timeline,
        )
    })?;
    Ok(finish(items, t0, workers, |p| &p.report))
}

/// The parallel counterpart of
/// [`explore_power_policies`](crate::explore_power_policies): one
/// co-simulation per policy, bit-for-bit identical to the serial sweep
/// at every worker count (leakage spans settle in simulation order
/// inside each single-threaded point, so worker scheduling cannot
/// reorder any float accumulation).
///
/// # Errors
///
/// Returns the lowest-enumeration-order [`BuildEstimatorError`] — the
/// same error the serial sweep returns, including policy-validation
/// failures.
pub fn explore_power_policies_parallel(
    soc: &SocDescription,
    base: &CoSimConfig,
    policies: &[crate::powermgmt::PowerPolicy],
    options: &ExploreOptions,
) -> Result<SweepReport<PowerPoint>, BuildEstimatorError> {
    if options.verify_first {
        crate::verify::gate(crate::verify::verify_soc(soc))?;
    }
    let config = match &options.watchdog {
        Some(w) => base.with_watchdog(w.clone()),
        None => base.clone(),
    };
    let t0 = Instant::now();
    let (items, workers) = run_indexed(policies.len(), options.workers, |i| {
        eval_power_point(soc, &config, &policies[i], options.profile.as_ref(), options.timeline)
            .map(Some)
    })?;
    Ok(finish(items, t0, workers, |p| &p.report))
}

/// The parallel counterpart of
/// [`explore_fault_matrix`](crate::explore_fault_matrix): one
/// co-simulation per fault scenario, bit-for-bit identical to the
/// serial sweep at every worker count, with every point's provenance
/// partition intact.
///
/// # Errors
///
/// Returns the lowest-enumeration-order [`BuildEstimatorError`] — the
/// same error the serial sweep returns, including fault plans naming
/// unknown events or processes.
pub fn explore_fault_matrix_parallel(
    soc: &SocDescription,
    base: &CoSimConfig,
    scenarios: &[(String, FaultPlan)],
    options: &ExploreOptions,
) -> Result<SweepReport<FaultPoint>, BuildEstimatorError> {
    if options.verify_first {
        crate::verify::gate(crate::verify::verify_soc(soc))?;
    }
    let config = match &options.watchdog {
        Some(w) => base.with_watchdog(w.clone()),
        None => base.clone(),
    };
    let t0 = Instant::now();
    let (items, workers) = run_indexed(scenarios.len(), options.workers, |i| {
        let (label, plan) = &scenarios[i];
        eval_fault_point(soc, &config, label, plan, options.profile.as_ref(), options.timeline)
            .map(Some)
    })?;
    Ok(finish(items, t0, workers, |p| &p.report))
}

/// The parallel counterpart of
/// [`explore_stimulus_seeds`](crate::explore_stimulus_seeds): one
/// co-simulation per Monte-Carlo stimulus seed, bit-for-bit identical
/// to the serial sweep at every worker count (each variant's jittered
/// schedule is a pure function of its seed).
///
/// # Errors
///
/// Returns the lowest-enumeration-order [`BuildEstimatorError`] — the
/// same error the serial sweep returns.
pub fn explore_stimulus_seeds_parallel(
    soc: &SocDescription,
    base: &CoSimConfig,
    seeds: &[u64],
    jitter: &StimulusJitter,
    options: &ExploreOptions,
) -> Result<SweepReport<StimulusPoint>, BuildEstimatorError> {
    if options.verify_first {
        crate::verify::gate(crate::verify::verify_soc(soc))?;
    }
    let config = match &options.watchdog {
        Some(w) => base.with_watchdog(w.clone()),
        None => base.clone(),
    };
    let t0 = Instant::now();
    let (items, workers) = run_indexed(seeds.len(), options.workers, |i| {
        eval_stimulus_point(
            soc,
            &config,
            seeds[i],
            jitter,
            options.profile.as_ref(),
            options.timeline,
        )
        .map(Some)
    })?;
    Ok(finish(items, t0, workers, |p| &p.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_bus_architecture, explore_partitions};
    use cfsm::{Cfg, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt};

    /// A three-process SOC with shared-memory traffic so priorities and
    /// DMA sizes have real energy consequences.
    fn sweep_soc() -> SocDescription {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let ack = nb.event(EventDef::valued("ACK"));
        for (name, mapping) in [
            ("alpha", Implementation::Sw),
            ("beta", Implementation::Hw),
            ("gamma", Implementation::Hw),
        ] {
            let mut mb = Cfsm::builder(name);
            let s = mb.state("s");
            let v = mb.var("v", 0);
            mb.transition(
                s,
                vec![go],
                None,
                Cfg::straight_line(vec![
                    Stmt::Assign {
                        var: v,
                        expr: Expr::add(Expr::Var(v), Expr::Const(2)),
                    },
                    Stmt::MemWrite {
                        addr: Expr::Const(16),
                        value: Expr::Var(v),
                    },
                    Stmt::Emit {
                        event: ack,
                        value: Some(Expr::Var(v)),
                    },
                ]),
                s,
            );
            nb.process(mb.finish().expect("valid machine"), mapping);
        }
        SocDescription {
            name: "sweep".into(),
            network: nb.finish().expect("valid network"),
            stimulus: (0..4).map(|i| (i * 8_000, EventOccurrence::pure(go))).collect(),
            priorities: vec![1, 2, 3],
        }
    }

    fn points_bitwise_equal(a: &[ExplorationPoint], b: &[ExplorationPoint]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.dma_block_size == y.dma_block_size
                    && x.priorities == y.priorities
                    && x.label == y.label
                    && x.report.golden_snapshot() == y.report.golden_snapshot()
            })
    }

    #[test]
    fn parallel_bus_sweep_matches_serial_bitwise() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let procs: Vec<ProcId> = soc.network.process_ids().collect();
        let dmas = [2u32, 8, 32];
        let serial = explore_bus_architecture(&soc, &config, &procs, &dmas).expect("serial");
        for workers in [1usize, 2, 5] {
            let par = explore_bus_architecture_parallel(
                &soc,
                &config,
                &procs,
                &dmas,
                &ExploreOptions::with_workers(workers),
            )
            .expect("parallel");
            assert!(
                points_bitwise_equal(&serial, &par.points),
                "divergence at workers = {workers}"
            );
            assert_eq!(par.stats.points, serial.len());
            assert_eq!(par.stats.degraded, 0);
            assert_eq!(par.stats.point_wall_ms.len(), serial.len());
            assert!(par.stats.wall_ms > 0.0 && par.stats.points_per_sec > 0.0);
        }
    }

    #[test]
    fn parallel_partition_sweep_matches_serial() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let movable: Vec<ProcId> = soc.network.process_ids().take(2).collect();
        let serial = explore_partitions(&soc, &config, &movable).expect("serial");
        for workers in [1usize, 4] {
            let par = explore_partitions_parallel(
                &soc,
                &config,
                &movable,
                &ExploreOptions::with_workers(workers),
            )
            .expect("parallel");
            assert_eq!(par.points.len(), serial.len());
            for (s, p) in serial.iter().zip(&par.points) {
                assert_eq!(s.label, p.label);
                assert_eq!(s.mapping, p.mapping);
                assert_eq!(
                    s.report.golden_snapshot(),
                    p.report.golden_snapshot(),
                    "partition `{}` diverged at workers = {workers}",
                    s.label
                );
            }
        }
    }

    #[test]
    fn parallel_power_sweep_matches_serial_bitwise() {
        use crate::powermgmt::{GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy};
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let policies = vec![
            PowerPolicy::none(),
            PowerPolicy::named("leaky").with_leakage(LeakageModel::with_default_rate(1.0e-3)),
            PowerPolicy::named("gated")
                .with_leakage(LeakageModel::with_default_rate(1.0e-3))
                .gate("alpha", GatingPolicy::clock(200))
                .gate("beta", GatingPolicy::power(400, 1.0e-6, 5)),
            PowerPolicy::named("dvfs")
                .with_operating_point(OperatingPoint::new("low", 0.8, 0.5))
                .dvfs("gamma", 0),
        ];
        let serial =
            crate::explore::explore_power_policies(&soc, &config, &policies).expect("serial");
        for workers in [1usize, 3] {
            let par = explore_power_policies_parallel(
                &soc,
                &config,
                &policies,
                &ExploreOptions::with_workers(workers),
            )
            .expect("parallel");
            assert_eq!(par.points.len(), serial.len());
            for (s, p) in serial.iter().zip(&par.points) {
                assert_eq!(s.policy_name, p.policy_name);
                assert_eq!(
                    s.report.golden_snapshot(),
                    p.report.golden_snapshot(),
                    "policy `{}` diverged at workers = {workers}",
                    s.policy_name
                );
                assert_eq!(
                    s.energy_j().to_bits(),
                    p.energy_j().to_bits(),
                    "policy `{}` energy diverged at workers = {workers}",
                    s.policy_name
                );
            }
        }
    }

    #[test]
    fn parallel_fault_matrix_matches_serial_and_individual_runs() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let scenarios: Vec<(String, FaultPlan)> = vec![
            ("clean".into(), FaultPlan::new()),
            ("drop_go".into(), FaultPlan::new().drop_event(1, "GO")),
            (
                "dup_ack+stall".into(),
                FaultPlan::new().duplicate_event(8_500, "ACK").stall_bus(9_000, 1_500),
            ),
        ];
        let serial =
            crate::explore::explore_fault_matrix(&soc, &config, &scenarios).expect("serial");
        assert_eq!(serial.len(), scenarios.len());
        for (point, (label, plan)) in serial.iter().zip(&scenarios) {
            assert_eq!(&point.label, label);
            // Each point is bitwise-equal to an individual run of the
            // same scenario, and the provenance partition stays exact
            // even on faulted trajectories.
            let solo = crate::master::CoSimulator::new(
                soc.clone(),
                config.with_faults(plan.clone()),
            )
            .expect("system builds")
            .run();
            assert_eq!(point.report.golden_snapshot(), solo.golden_snapshot());
            point.report.verify_provenance().expect("exact partition");
        }
        for workers in [1usize, 3] {
            let par = explore_fault_matrix_parallel(
                &soc,
                &config,
                &scenarios,
                &ExploreOptions::with_workers(workers),
            )
            .expect("parallel");
            assert_eq!(par.points.len(), serial.len());
            for (s, p) in serial.iter().zip(&par.points) {
                assert_eq!(s.label, p.label);
                assert_eq!(
                    s.report.golden_snapshot(),
                    p.report.golden_snapshot(),
                    "scenario `{}` diverged at workers = {workers}",
                    s.label
                );
            }
        }
    }

    #[test]
    fn parallel_stimulus_sweep_matches_serial_and_individual_runs() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let jitter = StimulusJitter { time: 500, value: 3 };
        let seeds = [1u64, 2, 3, 4, 5];
        let serial = crate::explore::explore_stimulus_seeds(&soc, &config, &seeds, &jitter)
            .expect("serial");
        assert_eq!(serial.len(), seeds.len());
        // Jitter genuinely perturbs the runs: not all seeds land on the
        // identical report.
        let distinct: std::collections::BTreeSet<String> = serial
            .iter()
            .map(|p| p.report.golden_snapshot())
            .collect();
        assert!(distinct.len() > 1, "jitter changed nothing");
        for (point, &seed) in serial.iter().zip(&seeds) {
            assert_eq!(point.seed, seed);
            // Per-point report bitwise-equal to an individual run of the
            // same variant, provenance exact.
            let variant = crate::explore::mc_stimulus_variant(&soc, seed, &jitter);
            let solo = crate::master::CoSimulator::new(variant, config.clone())
                .expect("system builds")
                .run();
            assert_eq!(point.report.golden_snapshot(), solo.golden_snapshot());
            point.report.verify_provenance().expect("exact partition");
        }
        for workers in [1usize, 4] {
            let par = explore_stimulus_seeds_parallel(
                &soc,
                &config,
                &seeds,
                &jitter,
                &ExploreOptions::with_workers(workers),
            )
            .expect("parallel");
            assert_eq!(par.points.len(), serial.len());
            for (s, p) in serial.iter().zip(&par.points) {
                assert_eq!(s.seed, p.seed);
                assert_eq!(
                    s.report.golden_snapshot(),
                    p.report.golden_snapshot(),
                    "seed {} diverged at workers = {workers}",
                    s.seed
                );
            }
        }
    }

    #[test]
    fn stimulus_variants_are_pure_in_the_seed() {
        let soc = sweep_soc();
        let jitter = StimulusJitter::default();
        for seed in [0u64, 9, 0xFFFF_FFFF_FFFF_FFFF] {
            let a = crate::explore::mc_stimulus_variant(&soc, seed, &jitter);
            let b = crate::explore::mc_stimulus_variant(&soc, seed, &jitter);
            assert_eq!(a.stimulus, b.stimulus, "seed {seed}");
            // Times stay sorted so the schedule is a valid stimulus.
            assert!(a.stimulus.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn watchdog_option_bounds_degraded_points_without_hanging() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let procs: Vec<ProcId> = soc.network.process_ids().collect();
        let opts = ExploreOptions::with_workers(2).guarded(desim::WatchdogConfig {
            max_cycles: Some(10_000),
            ..desim::WatchdogConfig::unlimited()
        });
        let par = explore_bus_architecture_parallel(&soc, &config, &procs, &[4], &opts)
            .expect("sweep completes");
        assert_eq!(par.stats.points, par.points.len());
        assert_eq!(
            par.stats.degraded,
            par.points.iter().filter(|p| p.report.outcome.is_degraded()).count()
        );
        // The stimulus runs to cycle 24_000, so a 10_000-cycle budget
        // must degrade every point rather than hang any of them.
        assert_eq!(par.stats.degraded, par.stats.points);
    }

    #[test]
    fn worker_errors_propagate_as_the_serial_error() {
        let soc = sweep_soc();
        // A fault plan naming an unknown event fails CoSimulator::new
        // with a typed error at every point of the sweep.
        let config = CoSimConfig::date2000_defaults()
            .with_faults(crate::faults::FaultPlan::new().drop_event(1, "NO_SUCH_EVENT"));
        let procs: Vec<ProcId> = soc.network.process_ids().collect();
        let serial_err = explore_bus_architecture(&soc, &config, &procs, &[2, 8])
            .expect_err("serial fails");
        let par_err = explore_bus_architecture_parallel(
            &soc,
            &config,
            &procs,
            &[2, 8],
            &ExploreOptions::with_workers(3),
        )
        .expect_err("parallel fails");
        assert_eq!(format!("{serial_err}"), format!("{par_err}"));
    }

    #[test]
    fn empty_work_list_yields_empty_sweep() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let procs: Vec<ProcId> = soc.network.process_ids().collect();
        let par = explore_bus_architecture_parallel(
            &soc,
            &config,
            &procs,
            &[],
            &ExploreOptions::default(),
        )
        .expect("empty sweep");
        assert!(par.points.is_empty());
        assert_eq!(par.stats.points, 0);
    }

    #[test]
    fn timeline_option_adds_peak_column_without_perturbing_results() {
        let soc = sweep_soc();
        let config = CoSimConfig::date2000_defaults();
        let procs: Vec<ProcId> = soc.network.process_ids().collect();
        let dmas = [2u32, 16];
        let plain = explore_bus_architecture_parallel(
            &soc,
            &config,
            &procs,
            &dmas,
            &ExploreOptions::serial(),
        )
        .expect("plain sweep");
        assert!(plain.stats.point_peak_power_w.is_empty());
        let mut peaks_by_workers: Vec<Vec<f64>> = Vec::new();
        for workers in [1usize, 3] {
            let opts =
                ExploreOptions::with_workers(workers).with_timeline(TimelineOptions::new(500));
            let timed = explore_bus_architecture_parallel(&soc, &config, &procs, &dmas, &opts)
                .expect("timeline sweep");
            // One peak per point, every peak physical, and the reports
            // bit-identical to the sink-free sweep.
            assert_eq!(timed.stats.point_peak_power_w.len(), timed.points.len());
            assert!(timed.stats.point_peak_power_w.iter().all(|p| p.is_finite() && *p > 0.0));
            assert!(points_bitwise_equal(&plain.points, &timed.points));
            peaks_by_workers.push(timed.stats.point_peak_power_w.clone());
        }
        // The peak column itself is deterministic across worker counts.
        let bits = |v: &Vec<f64>| v.iter().map(|p| p.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&peaks_by_workers[0]), bits(&peaks_by_workers[1]));
    }

    #[test]
    fn options_constructors() {
        assert_eq!(ExploreOptions::serial().workers.get(), 1);
        assert_eq!(ExploreOptions::with_workers(0).workers.get(), 1);
        assert_eq!(ExploreOptions::with_workers(6).workers.get(), 6);
        assert!(ExploreOptions::default().workers.get() >= 1);
        let guarded = ExploreOptions::serial().guarded(desim::WatchdogConfig {
            max_events: Some(10),
            ..desim::WatchdogConfig::unlimited()
        });
        assert!(guarded.watchdog.is_some());
    }
}
