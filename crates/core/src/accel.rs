//! The composable acceleration pipeline (§4).
//!
//! The master used to hold the three speedup techniques as ad-hoc
//! fields and route every firing through a hand-written `if` cascade.
//! They are now [`AccelLayer`]s stacked in an [`AccelPipeline`]: each
//! layer either *answers* a firing from its own state or *delegates*
//! down, and every layer observes the detailed cost whenever the stack
//! falls all the way through. The assembled order — macro-model, then
//! energy cache, then firing-level sampling, then the detailed backend —
//! reproduces the original dispatch exactly, but each technique is now
//! testable in isolation and new techniques slot in without touching
//! the master.

use crate::caching::EnergyCache;
use crate::config::{Acceleration, CoSimConfig};
use crate::estimator::DetailedCost;
use crate::macromodel::{characterize_hw, characterize_sw, ParameterFile};
use crate::report::Provenance;
use crate::sampling::SamplingConfig;
use cfsm::{MacroOp, PathId, ProcId};
use iss::PowerModel;
use soctrace::{TraceRecord, Tracer};
use std::collections::HashMap;
use std::fmt;

/// How a firing's cost was obtained (speedup accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// Detailed simulator (ISS / gate-level).
    Detailed,
    /// Served by the energy cache.
    Cache,
    /// Computed by the macro-model.
    MacroModel,
    /// Reused under firing-level sampling.
    Sampled,
}

impl CostSource {
    /// Stable lowercase tag, used in trace records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            CostSource::Detailed => "detailed",
            CostSource::Cache => "cache",
            CostSource::MacroModel => "macromodel",
            CostSource::Sampled => "sampling",
        }
    }

    /// The [`Provenance`] of an energy obtained from this source.
    /// `detailed` is the backend's own provenance, used when the firing
    /// fell through the whole acceleration stack.
    pub fn provenance(&self, detailed: Provenance) -> Provenance {
        match self {
            CostSource::Detailed => detailed,
            CostSource::Cache => Provenance::CacheReuse,
            CostSource::MacroModel => Provenance::MacroModel,
            CostSource::Sampled => Provenance::SampledScaled,
        }
    }
}

/// The per-firing facts an acceleration layer may key on.
#[derive(Debug, Clone, Copy)]
pub struct FiringCtx<'a> {
    /// The firing process.
    pub proc: ProcId,
    /// The control path the behavioral execution took.
    pub path: PathId,
    /// Whether the process is hardware-mapped.
    pub is_hw: bool,
    /// The behavioral execution's macro-op trace.
    pub macro_ops: &'a [MacroOp],
    /// Current simulation time, master cycles.
    pub now: u64,
}

/// One acceleration technique in the pipeline.
///
/// A layer either answers a firing from its own state
/// ([`try_answer`](AccelLayer::try_answer) returns `Some`) or delegates
/// to the layers below it; whenever the whole stack delegates to the
/// detailed backend, every layer gets to
/// [`observe_detailed`](AccelLayer::observe_detailed) the true cost.
pub trait AccelLayer: fmt::Debug {
    /// The layer's identifying name, used for [`CostSource`] mapping and
    /// trace records.
    fn name(&self) -> &'static str;

    /// Which [`CostSource`] an answer from this layer counts as.
    fn source(&self) -> CostSource;

    /// Tries to serve the firing from this layer's state.
    fn try_answer(&mut self, ctx: &FiringCtx<'_>, tracer: &mut Tracer) -> Option<DetailedCost>;

    /// Observes the detailed cost of a firing no layer answered.
    fn observe_detailed(&mut self, ctx: &FiringCtx<'_>, cost: DetailedCost) {
        let _ = (ctx, cost);
    }

    /// The energy cache, when this layer is [`CacheLayer`] (introspection
    /// for the Fig. 4 histograms).
    fn energy_cache(&self) -> Option<&EnergyCache> {
        None
    }

    /// The characterized software parameter file, when this layer is
    /// [`MacroModelLayer`].
    fn sw_parameter_file(&self) -> Option<&ParameterFile> {
        None
    }

    /// Sampling counters `(period, served, samples)`, when this layer
    /// is [`SamplingLayer`] (for the compaction-ratio report).
    fn sampling_stats(&self) -> Option<(u32, u64, u64)> {
        None
    }
}

/// Software/hardware power macro-modeling (§4.1): replaces the detailed
/// estimators entirely with characterized additive cost tables.
#[derive(Debug)]
pub struct MacroModelLayer {
    sw: ParameterFile,
    hw: ParameterFile,
}

impl MacroModelLayer {
    /// Characterizes both tables from the configured power models.
    pub fn characterize(config: &CoSimConfig) -> Self {
        MacroModelLayer {
            sw: characterize_sw(&PowerModel::of_kind(config.sw_power)),
            hw: characterize_hw(&config.synth, &config.hw_power),
        }
    }

    /// Builds from explicit tables.
    pub fn from_tables(sw: ParameterFile, hw: ParameterFile) -> Self {
        MacroModelLayer { sw, hw }
    }
}

impl AccelLayer for MacroModelLayer {
    fn name(&self) -> &'static str {
        "macromodel"
    }

    fn source(&self) -> CostSource {
        CostSource::MacroModel
    }

    fn try_answer(&mut self, ctx: &FiringCtx<'_>, _tracer: &mut Tracer) -> Option<DetailedCost> {
        let params = if ctx.is_hw { &self.hw } else { &self.sw };
        let (cycles, energy_j) = params.estimate(ctx.macro_ops);
        Some(DetailedCost {
            cycles: cycles.max(1),
            energy_j,
        })
    }

    fn sw_parameter_file(&self) -> Option<&ParameterFile> {
        Some(&self.sw)
    }
}

/// Energy and delay caching (§4.2): serves a `(process, path)` pair from
/// accumulated statistics once enough consistent samples exist.
#[derive(Debug)]
pub struct CacheLayer {
    cache: EnergyCache,
}

impl CacheLayer {
    /// Builds an empty cache with the given thresholds.
    pub fn new(config: crate::caching::CachingConfig) -> Self {
        CacheLayer {
            cache: EnergyCache::new(config),
        }
    }
}

impl AccelLayer for CacheLayer {
    fn name(&self) -> &'static str {
        "cache"
    }

    fn source(&self) -> CostSource {
        CostSource::Cache
    }

    fn try_answer(&mut self, ctx: &FiringCtx<'_>, tracer: &mut Tracer) -> Option<DetailedCost> {
        let key = (ctx.proc, ctx.path);
        let hit = self.cache.lookup(key);
        tracer.emit(|| TraceRecord::EnergyCacheLookup {
            at: ctx.now,
            process: ctx.proc.0,
            path: ctx.path.0,
            hit: hit.is_some(),
        });
        hit.map(|h| DetailedCost {
            cycles: h.cycles,
            energy_j: h.energy_j,
        })
    }

    fn observe_detailed(&mut self, ctx: &FiringCtx<'_>, cost: DetailedCost) {
        self.cache
            .record((ctx.proc, ctx.path), cost.energy_j, cost.cycles);
    }

    fn energy_cache(&self) -> Option<&EnergyCache> {
        Some(&self.cache)
    }
}

/// Firing-level statistical sampling (§4.3): after a detailed sample of
/// a `(process, path)` pair, its cost is reused for the next
/// `period - 1` firings of that pair.
#[derive(Debug)]
pub struct SamplingLayer {
    period: u32,
    state: HashMap<(ProcId, PathId), (u32, DetailedCost)>,
    /// Firings answered by reusing the last sample.
    served: u64,
    /// Detailed samples observed.
    samples: u64,
}

impl SamplingLayer {
    /// Builds an empty sampler with the given period.
    pub fn new(config: SamplingConfig) -> Self {
        SamplingLayer {
            period: config.period,
            state: HashMap::new(),
            served: 0,
            samples: 0,
        }
    }
}

impl AccelLayer for SamplingLayer {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn source(&self) -> CostSource {
        CostSource::Sampled
    }

    fn try_answer(&mut self, ctx: &FiringCtx<'_>, _tracer: &mut Tracer) -> Option<DetailedCost> {
        let key = (ctx.proc, ctx.path);
        if let Some((countdown, last)) = self.state.get_mut(&key) {
            if *countdown > 0 {
                *countdown -= 1;
                self.served += 1;
                return Some(*last);
            }
            // The reuse window closed: re-arm it and delegate so the
            // next detailed cost refreshes the sample.
            *countdown = self.period.saturating_sub(1);
        }
        None
    }

    fn observe_detailed(&mut self, ctx: &FiringCtx<'_>, cost: DetailedCost) {
        self.samples += 1;
        let entry = self
            .state
            .entry((ctx.proc, ctx.path))
            .or_insert((self.period.saturating_sub(1), cost));
        entry.1 = cost;
    }

    fn sampling_stats(&self) -> Option<(u32, u64, u64)> {
        Some((self.period, self.served, self.samples))
    }
}

/// The assembled stack of acceleration layers.
///
/// [`estimate`](AccelPipeline::estimate) walks the layers top-down; the
/// first answer wins, and a full fall-through runs the supplied detailed
/// closure and fans the true cost back out to every layer.
#[derive(Debug, Default)]
pub struct AccelPipeline {
    layers: Vec<Box<dyn AccelLayer>>,
    /// Firings answered per layer, parallel to `layers`.
    answered: Vec<u64>,
}

impl AccelPipeline {
    /// An empty pipeline: every firing goes to the detailed backend.
    pub fn none() -> Self {
        AccelPipeline::default()
    }

    /// Assembles the paper's layer order from an [`Acceleration`]
    /// config: macro-model, then energy cache, then sampling.
    pub fn from_config(accel: &Acceleration, config: &CoSimConfig) -> Self {
        let mut p = AccelPipeline::none();
        if accel.macromodel {
            p.push(Box::new(MacroModelLayer::characterize(config)));
        }
        if let Some(c) = &accel.caching {
            p.push(Box::new(CacheLayer::new(c.clone())));
        }
        if let Some(s) = &accel.sampling {
            p.push(Box::new(SamplingLayer::new(*s)));
        }
        p
    }

    /// Appends a layer at the bottom of the stack.
    pub fn push(&mut self, layer: Box<dyn AccelLayer>) {
        self.layers.push(layer);
        self.answered.push(0);
    }

    /// Number of stacked layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when no layer is stacked (pure detailed simulation).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The stacked layer names, top-down.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Routes one firing through the stack (see type docs). `detailed`
    /// is only invoked on a full fall-through.
    pub fn estimate(
        &mut self,
        ctx: &FiringCtx<'_>,
        tracer: &mut Tracer,
        detailed: &mut dyn FnMut() -> DetailedCost,
    ) -> (DetailedCost, CostSource) {
        let answered = &mut self.answered;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Some(cost) = layer.try_answer(ctx, tracer) {
                answered[i] += 1;
                let name = layer.name();
                tracer.emit(|| TraceRecord::LayerAnswered {
                    at: ctx.now,
                    process: ctx.proc.0,
                    layer: name,
                    cycles: cost.cycles,
                    energy_j: cost.energy_j,
                });
                return (cost, layer.source());
            }
        }
        let cost = detailed();
        for layer in &mut self.layers {
            layer.observe_detailed(ctx, cost);
        }
        (cost, CostSource::Detailed)
    }

    /// The energy cache, when a [`CacheLayer`] is stacked.
    pub fn energy_cache(&self) -> Option<&EnergyCache> {
        self.layers.iter().find_map(|l| l.energy_cache())
    }

    /// The characterized software parameter file, when a
    /// [`MacroModelLayer`] is stacked.
    pub fn sw_parameter_file(&self) -> Option<&ParameterFile> {
        self.layers.iter().find_map(|l| l.sw_parameter_file())
    }

    /// Firings answered per layer, top-down: `(layer name, count)`.
    pub fn answered_counts(&self) -> Vec<(&'static str, u64)> {
        self.layers
            .iter()
            .zip(&self.answered)
            .map(|(l, &n)| (l.name(), n))
            .collect()
    }

    /// Sampling counters `(period, served, samples)`, when a
    /// [`SamplingLayer`] is stacked.
    pub fn sampling_stats(&self) -> Option<(u32, u64, u64)> {
        self.layers.iter().find_map(|l| l.sampling_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching::CachingConfig;
    use soctrace::{MemorySink, SharedSink};

    fn ctx(now: u64) -> FiringCtx<'static> {
        FiringCtx {
            proc: ProcId(0),
            path: PathId(0),
            is_hw: false,
            macro_ops: &[],
            now,
        }
    }

    /// A stub detailed estimator: counts calls, returns a scripted cost.
    struct Stub {
        calls: u64,
        cost: DetailedCost,
    }

    impl Stub {
        fn new(cycles: u64, energy_j: f64) -> Self {
            Stub {
                calls: 0,
                cost: DetailedCost { cycles, energy_j },
            }
        }

        fn run(
            &mut self,
            pipe: &mut AccelPipeline,
            ctx: &FiringCtx<'_>,
        ) -> (DetailedCost, CostSource) {
            let mut tracer = Tracer::disabled();
            let cost = self.cost;
            let calls = &mut self.calls;
            pipe.estimate(ctx, &mut tracer, &mut || {
                *calls += 1;
                cost
            })
        }
    }

    #[test]
    fn empty_pipeline_always_runs_detailed() {
        let mut pipe = AccelPipeline::none();
        assert!(pipe.is_empty());
        let mut stub = Stub::new(10, 1.0);
        for i in 0..5 {
            let (cost, source) = stub.run(&mut pipe, &ctx(i));
            assert_eq!(source, CostSource::Detailed);
            assert_eq!(cost.cycles, 10);
        }
        assert_eq!(stub.calls, 5);
    }

    #[test]
    fn cache_layer_serves_after_iss_call_threshold() {
        // thresh_iss_calls = 2: the first two firings of a path are
        // detailed (building statistics), the third is served.
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(CacheLayer::new(CachingConfig {
            thresh_variance: 0.20,
            thresh_iss_calls: 2,
            keep_samples: false,
        })));
        let mut stub = Stub::new(7, 2.5);
        for want in [CostSource::Detailed, CostSource::Detailed, CostSource::Cache] {
            let (cost, source) = stub.run(&mut pipe, &ctx(0));
            assert_eq!(source, want);
            assert_eq!(cost.cycles, 7);
        }
        assert_eq!(stub.calls, 2);
    }

    #[test]
    fn cache_layer_respects_variance_threshold() {
        // Costs alternate 1.0 / 3.0 → coefficient of variation 0.5,
        // above the 0.2 threshold: the cache must never serve.
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(CacheLayer::new(CachingConfig {
            thresh_variance: 0.20,
            thresh_iss_calls: 2,
            keep_samples: false,
        })));
        let mut stub = Stub::new(5, 1.0);
        for i in 0..6 {
            stub.cost.energy_j = if i % 2 == 0 { 1.0 } else { 3.0 };
            let (_, source) = stub.run(&mut pipe, &ctx(0));
            assert_eq!(source, CostSource::Detailed, "firing {i}");
        }
        assert_eq!(stub.calls, 6);
    }

    #[test]
    fn cache_boundary_exact_variance_is_eligible() {
        // Eligibility is `cv <= thresh`: a path whose samples are all
        // identical (cv = 0) qualifies even at thresh_variance = 0.0.
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(CacheLayer::new(CachingConfig {
            thresh_variance: 0.0,
            thresh_iss_calls: 1,
            keep_samples: false,
        })));
        let mut stub = Stub::new(3, 4.0);
        let (_, s1) = stub.run(&mut pipe, &ctx(0));
        let (_, s2) = stub.run(&mut pipe, &ctx(0));
        assert_eq!(s1, CostSource::Detailed);
        assert_eq!(s2, CostSource::Cache);
    }

    #[test]
    fn sampling_layer_reuses_for_period_minus_one_firings() {
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(SamplingLayer::new(SamplingConfig { period: 3 })));
        let mut stub = Stub::new(9, 1.5);
        let sources: Vec<CostSource> =
            (0..7).map(|i| stub.run(&mut pipe, &ctx(i)).1).collect();
        assert_eq!(
            sources,
            vec![
                CostSource::Detailed, // sample
                CostSource::Sampled,
                CostSource::Sampled,
                CostSource::Detailed, // window closed → resample
                CostSource::Sampled,
                CostSource::Sampled,
                CostSource::Detailed,
            ]
        );
        assert_eq!(stub.calls, 3);
    }

    #[test]
    fn sampling_period_one_never_reuses() {
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(SamplingLayer::new(SamplingConfig { period: 1 })));
        let mut stub = Stub::new(2, 0.5);
        for i in 0..4 {
            let (_, source) = stub.run(&mut pipe, &ctx(i));
            assert_eq!(source, CostSource::Detailed);
        }
        assert_eq!(stub.calls, 4);
    }

    #[test]
    fn macromodel_layer_shadows_everything_below() {
        let mut pipe = AccelPipeline::none();
        // Empty tables suffice: the test contexts carry empty macro-op
        // traces, which price to the 1-cycle floor.
        pipe.push(Box::new(MacroModelLayer::from_tables(
            ParameterFile::new(),
            ParameterFile::new(),
        )));
        pipe.push(Box::new(SamplingLayer::new(SamplingConfig { period: 2 })));
        let mut stub = Stub::new(99, 9.9);
        for i in 0..3 {
            let (cost, source) = stub.run(&mut pipe, &ctx(i));
            assert_eq!(source, CostSource::MacroModel);
            assert_eq!(cost.cycles, 1, "empty macro-op trace floors at 1 cycle");
        }
        assert_eq!(stub.calls, 0, "macro-model never delegates");
    }

    #[test]
    fn fall_through_updates_every_layer() {
        // Cache above sampling: the first firing falls through both, and
        // both observe it — the cache accumulates a sample and the
        // sampler opens a reuse window.
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(CacheLayer::new(CachingConfig {
            thresh_variance: 0.20,
            thresh_iss_calls: 3,
            keep_samples: false,
        })));
        pipe.push(Box::new(SamplingLayer::new(SamplingConfig { period: 4 })));
        let mut stub = Stub::new(6, 2.0);
        let (_, s1) = stub.run(&mut pipe, &ctx(0));
        assert_eq!(s1, CostSource::Detailed);
        let cache = pipe.energy_cache().expect("cache layer stacked");
        assert_eq!(
            cache.path_stats((ProcId(0), PathId(0))).map(|s| s.energy.count()),
            Some(1),
            "cache observed the fall-through"
        );
        let (_, s2) = stub.run(&mut pipe, &ctx(1));
        assert_eq!(s2, CostSource::Sampled, "sampler observed it too");
    }

    #[test]
    fn pipeline_emits_layer_answered_records() {
        let mut pipe = AccelPipeline::none();
        pipe.push(Box::new(CacheLayer::new(CachingConfig {
            thresh_variance: 0.20,
            thresh_iss_calls: 1,
            keep_samples: false,
        })));
        let shared = SharedSink::new(MemorySink::new());
        let mut tracer = Tracer::new(Box::new(shared.clone()));
        let mut run = |tracer: &mut Tracer| {
            pipe.estimate(&ctx(0), tracer, &mut || DetailedCost {
                cycles: 4,
                energy_j: 1.0,
            })
        };
        let (_, s1) = run(&mut tracer);
        let (_, s2) = run(&mut tracer);
        assert_eq!((s1, s2), (CostSource::Detailed, CostSource::Cache));
        shared.with(|sink| {
            assert_eq!(sink.of_kind("energy_cache_lookup").len(), 2);
            assert_eq!(sink.of_kind("layer_answered").len(), 1);
        });
    }

    #[test]
    fn from_config_orders_macromodel_cache_sampling() {
        let accel = Acceleration {
            macromodel: true,
            caching: Some(CachingConfig::new()),
            sampling: Some(SamplingConfig { period: 4 }),
        };
        let pipe = AccelPipeline::from_config(&accel, &CoSimConfig::date2000_defaults());
        assert_eq!(pipe.layer_names(), vec!["macromodel", "cache", "sampling"]);
        assert!(pipe.energy_cache().is_some());
        assert!(pipe.sw_parameter_file().is_some());
        let empty = AccelPipeline::from_config(&Acceleration::none(), &CoSimConfig::default());
        assert!(empty.is_empty());
    }
}
