//! Design-space exploration driver (§5.3 of the paper).
//!
//! The co-estimation tool exists to be called *iteratively*: Fig. 7
//! sweeps all meaningful assignments of bus/RTOS priorities and DMA
//! block sizes for the TCP/IP subsystem (6 × 8 = 48 points) and picks the
//! minimum-energy configuration. This module provides that sweep.

use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::BuildEstimatorError;
use crate::master::{CoSimReport, CoSimulator};
use cfsm::ProcId;

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// DMA block size used.
    pub dma_block_size: u32,
    /// The priority assignment: `(process, priority)` pairs.
    pub priorities: Vec<(ProcId, u8)>,
    /// Human-readable label of the priority order.
    pub label: String,
    /// The full co-estimation report.
    pub report: CoSimReport,
}

impl ExplorationPoint {
    /// Total energy of this configuration, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// All permutations of the given items (Heap's algorithm, deterministic
/// order).
pub fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    fn heap<T: Clone>(arr: &mut Vec<T>, k: usize, out: &mut Vec<Vec<T>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(arr, k - 1, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    let mut out = Vec::new();
    let k = arr.len();
    heap(&mut arr, k, &mut out);
    out
}

/// Sweeps the communication-architecture design space: every priority
/// permutation of `prioritized_procs` × every DMA size in `dma_sizes`.
///
/// Priorities are assigned in descending order along each permutation
/// (first process gets the highest priority).
///
/// # Errors
///
/// Returns the first [`BuildEstimatorError`] encountered.
pub fn explore_bus_architecture(
    soc: &SocDescription,
    base: &CoSimConfig,
    prioritized_procs: &[ProcId],
    dma_sizes: &[u32],
) -> Result<Vec<ExplorationPoint>, BuildEstimatorError> {
    let perms = permutations(prioritized_procs);
    let mut points = Vec::with_capacity(perms.len() * dma_sizes.len());
    for perm in &perms {
        let mut soc_variant = soc.clone();
        let n = perm.len() as u8;
        let mut priorities = Vec::with_capacity(perm.len());
        let mut label_parts = Vec::with_capacity(perm.len());
        for (rank, &p) in perm.iter().enumerate() {
            let pri = n - rank as u8; // descending
            soc_variant.set_priority(p, pri);
            priorities.push((p, pri));
            label_parts.push(soc.network.cfsm(p).name().to_string());
        }
        let label = label_parts.join(" > ");
        for &dma in dma_sizes {
            let config = base.with_dma_block_size(dma);
            let mut sim = CoSimulator::new(soc_variant.clone(), config)?;
            let report = sim.run();
            points.push(ExplorationPoint {
                dma_block_size: dma,
                priorities: priorities.clone(),
                label: label.clone(),
                report,
            });
        }
    }
    Ok(points)
}

/// One evaluated HW/SW partition.
#[derive(Debug, Clone)]
pub struct PartitionPoint {
    /// The mapping of each process, in process-id order.
    pub mapping: Vec<cfsm::Implementation>,
    /// Human-readable label, e.g. `create_pack=SW checksum=HW`.
    pub label: String,
    /// The full co-estimation report.
    pub report: CoSimReport,
}

impl PartitionPoint {
    /// Total energy of this partition, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// Evaluates every 2^n HW/SW partition of the given processes (§5.2
/// mentions using the tool "to rank several different HW/SW
/// partitions"). Processes not listed keep their original mapping.
///
/// Skips partitions whose hardware mapping fails to synthesize (e.g.
/// processes using division) — such points are simply absent from the
/// result, mirroring a real flow's infeasible designs.
///
/// # Errors
///
/// Propagates estimator-build failures that are not synthesis
/// infeasibilities.
pub fn explore_partitions(
    soc: &SocDescription,
    config: &CoSimConfig,
    movable: &[ProcId],
) -> Result<Vec<PartitionPoint>, BuildEstimatorError> {
    use cfsm::Implementation;
    let n = movable.len();
    assert!(n <= 16, "too many movable processes for exhaustive sweep");
    let mut points = Vec::with_capacity(1 << n);
    for bits in 0..(1u32 << n) {
        let mut soc_variant = soc.clone();
        let mut label_parts = Vec::with_capacity(n);
        for (k, &p) in movable.iter().enumerate() {
            let m = if bits >> k & 1 == 1 {
                Implementation::Hw
            } else {
                Implementation::Sw
            };
            soc_variant.network.set_mapping(p, m);
            label_parts.push(format!("{}={}", soc.network.cfsm(p).name(), m));
        }
        let label = label_parts.join(" ");
        match CoSimulator::new(soc_variant.clone(), config.clone()) {
            Ok(mut sim) => {
                let report = sim.run();
                points.push(PartitionPoint {
                    mapping: soc_variant
                        .network
                        .process_ids()
                        .map(|p| soc_variant.network.mapping(p))
                        .collect(),
                    label,
                    report,
                });
            }
            Err(BuildEstimatorError::Synth(_, _)) => continue, // infeasible in HW
            Err(e) => return Err(e),
        }
    }
    Ok(points)
}

/// The minimum-energy point of an exploration.
pub fn minimum_energy(points: &[ExplorationPoint]) -> Option<&ExplorationPoint> {
    points.iter().min_by(|a, b| a.energy_j().total_cmp(&b.energy_j()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2]).len(), 2);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[1, 2, 3, 4]).len(), 24);
    }

    #[test]
    fn permutations_are_distinct_and_complete() {
        let mut ps = permutations(&[1, 2, 3]);
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), 6);
        for p in &ps {
            let mut q = p.clone();
            q.sort_unstable();
            assert_eq!(q, vec![1, 2, 3]);
        }
    }

    #[test]
    fn permutations_deterministic() {
        assert_eq!(permutations(&['a', 'b', 'c']), permutations(&['a', 'b', 'c']));
    }
}
