//! Design-space exploration driver (§5.3 of the paper).
//!
//! The co-estimation tool exists to be called *iteratively*: Fig. 7
//! sweeps all meaningful assignments of bus/RTOS priorities and DMA
//! block sizes for the TCP/IP subsystem (6 × 8 = 48 points) and picks the
//! minimum-energy configuration. This module provides that sweep.
//!
//! The serial entry points here and the worker-pool entry points in
//! [`crate::explore_parallel`] share the per-point evaluators
//! [`eval_bus_point`] / [`eval_partition_point`], so both paths evaluate
//! *exactly* the same configurations in the same enumeration order — the
//! foundation of the parallel engine's determinism contract.

use crate::config::{CoSimConfig, SocDescription};
use crate::estimator::BuildEstimatorError;
use crate::explore_parallel::TimelineOptions;
use crate::faults::FaultPlan;
use crate::master::CoSimulator;
use crate::report::CoSimReport;
use cfsm::ProcId;
use detrand::Rng;
use soctrace::{
    ArcSharedSink, PowerTimelineSink, ProfileReport, ProfileSink, SharedSink, SpanKind,
    TimelineConfig,
};
use std::time::Instant;

/// Runs one sweep-point simulation, optionally wiring the shared
/// profiler into the master and timing the whole point as a
/// [`SpanKind::SweepPoint`] span, and optionally attaching a per-point
/// power timeline whose peak-window power rides back with the report.
/// Profiling and tracing never perturb results (observability only),
/// so the sweeps stay bit-identical with or without either sink.
fn run_point(
    sim: &mut CoSimulator,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
    clock_hz: f64,
) -> (CoSimReport, Option<f64>) {
    let tl = timeline.map(|t| {
        let sink = SharedSink::new(PowerTimelineSink::new(TimelineConfig::new(
            t.window_cycles,
            clock_hz,
        )));
        sim.attach_trace(Box::new(sink.clone()));
        sink
    });
    let report = if let Some(p) = profile {
        sim.attach_profile(Box::new(p.clone()));
        let t0 = Instant::now();
        let report = sim.run();
        p.clone().span(SpanKind::SweepPoint, t0.elapsed());
        report
    } else {
        sim.run()
    };
    let peak = tl.map(|sink| {
        let names = sim.component_names();
        sink.with(|s| s.report(&names, report.total_cycles).peak_power_w())
    });
    (report, peak)
}

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct ExplorationPoint {
    /// DMA block size used.
    pub dma_block_size: u32,
    /// The priority assignment: `(process, priority)` pairs.
    pub priorities: Vec<(ProcId, u8)>,
    /// Human-readable label of the priority order.
    pub label: String,
    /// The full co-estimation report.
    pub report: CoSimReport,
}

impl ExplorationPoint {
    /// Total energy of this configuration, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// All permutations of the given items (Heap's algorithm, deterministic
/// order). The degenerate inputs have exactly one permutation each:
/// `permutations(&[])` is `[[]]` (0! = 1) and a single element yields
/// itself — handled explicitly rather than through the recursion's
/// fall-through.
pub fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    fn heap<T: Clone>(arr: &mut Vec<T>, k: usize, out: &mut Vec<Vec<T>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(arr, k - 1, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    let mut out = Vec::new();
    let k = arr.len();
    heap(&mut arr, k, &mut out);
    out
}

/// Evaluates one point of the communication-architecture sweep: the
/// given priority permutation (descending priorities along `perm`) at
/// the given DMA block size. Shared by the serial and parallel sweeps.
pub(crate) fn eval_bus_point(
    soc: &SocDescription,
    base: &CoSimConfig,
    perm: &[ProcId],
    dma: u32,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
) -> Result<(ExplorationPoint, Option<f64>), BuildEstimatorError> {
    let mut soc_variant = soc.clone();
    let n = perm.len() as u8;
    let mut priorities = Vec::with_capacity(perm.len());
    let mut label_parts = Vec::with_capacity(perm.len());
    for (rank, &p) in perm.iter().enumerate() {
        let pri = n - rank as u8; // descending
        soc_variant.set_priority(p, pri);
        priorities.push((p, pri));
        label_parts.push(soc.network.cfsm(p).name().to_string());
    }
    let label = label_parts.join(" > ");
    let config = base.with_dma_block_size(dma);
    let clock_hz = config.clock_hz;
    let mut sim = CoSimulator::new(soc_variant, config)?;
    let (report, peak) = run_point(&mut sim, profile, timeline, clock_hz);
    Ok((
        ExplorationPoint {
            dma_block_size: dma,
            priorities,
            label,
            report,
        },
        peak,
    ))
}

/// Sweeps the communication-architecture design space: every priority
/// permutation of `prioritized_procs` × every DMA size in `dma_sizes`.
///
/// Priorities are assigned in descending order along each permutation
/// (first process gets the highest priority).
///
/// # Errors
///
/// Returns the first [`BuildEstimatorError`] encountered.
pub fn explore_bus_architecture(
    soc: &SocDescription,
    base: &CoSimConfig,
    prioritized_procs: &[ProcId],
    dma_sizes: &[u32],
) -> Result<Vec<ExplorationPoint>, BuildEstimatorError> {
    let perms = permutations(prioritized_procs);
    let mut points = Vec::with_capacity(perms.len() * dma_sizes.len());
    for perm in &perms {
        for &dma in dma_sizes {
            points.push(eval_bus_point(soc, base, perm, dma, None, None)?.0);
        }
    }
    Ok(points)
}

/// One evaluated HW/SW partition.
#[derive(Debug, Clone)]
pub struct PartitionPoint {
    /// The mapping of each process, in process-id order.
    pub mapping: Vec<cfsm::Implementation>,
    /// Human-readable label, e.g. `create_pack=SW checksum=HW`.
    pub label: String,
    /// The full co-estimation report.
    pub report: CoSimReport,
}

impl PartitionPoint {
    /// Total energy of this partition, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// Evaluates the partition selected by `bits` (bit `k` set maps
/// `movable[k]` to hardware). Returns `Ok(None)` when the hardware
/// mapping is infeasible (synthesis failure), mirroring a real flow's
/// infeasible designs. Shared by the serial and parallel sweeps.
pub(crate) fn eval_partition_point(
    soc: &SocDescription,
    config: &CoSimConfig,
    movable: &[ProcId],
    bits: u32,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
) -> Result<Option<(PartitionPoint, Option<f64>)>, BuildEstimatorError> {
    use cfsm::Implementation;
    let mut soc_variant = soc.clone();
    let mut label_parts = Vec::with_capacity(movable.len());
    for (k, &p) in movable.iter().enumerate() {
        let m = if bits >> k & 1 == 1 {
            Implementation::Hw
        } else {
            Implementation::Sw
        };
        soc_variant.network.set_mapping(p, m);
        label_parts.push(format!("{}={}", soc.network.cfsm(p).name(), m));
    }
    let label = label_parts.join(" ");
    match CoSimulator::new(soc_variant.clone(), config.clone()) {
        Ok(mut sim) => {
            let (report, peak) = run_point(&mut sim, profile, timeline, config.clock_hz);
            Ok(Some((
                PartitionPoint {
                    mapping: soc_variant
                        .network
                        .process_ids()
                        .map(|p| soc_variant.network.mapping(p))
                        .collect(),
                    label,
                    report,
                },
                peak,
            )))
        }
        Err(BuildEstimatorError::Synth(_, _)) => Ok(None), // infeasible in HW
        Err(e) => Err(e),
    }
}

/// Guards the exhaustive-partition sweep's exponent.
pub(crate) fn check_partition_count(movable: &[ProcId]) -> Result<(), BuildEstimatorError> {
    if movable.len() > 16 {
        return Err(BuildEstimatorError::InvalidParams(format!(
            "{} movable processes is too many for an exhaustive 2^n partition sweep (max 16)",
            movable.len()
        )));
    }
    Ok(())
}

/// Evaluates every 2^n HW/SW partition of the given processes (§5.2
/// mentions using the tool "to rank several different HW/SW
/// partitions"). Processes not listed keep their original mapping.
///
/// Skips partitions whose hardware mapping fails to synthesize (e.g.
/// processes using division) — such points are simply absent from the
/// result, mirroring a real flow's infeasible designs.
///
/// # Errors
///
/// Propagates estimator-build failures that are not synthesis
/// infeasibilities, and rejects more than 16 movable processes with
/// [`BuildEstimatorError::InvalidParams`].
pub fn explore_partitions(
    soc: &SocDescription,
    config: &CoSimConfig,
    movable: &[ProcId],
) -> Result<Vec<PartitionPoint>, BuildEstimatorError> {
    check_partition_count(movable)?;
    let n = movable.len();
    let mut points = Vec::with_capacity(1 << n);
    for bits in 0..(1u32 << n) {
        if let Some((point, _)) = eval_partition_point(soc, config, movable, bits, None, None)? {
            points.push(point);
        }
    }
    Ok(points)
}

/// One evaluated power-management policy.
#[derive(Debug, Clone)]
pub struct PowerPoint {
    /// The policy's name (its sweep label).
    pub policy_name: String,
    /// The full co-estimation report (its `power` section carries the
    /// state residency and per-technique savings).
    pub report: CoSimReport,
}

impl PowerPoint {
    /// Total energy of this policy, joules (dynamic + leakage + wake
    /// overhead — everything the ledger booked).
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }

    /// Net energy this policy saved versus running the same schedule
    /// all-Active (per-technique savings minus wake overhead), joules.
    /// Zero for the noop policy.
    pub fn net_saved_j(&self) -> f64 {
        self.report
            .power
            .as_ref()
            .map(|p| p.savings.net_saved_j())
            .unwrap_or(0.0)
    }
}

/// Evaluates one power-management policy on the base configuration.
/// Shared by the serial and parallel sweeps.
pub(crate) fn eval_power_point(
    soc: &SocDescription,
    base: &CoSimConfig,
    policy: &crate::powermgmt::PowerPolicy,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
) -> Result<(PowerPoint, Option<f64>), BuildEstimatorError> {
    let config = base.with_power_policy(policy.clone());
    let clock_hz = config.clock_hz;
    let mut sim = CoSimulator::new(soc.clone(), config)?;
    let (report, peak) = run_point(&mut sim, profile, timeline, clock_hz);
    Ok((
        PowerPoint {
            policy_name: policy.name.clone(),
            report,
        },
        peak,
    ))
}

/// Sweeps power-management policies (operating-point assignments ×
/// gating rules): one co-simulation per policy, in slice order. The
/// exploration knob that widens §5.3's architecture sweep to the power
/// axis.
///
/// # Errors
///
/// Returns the first [`BuildEstimatorError`] encountered — including
/// policy-validation failures (unknown component names, out-of-range
/// operating points).
pub fn explore_power_policies(
    soc: &SocDescription,
    base: &CoSimConfig,
    policies: &[crate::powermgmt::PowerPolicy],
) -> Result<Vec<PowerPoint>, BuildEstimatorError> {
    let mut points = Vec::with_capacity(policies.len());
    for policy in policies {
        points.push(eval_power_point(soc, base, policy, None, None)?.0);
    }
    Ok(points)
}

/// One evaluated fault scenario of a fault-matrix sweep.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// The scenario's label (its sweep name).
    pub label: String,
    /// The full co-estimation report of the faulted run — with the
    /// provenance partition intact ([`CoSimReport::verify_provenance`]
    /// holds on every point, faulted or not).
    pub report: CoSimReport,
}

impl FaultPoint {
    /// Total energy of this scenario, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// Evaluates one fault scenario on the base configuration. Shared by
/// the serial and parallel sweeps.
pub(crate) fn eval_fault_point(
    soc: &SocDescription,
    base: &CoSimConfig,
    label: &str,
    plan: &FaultPlan,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
) -> Result<(FaultPoint, Option<f64>), BuildEstimatorError> {
    let config = base.with_faults(plan.clone());
    let clock_hz = config.clock_hz;
    let mut sim = CoSimulator::new(soc.clone(), config)?;
    let (report, peak) = run_point(&mut sim, profile, timeline, clock_hz);
    Ok((
        FaultPoint {
            label: label.to_string(),
            report,
        },
        peak,
    ))
}

/// Sweeps a fault matrix: one co-simulation per `(label, plan)`
/// scenario, in slice order. Each point is an independent run of the
/// same system under a different declarative fault plan, so the sweep
/// ranks the design's energy behaviour across its failure modes (the
/// fault-injection counterpart of §5.3's architecture sweep).
///
/// # Errors
///
/// Returns the first [`BuildEstimatorError`] encountered — including
/// fault plans naming unknown events or processes.
pub fn explore_fault_matrix(
    soc: &SocDescription,
    base: &CoSimConfig,
    scenarios: &[(String, FaultPlan)],
) -> Result<Vec<FaultPoint>, BuildEstimatorError> {
    let mut points = Vec::with_capacity(scenarios.len());
    for (label, plan) in scenarios {
        points.push(eval_fault_point(soc, base, label, plan, None, None)?.0);
    }
    Ok(points)
}

/// How a Monte-Carlo stimulus variant perturbs the base stimulus.
#[derive(Debug, Clone)]
pub struct StimulusJitter {
    /// Maximum absolute per-event time shift, simulation cycles (the
    /// drawn shift is uniform in `-time..=time`; shifted times saturate
    /// at zero and the schedule is re-sorted).
    pub time: u64,
    /// Maximum absolute perturbation of valued events' payloads
    /// (uniform in `-value..=value`).
    pub value: i64,
}

impl Default for StimulusJitter {
    /// ±1000 cycles of arrival jitter, ±4 on event payloads.
    fn default() -> Self {
        StimulusJitter {
            time: 1_000,
            value: 4,
        }
    }
}

/// One evaluated Monte-Carlo stimulus variant.
#[derive(Debug, Clone)]
pub struct StimulusPoint {
    /// The variant's stimulus seed.
    pub seed: u64,
    /// The full co-estimation report of the perturbed run.
    pub report: CoSimReport,
}

impl StimulusPoint {
    /// Total energy of this stimulus variant, joules.
    pub fn energy_j(&self) -> f64 {
        self.report.total_energy_j()
    }
}

/// The deterministic stimulus variant of `seed`: every event's arrival
/// time and payload perturbed by a `detrand` stream. Pure in `(soc,
/// seed, jitter)`, so the serial and parallel sweeps (and any re-run)
/// evaluate the identical schedule for a given seed.
pub(crate) fn mc_stimulus_variant(
    soc: &SocDescription,
    seed: u64,
    jitter: &StimulusJitter,
) -> SocDescription {
    let mut rng = Rng::new(seed ^ 0x4D43_5354_494D_0001); // domain-separated
    let mut variant = soc.clone();
    for (time, occurrence) in &mut variant.stimulus {
        let dt = rng.i64_in(-(jitter.time as i64), jitter.time as i64 + 1);
        *time = time.saturating_add_signed(dt);
        if let Some(v) = &mut occurrence.value {
            *v = v.wrapping_add(rng.i64_in(-jitter.value, jitter.value + 1));
        }
    }
    // Stable sort: events shifted onto the same cycle keep their
    // original relative order.
    variant.stimulus.sort_by_key(|&(t, _)| t);
    variant
}

/// Evaluates one Monte-Carlo stimulus variant. Shared by the serial
/// and parallel sweeps.
pub(crate) fn eval_stimulus_point(
    soc: &SocDescription,
    base: &CoSimConfig,
    seed: u64,
    jitter: &StimulusJitter,
    profile: Option<&ArcSharedSink<ProfileReport>>,
    timeline: Option<TimelineOptions>,
) -> Result<(StimulusPoint, Option<f64>), BuildEstimatorError> {
    let variant = mc_stimulus_variant(soc, seed, jitter);
    let mut sim = CoSimulator::new(variant, base.clone())?;
    let (report, peak) = run_point(&mut sim, profile, timeline, base.clock_hz);
    Ok((StimulusPoint { seed, report }, peak))
}

/// Monte-Carlo sweep over stimulus variants: one co-simulation per
/// seed, each driving a deterministically jittered copy of the base
/// stimulus. The spread of the per-point energies estimates how
/// sensitive the design's power is to arrival times and payloads — the
/// system-level sibling of the gate-level Monte-Carlo lanes in
/// [`crate::run_lane_sweep`].
///
/// # Errors
///
/// Returns the first [`BuildEstimatorError`] encountered.
pub fn explore_stimulus_seeds(
    soc: &SocDescription,
    base: &CoSimConfig,
    seeds: &[u64],
    jitter: &StimulusJitter,
) -> Result<Vec<StimulusPoint>, BuildEstimatorError> {
    let mut points = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        points.push(eval_stimulus_point(soc, base, seed, jitter, None, None)?.0);
    }
    Ok(points)
}

/// The minimum-energy point of an exploration.
pub fn minimum_energy(points: &[ExplorationPoint]) -> Option<&ExplorationPoint> {
    points.iter().min_by(|a, b| a.energy_j().total_cmp(&b.energy_j()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{BinOp, Cfg, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt};

    #[test]
    fn permutation_counts_match_factorials() {
        fn factorial(n: usize) -> usize {
            (1..=n).product()
        }
        for n in 0..=5usize {
            let items: Vec<usize> = (0..n).collect();
            let ps = permutations(&items);
            assert_eq!(ps.len(), factorial(n), "n = {n}");
            let mut sorted = ps.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), factorial(n), "n = {n} has duplicates");
            for p in &ps {
                let mut q = p.clone();
                q.sort_unstable();
                assert_eq!(q, items, "n = {n} permutation {p:?} is not a permutation");
            }
        }
    }

    #[test]
    fn permutations_of_empty_slice_is_single_empty() {
        let ps = permutations::<u32>(&[]);
        assert_eq!(ps, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn permutations_of_single_element() {
        assert_eq!(permutations(&[7]), vec![vec![7]]);
    }

    #[test]
    fn permutations_deterministic() {
        for items in [vec![], vec!['a'], vec!['a', 'b', 'c'], vec!['a', 'b', 'c', 'd']] {
            assert_eq!(permutations(&items), permutations(&items));
        }
    }

    /// A two-process SOC whose `divider` process uses division — which
    /// has no hardware implementation — plus a synthesizable `adder`.
    fn divider_soc() -> SocDescription {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let mut div = Cfsm::builder("divider");
        let s = div.state("s");
        let v = div.var("v", 100);
        div.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: v,
                expr: Expr::bin(BinOp::Div, Expr::Var(v), Expr::Const(2)),
            }]),
            s,
        );
        nb.process(div.finish().expect("valid machine"), Implementation::Sw);
        let mut add = Cfsm::builder("adder");
        let t = add.state("t");
        let w = add.var("w", 0);
        add.transition(
            t,
            vec![go],
            None,
            Cfg::straight_line(vec![Stmt::Assign {
                var: w,
                expr: Expr::add(Expr::Var(w), Expr::Const(1)),
            }]),
            t,
        );
        nb.process(add.finish().expect("valid machine"), Implementation::Sw);
        SocDescription {
            name: "divider".into(),
            network: nb.finish().expect("valid network"),
            stimulus: (0..3).map(|i| (i * 5_000, EventOccurrence::pure(go))).collect(),
            priorities: vec![1, 1],
        }
    }

    #[test]
    fn partition_sweep_skips_infeasible_hw_mappings() {
        let soc = divider_soc();
        let divider = soc.network.process_by_name("divider").expect("exists");
        let config = CoSimConfig::date2000_defaults();
        // Only the divider movable: HW mapping is infeasible, so exactly
        // 2^1 - 1 = 1 point survives — an absent point, not an error.
        let points = explore_partitions(&soc, &config, &[divider]).expect("sweep succeeds");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].label, "divider=SW");
    }

    #[test]
    fn partition_sweep_point_count_is_power_of_two_minus_skipped() {
        let soc = divider_soc();
        let divider = soc.network.process_by_name("divider").expect("exists");
        let adder = soc.network.process_by_name("adder").expect("exists");
        let config = CoSimConfig::date2000_defaults();
        // Both movable: the 2 partitions mapping the divider to HW are
        // skipped, so 2^2 - 2 = 2 points remain.
        let points = explore_partitions(&soc, &config, &[divider, adder]).expect("sweep succeeds");
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.label.contains("divider=SW")));
    }

    #[test]
    fn too_many_movable_processes_is_a_typed_error() {
        let soc = divider_soc();
        let p = soc.network.process_by_name("adder").expect("exists");
        let movable = vec![p; 17];
        let err = explore_partitions(&soc, &CoSimConfig::date2000_defaults(), &movable);
        assert!(matches!(err, Err(BuildEstimatorError::InvalidParams(_))));
    }
}
