//! Statistical sampling / sequence compaction (§4.3 of the paper).
//!
//! Two cooperating mechanisms are provided:
//!
//! * [`KMemoryCompactor`] — the paper's *K-memory dynamic sequence
//!   compaction*: input vectors (or instructions) destined for the
//!   low-level simulator are buffered K at a time; from each buffer a
//!   representative subset is dispatched, chosen to preserve the
//!   single-step (symbol frequency) and two-step (lag-one transition)
//!   statistics of the original stream; the simulator's answer is scaled
//!   back by the compaction ratio.
//! * [`SamplingConfig`] — firing-level sampling used by the
//!   co-simulation master: after a `(task, path)` pair has been observed,
//!   only every `period`-th occurrence is re-simulated in detail; the
//!   other occurrences reuse the latest detailed result. This is the
//!   "reduce the number of calls to the lower-level simulator" form of
//!   sampling, and is exact whenever path energy is time-invariant.
//!
//! Both trade accuracy for fewer detailed simulations. The orthogonal
//! throughput lever — making each detailed gate-level run cover many
//! stimulus variants at once, with *no* accuracy trade at all — is the
//! lane scheduler (`lanes`), which packs Monte-Carlo seeds or
//! fault variants into the simd kernel's lockstep lanes and demuxes
//! bit-identical per-unit results ([`crate::run_lane_sweep`]).

use std::collections::HashMap;
use std::hash::Hash;

/// Firing-level sampling knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Re-simulate every `period`-th occurrence of a path (1 = always).
    pub period: u32,
}

impl SamplingConfig {
    /// Detailed simulation of every 8th occurrence.
    pub fn new() -> Self {
        SamplingConfig { period: 8 }
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::new()
    }
}

/// Statistics of a symbol stream used to judge compaction quality.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats<S: Eq + Hash + Clone> {
    /// Relative frequency of each symbol (single-step statistics).
    pub freq: HashMap<S, f64>,
    /// Relative frequency of each ordered pair (lag-one statistics).
    pub pair_freq: HashMap<(S, S), f64>,
}

impl<S: Eq + Hash + Clone> StreamStats<S> {
    /// Measures a stream.
    pub fn measure(stream: &[S]) -> Self {
        let mut freq = HashMap::new();
        for s in stream {
            *freq.entry(s.clone()).or_insert(0.0) += 1.0;
        }
        for v in freq.values_mut() {
            *v /= stream.len().max(1) as f64;
        }
        let mut pair_freq = HashMap::new();
        for w in stream.windows(2) {
            *pair_freq
                .entry((w[0].clone(), w[1].clone()))
                .or_insert(0.0) += 1.0;
        }
        let pairs = stream.len().saturating_sub(1).max(1) as f64;
        for v in pair_freq.values_mut() {
            *v /= pairs;
        }
        StreamStats { freq, pair_freq }
    }

    /// Total-variation distance between the single-step statistics of
    /// two streams (0 = identical, 1 = disjoint).
    pub fn freq_distance(&self, other: &Self) -> f64 {
        let mut keys: Vec<&S> = self.freq.keys().collect();
        for k in other.freq.keys() {
            if !self.freq.contains_key(k) {
                keys.push(k);
            }
        }
        0.5 * keys
            .into_iter()
            .map(|k| {
                (self.freq.get(k).unwrap_or(&0.0) - other.freq.get(k).unwrap_or(&0.0)).abs()
            })
            .sum::<f64>()
    }

    /// Total-variation distance between lag-one pair statistics.
    pub fn pair_distance(&self, other: &Self) -> f64 {
        let mut keys: Vec<&(S, S)> = self.pair_freq.keys().collect();
        for k in other.pair_freq.keys() {
            if !self.pair_freq.contains_key(k) {
                keys.push(k);
            }
        }
        0.5 * keys
            .into_iter()
            .map(|k| {
                (self.pair_freq.get(k).unwrap_or(&0.0)
                    - other.pair_freq.get(k).unwrap_or(&0.0))
                .abs()
            })
            .sum::<f64>()
    }
}

/// The K-memory dynamic sequence compactor (see module docs).
///
/// Symbols are pushed as they arrive from the simulation master; every
/// time K symbols have accumulated, [`KMemoryCompactor::push`] returns the
/// representative subset to dispatch to the low-level simulator.
///
/// For streams whose raw symbols are (nearly) all distinct — e.g. whole
/// input vectors — construct with [`with_key`](KMemoryCompactor::with_key)
/// and supply an abstraction (activity class, Hamming-weight bucket, …);
/// the preserved statistics are computed over the key, matching the
/// paper's per-signal statistics rather than whole-vector identity.
///
/// # Examples
///
/// ```
/// use co_estimation::KMemoryCompactor;
///
/// let mut c = KMemoryCompactor::new(8, 4);
/// let mut dispatched = Vec::new();
/// for sym in [1, 1, 2, 1, 1, 2, 3, 1, /* second window */ 2, 2, 2, 2, 1, 1, 1, 1] {
///     if let Some(batch) = c.push(sym) {
///         dispatched.extend(batch);
///     }
/// }
/// assert_eq!(dispatched.len(), 8); // 2 windows x keep=4
/// assert!((c.ratio() - 2.0).abs() < 1e-12); // scale factor for energy
/// ```
#[derive(Debug, Clone)]
pub struct KMemoryCompactor<S: Clone> {
    k: usize,
    keep: usize,
    buffer: Vec<S>,
    seen: u64,
    dispatched: u64,
    key: fn(&S) -> u64,
}

/// Default key: a stable hash of the symbol (identity-like grouping).
fn hash_key<S: Hash>(s: &S) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

impl<S: Eq + Hash + Clone> KMemoryCompactor<S> {
    /// A compactor buffering `k` symbols and dispatching `keep` of them
    /// per window, preserving statistics of the symbols themselves.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= keep <= k`.
    pub fn new(k: usize, keep: usize) -> Self {
        Self::with_key(k, keep, hash_key::<S>)
    }
}

impl<S: Clone> KMemoryCompactor<S> {
    /// A compactor preserving statistics of `key(symbol)` instead of the
    /// raw symbols.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= keep <= k`.
    pub fn with_key(k: usize, keep: usize, key: fn(&S) -> u64) -> Self {
        assert!(k >= 1 && (1..=k).contains(&keep), "need 1 <= keep <= k");
        KMemoryCompactor {
            k,
            keep,
            buffer: Vec::with_capacity(k),
            seen: 0,
            dispatched: 0,
            key,
        }
    }

    /// Offers one symbol; returns the representative subset when the
    /// window fills.
    pub fn push(&mut self, sym: S) -> Option<Vec<S>> {
        self.buffer.push(sym);
        self.seen += 1;
        if self.buffer.len() < self.k {
            return None;
        }
        let window = std::mem::take(&mut self.buffer);
        let out = compact_window(&window, self.keep, self.key);
        self.dispatched += out.len() as u64;
        Some(out)
    }

    /// Flushes a partial window (end of simulation).
    pub fn flush(&mut self) -> Option<Vec<S>> {
        if self.buffer.is_empty() {
            return None;
        }
        let window = std::mem::take(&mut self.buffer);
        let keep = self.keep.min(window.len());
        let out = compact_window(&window, keep, self.key);
        self.dispatched += out.len() as u64;
        Some(out)
    }

    /// `seen / dispatched` — the factor by which the simulator's reported
    /// energy must be scaled up.
    pub fn ratio(&self) -> f64 {
        if self.dispatched == 0 {
            1.0
        } else {
            self.seen as f64 / self.dispatched as f64
        }
    }

    /// Symbols offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Symbols dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

/// Deterministically selects the length-`keep` *contiguous sub-sequence*
/// of `window` whose single-step key statistics (with two-step statistics
/// as tiebreak) are closest to the full window's.
///
/// Contiguity automatically preserves lag-one pairs (every selected pair
/// is a real pair of the original stream — no artificial transitions are
/// fabricated, which is essential when the dispatched sequence drives a
/// simulator whose energy depends on consecutive-symbol correlation);
/// scanning all offsets avoids the aliasing that a fixed-stride
/// subsampling suffers on periodic streams.
fn compact_window<S: Clone>(window: &[S], keep: usize, key: fn(&S) -> u64) -> Vec<S> {
    if keep >= window.len() {
        return window.to_vec();
    }
    let keys: Vec<u64> = window.iter().map(key).collect();
    let target = StreamStats::measure(&keys);
    let mut best: Option<(f64, f64, usize)> = None;
    for offset in 0..=(keys.len() - keep) {
        let cand = &keys[offset..offset + keep];
        let stats = StreamStats::measure(cand);
        let d1 = target.freq_distance(&stats);
        let d2 = target.pair_distance(&stats);
        let better = match &best {
            None => true,
            Some((b1, b2, _)) => d1 < *b1 - 1e-12 || ((d1 - b1).abs() <= 1e-12 && d2 < *b2),
        };
        if better {
            best = Some((d1, d2, offset));
        }
    }
    let offset = best.map_or(0, |(_, _, o)| o);
    window[offset..offset + keep].to_vec()
}

/// *Static* sequence compaction (§4.3): unlike the K-memory dynamic
/// compactor, the complete sequence is available up front, so the
/// selection can optimize globally. The sequence is cut into
/// `ceil(len·ratio⁻¹)`… more precisely: it is compacted to approximately
/// `len / ratio` symbols by choosing, within each of `len / (k·ratio)`
/// spans of `k·ratio` symbols, the contiguous run of `k` symbols whose
/// key statistics best match the *whole sequence's* statistics (the
/// global target is what makes this static rather than dynamic).
///
/// Returns the compacted sequence. `ratio` ≥ 1; `k` is the run length.
///
/// # Panics
///
/// Panics if `ratio == 0` or `k == 0`.
///
/// # Examples
///
/// ```
/// use co_estimation::compact_static;
///
/// let stream: Vec<u32> = (0..1000).map(|i| i % 7).collect();
/// let compact = compact_static(&stream, 5, 10, |&s| s as u64);
/// assert!(compact.len() <= stream.len() / 4);
/// ```
pub fn compact_static<S: Clone>(
    seq: &[S],
    ratio: usize,
    k: usize,
    key: fn(&S) -> u64,
) -> Vec<S> {
    assert!(ratio >= 1, "compaction ratio must be at least 1");
    assert!(k >= 1, "run length must be at least 1");
    if ratio == 1 || seq.len() <= k {
        return seq.to_vec();
    }
    let keys: Vec<u64> = seq.iter().map(key).collect();
    let global = StreamStats::measure(&keys);
    let span = k * ratio;
    let mut out = Vec::with_capacity(seq.len() / ratio + k);
    let mut start = 0;
    while start < seq.len() {
        let end = (start + span).min(seq.len());
        let window = &seq[start..end];
        let wkeys = &keys[start..end];
        let keep = k.min(window.len());
        // Best contiguous run vs the GLOBAL statistics.
        let mut best: Option<(f64, usize)> = None;
        for off in 0..=(window.len() - keep) {
            let stats = StreamStats::measure(&wkeys[off..off + keep]);
            let d = global.freq_distance(&stats) + 0.5 * global.pair_distance(&stats);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, off));
            }
        }
        let off = best.map_or(0, |(_, o)| o);
        out.extend_from_slice(&window[off..off + keep]);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_uniform_stream() {
        let s = StreamStats::measure(&[1, 2, 1, 2, 1, 2, 1, 2]);
        assert!((s.freq[&1] - 0.5).abs() < 1e-12);
        assert!((s.freq[&2] - 0.5).abs() < 1e-12);
        assert!(s.pair_freq[&(1, 2)] > 0.5);
    }

    #[test]
    fn identical_streams_have_zero_distance() {
        let a = StreamStats::measure(&[1, 2, 3, 1, 2, 3]);
        let b = StreamStats::measure(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(a.freq_distance(&b), 0.0);
        assert_eq!(a.pair_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_streams_have_distance_one() {
        let a = StreamStats::measure(&[1, 1, 1]);
        let b = StreamStats::measure(&[2, 2, 2]);
        assert!((a.freq_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_emitted_when_full() {
        let mut c = KMemoryCompactor::new(4, 2);
        assert!(c.push(1).is_none());
        assert!(c.push(2).is_none());
        assert!(c.push(1).is_none());
        let w = c.push(2).expect("window full");
        assert_eq!(w.len(), 2);
        assert_eq!(c.seen(), 4);
        assert_eq!(c.dispatched(), 2);
        assert!((c.ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flush_handles_partial_windows() {
        let mut c = KMemoryCompactor::new(8, 4);
        for i in 0..5 {
            assert!(c.push(i).is_none());
        }
        let w = c.flush().expect("partial window");
        assert_eq!(w.len(), 4);
        assert!(c.flush().is_none());
    }

    #[test]
    fn keep_equal_k_is_identity() {
        let mut c = KMemoryCompactor::new(4, 4);
        c.push(9);
        c.push(8);
        c.push(7);
        let w = c.push(6).expect("full");
        assert_eq!(w, vec![9, 8, 7, 6]);
        assert!((c.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compaction_preserves_single_step_statistics() {
        // A biased stream: 75% zeros, 25% ones.
        let stream: Vec<u8> = (0..400).map(|i| u8::from(i % 4 == 0)).collect();
        let mut c = KMemoryCompactor::new(40, 10);
        let mut out = Vec::new();
        for &s in &stream {
            if let Some(b) = c.push(s) {
                out.extend(b);
            }
        }
        let orig = StreamStats::measure(&stream);
        let comp = StreamStats::measure(&out);
        assert!(
            orig.freq_distance(&comp) < 0.1,
            "single-step distance {} too large",
            orig.freq_distance(&comp)
        );
    }

    #[test]
    fn compaction_preserves_pair_statistics_of_periodic_stream() {
        // Period-2 stream: pairs (0,1) and (1,0) dominate.
        let stream: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
        let mut c = KMemoryCompactor::new(20, 10);
        let mut out = Vec::new();
        for &s in &stream {
            if let Some(b) = c.push(s) {
                out.extend(b);
            }
        }
        let orig = StreamStats::measure(&stream);
        let comp = StreamStats::measure(&out);
        assert!(
            orig.pair_distance(&comp) < 0.25,
            "pair distance {} too large",
            orig.pair_distance(&comp)
        );
    }

    #[test]
    fn compaction_is_deterministic() {
        let stream: Vec<u32> = (0..100).map(|i| i * 7 % 13).collect();
        let run = || {
            let mut c = KMemoryCompactor::new(25, 7);
            let mut out = Vec::new();
            for &s in &stream {
                if let Some(b) = c.push(s) {
                    out.extend(b);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "1 <= keep <= k")]
    fn bad_keep_rejected() {
        KMemoryCompactor::<u8>::new(4, 5);
    }

    #[test]
    fn sampling_config_default() {
        assert_eq!(SamplingConfig::default().period, 8);
    }

    #[test]
    fn static_compaction_hits_the_requested_ratio() {
        let stream: Vec<u32> = (0..1200).map(|i| (i * 13) % 5).collect();
        let out = compact_static(&stream, 4, 25, |&s| s as u64);
        let actual_ratio = stream.len() as f64 / out.len() as f64;
        assert!(
            (actual_ratio - 4.0).abs() < 0.5,
            "ratio {actual_ratio} not ~4"
        );
    }

    #[test]
    fn static_compaction_preserves_global_statistics() {
        // 80/20 biased stream with phase structure.
        let stream: Vec<u8> = (0..1000)
            .map(|i| u8::from(i % 5 == 0 || (i / 100) % 3 == 0))
            .collect();
        let out = compact_static(&stream, 5, 20, |&s| s as u64);
        let a = StreamStats::measure(&stream);
        let b = StreamStats::measure(&out);
        assert!(
            a.freq_distance(&b) < 0.08,
            "freq distance {}",
            a.freq_distance(&b)
        );
    }

    #[test]
    fn static_beats_or_matches_dynamic_on_global_stats() {
        // The static compactor optimizes against the whole sequence's
        // statistics; the dynamic one only sees one window at a time.
        let stream: Vec<u8> = (0..900)
            .map(|i| if (i / 150) % 2 == 0 { 0 } else { (i % 3) as u8 + 1 })
            .collect();
        let global = StreamStats::measure(&stream);
        let st = compact_static(&stream, 5, 15, |&s| s as u64);
        let mut dynamic = Vec::new();
        let mut c = KMemoryCompactor::with_key(75, 15, |&s: &u8| s as u64);
        for &s in &stream {
            if let Some(b) = c.push(s) {
                dynamic.extend(b);
            }
        }
        let ds = StreamStats::measure(&dynamic);
        let ss = StreamStats::measure(&st);
        assert!(
            global.freq_distance(&ss) <= global.freq_distance(&ds) + 0.05,
            "static {} vs dynamic {}",
            global.freq_distance(&ss),
            global.freq_distance(&ds)
        );
    }

    #[test]
    fn static_ratio_one_is_identity() {
        let stream: Vec<u8> = vec![3, 1, 4, 1, 5];
        assert_eq!(compact_static(&stream, 1, 2, |&s| s as u64), stream);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn static_zero_ratio_rejected() {
        compact_static(&[1u8], 0, 1, |&s| s as u64);
    }
}
