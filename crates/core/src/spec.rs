//! A textual system-specification frontend.
//!
//! POLIS ingests behavioral specifications (Esterel / graphical FSMs) and
//! compiles them into CFSM networks; this module provides the equivalent
//! entry point for this reproduction: a small, line-oriented reactive
//! language that parses directly into a ready-to-estimate
//! [`SocDescription`].
//!
//! ```text
//! system blinker
//!
//! event TICK
//! event LEVEL value
//!
//! process counter hw priority 2
//!   var n = 0
//!   state run
//!   transition run -> run on TICK
//!     n = (+ n 1)
//!     if (> n 255)
//!       n = 0
//!     end
//!     emit LEVEL n
//!   end
//!
//! stimulus 100 TICK
//! stimulus 200 TICK
//! ```
//!
//! Grammar (one construct per line, `#` comments):
//!
//! ```text
//! system NAME
//! event NAME [value]
//! leakage WATTS [CLOCK_FACTOR POWER_FACTOR]
//! process NAME (hw|sw) [priority N]
//!   var NAME = INT
//!   state NAME                       # the first state is initial
//!   power dvfs OP_NAME VSCALE FSCALE # assign a DVFS operating point
//!   power clock_gate IDLE_CYCLES     # clock-gate after the idle timeout
//!   power power_gate IDLE_CYCLES WAKE_J WAKE_CYCLES
//!   transition FROM -> TO on EV [EV…] [when EXPR]
//!     STMT…
//!   end
//! stimulus CYCLE EV [VALUE]
//! ```
//!
//! The `leakage` and per-process `power` directives accumulate into a
//! [`PowerPolicy`](crate::PowerPolicy); [`parse_system_with_power`]
//! returns it alongside the system ([`parse_system`] parses the same
//! grammar and discards the policy). A `power` directive naming an
//! unknown state is a [`SpecError`].
//!
//! Statements: `x = EXPR` · `emit EV [EXPR]` · `x = mem[EXPR]` ·
//! `mem[EXPR] = EXPR` · `while EXPR … end` · `if EXPR … [else …] end`.
//!
//! Expressions are prefix S-expressions over variables, integers and
//! `$EVENT` (the value of a triggering event):
//! `(+ a 1)`, `(and (< i len) flag)`, `(- $TIME prev)`. Operators:
//! `+ - * / % & | ^ << >> == != < <= > >= not lnot neg`.

use crate::config::SocDescription;
use cfsm::{
    BasicBlock, BinOp, BlockId, Cfg, Cfsm, EventDef, EventId, EventOccurrence, Expr,
    Implementation, Network, Stmt, StateId, Terminator, UnOp, VarId,
};
use std::collections::HashMap;
use std::fmt;

/// A specification parse error, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Structured statement tree before CFG lowering.
#[derive(Debug, Clone)]
enum SStmt {
    Assign(String, SExpr),
    Emit(String, Option<SExpr>),
    MemRead(String, SExpr),
    MemWrite(SExpr, SExpr),
    While(SExpr, Vec<SStmt>),
    If(SExpr, Vec<SStmt>, Vec<SStmt>),
}

/// Expression tree with unresolved names.
#[derive(Debug, Clone)]
enum SExpr {
    Int(i64),
    Var(String),
    EventValue(String),
    Un(UnOp, Box<SExpr>),
    Bin(BinOp, Box<SExpr>, Box<SExpr>),
}

/// Parses a complete system specification into a [`SocDescription`].
///
/// # Errors
///
/// Returns a [`SpecError`] with the line number of the first problem
/// (unknown names, malformed expressions, unbalanced blocks, …).
///
/// # Examples
///
/// ```
/// use co_estimation::spec::parse_system;
///
/// let soc = parse_system(
///     "system demo\n\
///      event GO\n\
///      process p hw\n\
///        var n = 0\n\
///        state s\n\
///        transition s -> s on GO\n\
///          n = (+ n 1)\n\
///        end\n\
///      stimulus 10 GO\n",
/// )?;
/// assert_eq!(soc.name, "demo");
/// assert_eq!(soc.network.process_count(), 1);
/// # Ok::<(), co_estimation::spec::SpecError>(())
/// ```
pub fn parse_system(text: &str) -> Result<SocDescription, SpecError> {
    parse_system_with_power(text).map(|(soc, _)| soc)
}

/// Parses a complete system specification, returning the system and
/// the power-management policy accumulated from its `leakage` and
/// per-process `power` directives. A spec without power directives
/// yields [`PowerPolicy::none`](crate::PowerPolicy::none) (the
/// guaranteed-noop default).
///
/// # Errors
///
/// Returns a [`SpecError`] with the line number of the first problem;
/// a `power` directive naming an unknown state
/// (anything but `dvfs` / `clock_gate` / `power_gate`) is rejected.
///
/// # Examples
///
/// ```
/// use co_estimation::spec::parse_system_with_power;
///
/// let (soc, policy) = parse_system_with_power(
///     "system demo\n\
///      event GO\n\
///      leakage 0.002\n\
///      process p hw\n\
///        var n = 0\n\
///        state s\n\
///        power clock_gate 500\n\
///        transition s -> s on GO\n\
///          n = (+ n 1)\n\
///        end\n\
///      stimulus 10 GO\n",
/// )?;
/// assert_eq!(soc.name, "demo");
/// assert!(!policy.is_noop());
/// # Ok::<(), co_estimation::spec::SpecError>(())
/// ```
pub fn parse_system_with_power(
    text: &str,
) -> Result<(SocDescription, crate::powermgmt::PowerPolicy), SpecError> {
    use crate::powermgmt::{GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy};
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_string()))
        .filter(|(_, l)| !l.is_empty())
        .collect::<Vec<_>>()
        .into_iter()
        .peekable();

    let mut name = String::from("unnamed");
    let mut events: Vec<(String, bool)> = Vec::new();
    struct ProcSpec {
        line: usize,
        name: String,
        mapping: Implementation,
        priority: u8,
        vars: Vec<(String, i64)>,
        states: Vec<String>,
        transitions: Vec<TransSpec>,
    }
    struct TransSpec {
        line: usize,
        from: String,
        to: String,
        triggers: Vec<String>,
        guard: Option<SExpr>,
        body: Vec<SStmt>,
    }
    let mut procs: Vec<ProcSpec> = Vec::new();
    let mut stimulus: Vec<(u64, String, Option<i64>)> = Vec::new();
    let mut power = PowerPolicy::named("spec");
    let mut power_used = false;

    fn num<T: std::str::FromStr>(
        w: Option<&str>,
        ln: usize,
        what: &str,
    ) -> Result<T, SpecError> {
        w.ok_or_else(|| SpecError::new(ln, format!("expected {what}")))?
            .parse()
            .map_err(|_| SpecError::new(ln, format!("bad {what}")))
    }

    while let Some((ln, line)) = lines.next() {
        let mut w = line.split_whitespace();
        let Some(head) = w.next() else { continue };
        match head {
            "system" => {
                name = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "system needs a name"))?
                    .to_string();
            }
            "event" => {
                let ev = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "event needs a name"))?
                    .to_string();
                let valued = match w.next() {
                    None => false,
                    Some("value") => true,
                    Some(x) => {
                        return Err(SpecError::new(ln, format!("unexpected `{x}` after event")))
                    }
                };
                events.push((ev, valued));
            }
            "process" => {
                let pname = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "process needs a name"))?
                    .to_string();
                let mapping = match w.next() {
                    Some("hw") => Implementation::Hw,
                    Some("sw") => Implementation::Sw,
                    other => {
                        return Err(SpecError::new(
                            ln,
                            format!("process mapping must be hw|sw, got {other:?}"),
                        ))
                    }
                };
                let priority = match (w.next(), w.next()) {
                    (None, _) => 1,
                    (Some("priority"), Some(p)) => p
                        .parse()
                        .map_err(|_| SpecError::new(ln, "priority must be 0..=255"))?,
                    _ => return Err(SpecError::new(ln, "expected `priority N`")),
                };
                let mut ps = ProcSpec {
                    line: ln,
                    name: pname,
                    mapping,
                    priority,
                    vars: Vec::new(),
                    states: Vec::new(),
                    transitions: Vec::new(),
                };
                // Body: var/state/transition until the next top-level
                // keyword.
                while let Some((ln2, l2)) = lines.peek().cloned() {
                    let head = l2.split_whitespace().next().unwrap_or("");
                    match head {
                        "var" => {
                            lines.next();
                            let rest: Vec<&str> = l2.split_whitespace().collect();
                            if rest.len() != 4 || rest[2] != "=" {
                                return Err(SpecError::new(ln2, "expected `var NAME = INT`"));
                            }
                            let init = rest[3]
                                .parse()
                                .map_err(|_| SpecError::new(ln2, "bad initial value"))?;
                            ps.vars.push((rest[1].to_string(), init));
                        }
                        "state" => {
                            lines.next();
                            let rest: Vec<&str> = l2.split_whitespace().collect();
                            if rest.len() != 2 {
                                return Err(SpecError::new(ln2, "expected `state NAME`"));
                            }
                            ps.states.push(rest[1].to_string());
                        }
                        "transition" => {
                            lines.next();
                            let ts = parse_transition_header(ln2, &l2)?;
                            let body = parse_stmts(&mut lines, ln2)?;
                            ps.transitions.push(TransSpec {
                                line: ln2,
                                from: ts.0,
                                to: ts.1,
                                triggers: ts.2,
                                guard: ts.3,
                                body,
                            });
                        }
                        "power" => {
                            lines.next();
                            let mut pw = l2.split_whitespace();
                            pw.next(); // "power"
                            match pw.next() {
                                Some("dvfs") => {
                                    let op_name = pw
                                        .next()
                                        .ok_or_else(|| {
                                            SpecError::new(ln2, "dvfs needs an operating-point name")
                                        })?
                                        .to_string();
                                    let vscale: f64 = num(pw.next(), ln2, "voltage scale")?;
                                    let fscale: f64 = num(pw.next(), ln2, "frequency scale")?;
                                    let idx = match power
                                        .operating_points
                                        .iter()
                                        .position(|op| op.name == op_name)
                                    {
                                        Some(i) => {
                                            let op = &power.operating_points[i];
                                            if op.voltage_scale != vscale
                                                || op.freq_scale != fscale
                                            {
                                                return Err(SpecError::new(
                                                    ln2,
                                                    format!(
                                                        "operating point `{op_name}` redefined \
                                                         with different scales"
                                                    ),
                                                ));
                                            }
                                            i
                                        }
                                        None => {
                                            power = power.with_operating_point(
                                                OperatingPoint::new(op_name, vscale, fscale),
                                            );
                                            power.operating_points.len() - 1
                                        }
                                    };
                                    power = power.dvfs(ps.name.clone(), idx);
                                    power_used = true;
                                }
                                Some("clock_gate") => {
                                    let idle: u64 = num(pw.next(), ln2, "idle timeout")?;
                                    power =
                                        power.gate(ps.name.clone(), GatingPolicy::clock(idle));
                                    power_used = true;
                                }
                                Some("power_gate") => {
                                    let idle: u64 = num(pw.next(), ln2, "idle timeout")?;
                                    let wake_j: f64 = num(pw.next(), ln2, "wake energy")?;
                                    let wake_cycles: u64 = num(pw.next(), ln2, "wake cycles")?;
                                    power = power.gate(
                                        ps.name.clone(),
                                        GatingPolicy::power(idle, wake_j, wake_cycles),
                                    );
                                    power_used = true;
                                }
                                Some(other) => {
                                    return Err(SpecError::new(
                                        ln2,
                                        format!(
                                            "unknown power state `{other}` \
                                             (expected dvfs|clock_gate|power_gate)"
                                        ),
                                    ));
                                }
                                None => {
                                    return Err(SpecError::new(
                                        ln2,
                                        "power directive needs a state",
                                    ));
                                }
                            }
                        }
                        _ => break,
                    }
                }
                procs.push(ps);
            }
            "leakage" => {
                let default_leak_w: f64 = num(w.next(), ln, "leakage watts")?;
                let (clock_gated_factor, power_gated_factor) = match w.next() {
                    None => {
                        let d = LeakageModel::with_default_rate(0.0);
                        (d.clock_gated_factor, d.power_gated_factor)
                    }
                    Some(cg) => {
                        let cg = cg
                            .parse()
                            .map_err(|_| SpecError::new(ln, "bad clock-gated factor"))?;
                        (cg, num(w.next(), ln, "power-gated factor")?)
                    }
                };
                power = power.with_leakage(LeakageModel {
                    default_leak_w,
                    clock_gated_factor,
                    power_gated_factor,
                });
                power_used = true;
            }
            "stimulus" => {
                let t: u64 = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "stimulus needs a cycle"))?
                    .parse()
                    .map_err(|_| SpecError::new(ln, "bad stimulus cycle"))?;
                let ev = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "stimulus needs an event"))?
                    .to_string();
                let value = match w.next() {
                    None => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| SpecError::new(ln, "bad stimulus value"))?,
                    ),
                };
                stimulus.push((t, ev, value));
            }
            other => {
                return Err(SpecError::new(ln, format!("unknown construct `{other}`")));
            }
        }
    }

    // Resolve into a network.
    let mut nb = Network::builder();
    let mut event_ids: HashMap<String, (EventId, bool)> = HashMap::new();
    for (ev, valued) in &events {
        let id = nb.event(if *valued {
            EventDef::valued(ev.clone())
        } else {
            EventDef::pure(ev.clone())
        });
        if event_ids.insert(ev.clone(), (id, *valued)).is_some() {
            return Err(SpecError::new(0, format!("event `{ev}` declared twice")));
        }
    }
    let mut priorities = Vec::new();
    for ps in procs {
        let mut mb = Cfsm::builder(ps.name.clone());
        let mut state_ids: HashMap<String, StateId> = HashMap::new();
        for s in &ps.states {
            state_ids.insert(s.clone(), mb.state(s.clone()));
        }
        let mut var_ids: HashMap<String, VarId> = HashMap::new();
        for (v, init) in &ps.vars {
            var_ids.insert(v.clone(), mb.var(v.clone(), *init));
        }
        for t in ps.transitions {
            let from = *state_ids
                .get(&t.from)
                .ok_or_else(|| SpecError::new(t.line, format!("unknown state `{}`", t.from)))?;
            let to = *state_ids
                .get(&t.to)
                .ok_or_else(|| SpecError::new(t.line, format!("unknown state `{}`", t.to)))?;
            let triggers = t
                .triggers
                .iter()
                .map(|ev| {
                    event_ids
                        .get(ev)
                        .map(|&(id, _)| id)
                        .ok_or_else(|| SpecError::new(t.line, format!("unknown event `{ev}`")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let env = ResolveEnv {
                vars: &var_ids,
                events: &event_ids,
            };
            let guard = t
                .guard
                .map(|g| resolve_expr(&g, &env, t.line))
                .transpose()?;
            let body = lower_body(&t.body, &env, t.line)?;
            mb.transition(from, triggers, guard, body, to);
        }
        let machine = mb
            .finish()
            .map_err(|e| SpecError::new(ps.line, format!("invalid process: {e}")))?;
        nb.process(machine, ps.mapping);
        priorities.push(ps.priority);
    }
    let network = nb
        .finish()
        .map_err(|e| SpecError::new(0, format!("invalid network: {e}")))?;
    let stimulus = stimulus
        .into_iter()
        .map(|(t, ev, value)| {
            let &(id, valued) = event_ids
                .get(&ev)
                .ok_or_else(|| SpecError::new(0, format!("unknown stimulus event `{ev}`")))?;
            let occ = match (valued, value) {
                (true, Some(v)) => EventOccurrence::valued(id, v),
                (false, None) => EventOccurrence::pure(id),
                (true, None) => {
                    return Err(SpecError::new(0, format!("event `{ev}` needs a value")))
                }
                (false, Some(_)) => {
                    return Err(SpecError::new(0, format!("event `{ev}` is pure")))
                }
            };
            Ok((t, occ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut stimulus = stimulus;
    stimulus.sort_by_key(|&(t, _)| t);
    let power = if power_used {
        power.name = name.clone();
        power
    } else {
        PowerPolicy::none()
    };
    Ok((
        SocDescription {
            name,
            network,
            stimulus,
            priorities,
        },
        power,
    ))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

type TransHeader = (String, String, Vec<String>, Option<SExpr>);

fn parse_transition_header(ln: usize, line: &str) -> Result<TransHeader, SpecError> {
    // transition FROM -> TO on EV [EV…] [when EXPR]
    let rest = line.strip_prefix("transition").unwrap_or(line).trim();
    let (from_to, tail) = rest
        .split_once(" on ")
        .ok_or_else(|| SpecError::new(ln, "expected `on EV` in transition"))?;
    let mut ft = from_to.split("->");
    let from = ft
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| SpecError::new(ln, "expected `FROM -> TO`"))?;
    let to = ft
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| SpecError::new(ln, "expected `FROM -> TO`"))?;
    let (trigger_part, guard_part) = match tail.split_once(" when ") {
        Some((a, b)) => (a, Some(b)),
        None => (tail, None),
    };
    let triggers: Vec<String> = trigger_part
        .split_whitespace()
        .map(str::to_string)
        .collect();
    if triggers.is_empty() {
        return Err(SpecError::new(ln, "transition needs at least one trigger"));
    }
    let guard = guard_part
        .map(|g| parse_expr(&mut Tokens::new(g), ln))
        .transpose()?;
    Ok((from.to_string(), to.to_string(), triggers, guard))
}

/// Parses statements until a matching `end` (consuming it), handling
/// `while`/`if`/`else` nesting.
fn parse_stmts(
    lines: &mut std::iter::Peekable<std::vec::IntoIter<(usize, String)>>,
    open_ln: usize,
) -> Result<Vec<SStmt>, SpecError> {
    let mut out = Vec::new();
    loop {
        let Some((ln, line)) = lines.next() else {
            return Err(SpecError::new(open_ln, "unterminated block (missing `end`)"));
        };
        let head = line.split_whitespace().next().unwrap_or("");
        match head {
            "end" => return Ok(out),
            "else" => {
                // Caller (the `if` handler) deals with `else`; seeing one
                // here means we are that caller's then-branch: push back
                // impossible with this iterator, so signal via sentinel.
                return Err(SpecError::new(ln, "`else` outside an if block"));
            }
            "while" => {
                let cond = parse_expr(
                    &mut Tokens::new(line.strip_prefix("while").unwrap_or(&line).trim()),
                    ln,
                )?;
                let body = parse_stmts(lines, ln)?;
                out.push(SStmt::While(cond, body));
            }
            "if" => {
                let cond = parse_expr(
                    &mut Tokens::new(line.strip_prefix("if").unwrap_or(&line).trim()),
                    ln,
                )?;
                let (then_body, has_else) = parse_if_arm(lines, ln)?;
                let else_body = if has_else {
                    parse_stmts(lines, ln)?
                } else {
                    Vec::new()
                };
                out.push(SStmt::If(cond, then_body, else_body));
            }
            "emit" => {
                let mut w = line.split_whitespace();
                w.next();
                let ev = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "emit needs an event"))?
                    .to_string();
                let rest: String = w.collect::<Vec<_>>().join(" ");
                let value = if rest.is_empty() {
                    None
                } else {
                    Some(parse_expr(&mut Tokens::new(&rest), ln)?)
                };
                out.push(SStmt::Emit(ev, value));
            }
            _ => {
                // Assignment forms: `x = …` or `mem[…] = …`.
                let (lhs, rhs) = line
                    .split_once('=')
                    .ok_or_else(|| SpecError::new(ln, format!("unparsable statement `{line}`")))?;
                let lhs = lhs.trim();
                let rhs = rhs.trim();
                if let Some(addr) = lhs.strip_prefix("mem[").and_then(|s| s.strip_suffix(']')) {
                    let addr = parse_expr(&mut Tokens::new(addr), ln)?;
                    let value = parse_expr(&mut Tokens::new(rhs), ln)?;
                    out.push(SStmt::MemWrite(addr, value));
                } else if let Some(addr) =
                    rhs.strip_prefix("mem[").and_then(|s| s.strip_suffix(']'))
                {
                    let addr = parse_expr(&mut Tokens::new(addr), ln)?;
                    out.push(SStmt::MemRead(lhs.to_string(), addr));
                } else {
                    let value = parse_expr(&mut Tokens::new(rhs), ln)?;
                    out.push(SStmt::Assign(lhs.to_string(), value));
                }
            }
        }
    }
}

/// Parses an if's then-arm: statements until `else` or `end`. Returns
/// `(body, saw_else)`.
fn parse_if_arm(
    lines: &mut std::iter::Peekable<std::vec::IntoIter<(usize, String)>>,
    open_ln: usize,
) -> Result<(Vec<SStmt>, bool), SpecError> {
    let mut out = Vec::new();
    loop {
        let Some((ln, line)) = lines.next() else {
            return Err(SpecError::new(open_ln, "unterminated if (missing `end`)"));
        };
        let head = line.split_whitespace().next().unwrap_or("");
        match head {
            "end" => return Ok((out, false)),
            "else" => return Ok((out, true)),
            "while" => {
                let cond = parse_expr(
                    &mut Tokens::new(line.strip_prefix("while").unwrap_or(&line).trim()),
                    ln,
                )?;
                let body = parse_stmts(lines, ln)?;
                out.push(SStmt::While(cond, body));
            }
            "if" => {
                let cond = parse_expr(
                    &mut Tokens::new(line.strip_prefix("if").unwrap_or(&line).trim()),
                    ln,
                )?;
                let (then_body, has_else) = parse_if_arm(lines, ln)?;
                let else_body = if has_else {
                    parse_stmts(lines, ln)?
                } else {
                    Vec::new()
                };
                out.push(SStmt::If(cond, then_body, else_body));
            }
            "emit" => {
                let mut w = line.split_whitespace();
                w.next();
                let ev = w
                    .next()
                    .ok_or_else(|| SpecError::new(ln, "emit needs an event"))?
                    .to_string();
                let rest: String = w.collect::<Vec<_>>().join(" ");
                let value = if rest.is_empty() {
                    None
                } else {
                    Some(parse_expr(&mut Tokens::new(&rest), ln)?)
                };
                out.push(SStmt::Emit(ev, value));
            }
            _ => {
                let (lhs, rhs) = line
                    .split_once('=')
                    .ok_or_else(|| SpecError::new(ln, format!("unparsable statement `{line}`")))?;
                let lhs = lhs.trim();
                let rhs = rhs.trim();
                if let Some(addr) = lhs.strip_prefix("mem[").and_then(|s| s.strip_suffix(']')) {
                    let addr = parse_expr(&mut Tokens::new(addr), ln)?;
                    let value = parse_expr(&mut Tokens::new(rhs), ln)?;
                    out.push(SStmt::MemWrite(addr, value));
                } else if let Some(addr) =
                    rhs.strip_prefix("mem[").and_then(|s| s.strip_suffix(']'))
                {
                    let addr = parse_expr(&mut Tokens::new(addr), ln)?;
                    out.push(SStmt::MemRead(lhs.to_string(), addr));
                } else {
                    let value = parse_expr(&mut Tokens::new(rhs), ln)?;
                    out.push(SStmt::Assign(lhs.to_string(), value));
                }
            }
        }
    }
}

/// Token stream over one expression.
struct Tokens<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Self {
        // Split parens into their own tokens.
        let mut toks = Vec::new();
        let mut start = None;
        for (i, c) in s.char_indices() {
            if c == '(' || c == ')' {
                if let Some(st) = start.take() {
                    toks.push(&s[st..i]);
                }
                toks.push(&s[i..i + c.len_utf8()]);
            } else if c.is_whitespace() {
                if let Some(st) = start.take() {
                    toks.push(&s[st..i]);
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(st) = start {
            toks.push(&s[st..]);
        }
        Tokens { toks, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.toks.get(self.pos).copied();
        self.pos += 1;
        t
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

fn parse_expr(t: &mut Tokens<'_>, ln: usize) -> Result<SExpr, SpecError> {
    let e = parse_expr_inner(t, ln)?;
    if !t.done() {
        return Err(SpecError::new(ln, "trailing tokens after expression"));
    }
    Ok(e)
}

fn parse_expr_inner(t: &mut Tokens<'_>, ln: usize) -> Result<SExpr, SpecError> {
    let tok = t
        .next()
        .ok_or_else(|| SpecError::new(ln, "expected an expression"))?;
    match tok {
        "(" => {
            let op = t
                .next()
                .ok_or_else(|| SpecError::new(ln, "expected an operator"))?;
            let un = match op {
                "not" => Some(UnOp::Not),
                "lnot" => Some(UnOp::LNot),
                "neg" => Some(UnOp::Neg),
                _ => None,
            };
            let e = if let Some(u) = un {
                let a = parse_expr_inner(t, ln)?;
                SExpr::Un(u, Box::new(a))
            } else {
                let bin = match op {
                    "+" => BinOp::Add,
                    "-" => BinOp::Sub,
                    "*" => BinOp::Mul,
                    "/" => BinOp::Div,
                    "%" => BinOp::Rem,
                    "&" | "and" => BinOp::And,
                    "|" | "or" => BinOp::Or,
                    "^" | "xor" => BinOp::Xor,
                    "<<" => BinOp::Shl,
                    ">>" => BinOp::Shr,
                    "==" => BinOp::Eq,
                    "!=" => BinOp::Ne,
                    "<" => BinOp::Lt,
                    "<=" => BinOp::Le,
                    ">" => BinOp::Gt,
                    ">=" => BinOp::Ge,
                    other => {
                        return Err(SpecError::new(ln, format!("unknown operator `{other}`")))
                    }
                };
                let a = parse_expr_inner(t, ln)?;
                let b = parse_expr_inner(t, ln)?;
                SExpr::Bin(bin, Box::new(a), Box::new(b))
            };
            match t.next() {
                Some(")") => Ok(e),
                _ => Err(SpecError::new(ln, "expected `)`")),
            }
        }
        ")" => Err(SpecError::new(ln, "unexpected `)`")),
        tok if tok.starts_with('$') => Ok(SExpr::EventValue(tok[1..].to_string())),
        tok => {
            if let Ok(i) = tok.parse::<i64>() {
                Ok(SExpr::Int(i))
            } else {
                Ok(SExpr::Var(tok.to_string()))
            }
        }
    }
}

struct ResolveEnv<'a> {
    vars: &'a HashMap<String, VarId>,
    events: &'a HashMap<String, (EventId, bool)>,
}

fn resolve_expr(e: &SExpr, env: &ResolveEnv<'_>, ln: usize) -> Result<Expr, SpecError> {
    Ok(match e {
        SExpr::Int(i) => Expr::Const(*i),
        SExpr::Var(v) => Expr::Var(
            *env.vars
                .get(v)
                .ok_or_else(|| SpecError::new(ln, format!("unknown variable `{v}`")))?,
        ),
        SExpr::EventValue(ev) => {
            let &(id, valued) = env
                .events
                .get(ev)
                .ok_or_else(|| SpecError::new(ln, format!("unknown event `{ev}`")))?;
            if !valued {
                return Err(SpecError::new(ln, format!("event `{ev}` carries no value")));
            }
            Expr::EventValue(id)
        }
        SExpr::Un(op, a) => Expr::un(*op, resolve_expr(a, env, ln)?),
        SExpr::Bin(op, a, b) => Expr::bin(
            *op,
            resolve_expr(a, env, ln)?,
            resolve_expr(b, env, ln)?,
        ),
    })
}

/// Lowers a structured statement tree into a basic-block CFG.
fn lower_body(body: &[SStmt], env: &ResolveEnv<'_>, ln: usize) -> Result<Cfg, SpecError> {
    // Blocks are built with placeholder terminators and patched.
    let mut blocks: Vec<BasicBlock> = vec![BasicBlock {
        stmts: Vec::new(),
        term: Terminator::Return,
    }];
    let entry = 0usize;
    let exit = lower_seq(body, entry, &mut blocks, env, ln)?;
    blocks[exit].term = Terminator::Return;
    let cfg = Cfg::new(blocks);
    cfg.validate()
        .map_err(|e| SpecError::new(ln, format!("invalid body: {e}")))?;
    Ok(cfg)
}

/// Lowers `stmts` starting in block `cur`; returns the block that
/// control falls out of.
fn lower_seq(
    stmts: &[SStmt],
    mut cur: usize,
    blocks: &mut Vec<BasicBlock>,
    env: &ResolveEnv<'_>,
    ln: usize,
) -> Result<usize, SpecError> {
    for s in stmts {
        match s {
            SStmt::Assign(v, e) => {
                let var = *env
                    .vars
                    .get(v)
                    .ok_or_else(|| SpecError::new(ln, format!("unknown variable `{v}`")))?;
                let expr = resolve_expr(e, env, ln)?;
                blocks[cur].stmts.push(Stmt::Assign { var, expr });
            }
            SStmt::Emit(ev, val) => {
                let &(event, valued) = env
                    .events
                    .get(ev)
                    .ok_or_else(|| SpecError::new(ln, format!("unknown event `{ev}`")))?;
                if valued != val.is_some() {
                    return Err(SpecError::new(
                        ln,
                        format!("emit of `{ev}` must {} a value", if valued { "carry" } else { "not carry" }),
                    ));
                }
                let value = val
                    .as_ref()
                    .map(|e| resolve_expr(e, env, ln))
                    .transpose()?;
                blocks[cur].stmts.push(Stmt::Emit { event, value });
            }
            SStmt::MemRead(v, addr) => {
                let var = *env
                    .vars
                    .get(v)
                    .ok_or_else(|| SpecError::new(ln, format!("unknown variable `{v}`")))?;
                let addr = resolve_expr(addr, env, ln)?;
                blocks[cur].stmts.push(Stmt::MemRead { var, addr });
            }
            SStmt::MemWrite(addr, value) => {
                let addr = resolve_expr(addr, env, ln)?;
                let value = resolve_expr(value, env, ln)?;
                blocks[cur].stmts.push(Stmt::MemWrite { addr, value });
            }
            SStmt::While(cond, body) => {
                let cond = resolve_expr(cond, env, ln)?;
                // cur -> head; head -(T)-> body… -> head; head -(F)-> join
                let head = push_block(blocks);
                blocks[cur].term = Terminator::Goto(BlockId(head as u32));
                let body_entry = push_block(blocks);
                let body_exit = lower_seq(body, body_entry, blocks, env, ln)?;
                blocks[body_exit].term = Terminator::Goto(BlockId(head as u32));
                let join = push_block(blocks);
                blocks[head].term = Terminator::Branch {
                    cond,
                    then_block: BlockId(body_entry as u32),
                    else_block: BlockId(join as u32),
                };
                cur = join;
            }
            SStmt::If(cond, then_s, else_s) => {
                let cond = resolve_expr(cond, env, ln)?;
                let then_entry = push_block(blocks);
                let then_exit = lower_seq(then_s, then_entry, blocks, env, ln)?;
                let else_entry = push_block(blocks);
                let else_exit = lower_seq(else_s, else_entry, blocks, env, ln)?;
                let join = push_block(blocks);
                blocks[cur].term = Terminator::Branch {
                    cond,
                    then_block: BlockId(then_entry as u32),
                    else_block: BlockId(else_entry as u32),
                };
                blocks[then_exit].term = Terminator::Goto(BlockId(join as u32));
                blocks[else_exit].term = Terminator::Goto(BlockId(join as u32));
                cur = join;
            }
        }
    }
    Ok(cur)
}

fn push_block(blocks: &mut Vec<BasicBlock>) -> usize {
    blocks.push(BasicBlock {
        stmts: Vec::new(),
        term: Terminator::Return,
    });
    blocks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoSimConfig, CoSimulator};
    use cfsm::NullEnv;

    const BLINKER: &str = "\
system blinker
event TICK
event LEVEL value
process counter hw priority 2
  var n = 0
  state run
  transition run -> run on TICK
    n = (+ n 1)
    if (> n 3)
      n = 0
    end
    emit LEVEL n
  end
stimulus 100 TICK
stimulus 200 TICK
stimulus 300 TICK
stimulus 400 TICK
stimulus 500 TICK
";

    #[test]
    fn parses_and_co_estimates() {
        let soc = parse_system(BLINKER).expect("parses");
        assert_eq!(soc.name, "blinker");
        assert_eq!(soc.priorities, vec![2]);
        let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("builds");
        let r = sim.run();
        assert_eq!(r.firings, 5);
        assert!(r.total_energy_j() > 0.0);
    }

    #[test]
    fn if_wraps_the_counter() {
        let soc = parse_system(BLINKER).expect("parses");
        let p = soc.network.process_by_name("counter").expect("exists");
        let machine = soc.network.cfsm(p);
        let mut rt = machine.spawn(soc.network.events().len());
        let tick = soc.network.event_by_name("TICK").expect("TICK");
        let mut emitted = Vec::new();
        for _ in 0..5 {
            rt.deliver(EventOccurrence::pure(tick));
            let fr = machine.try_fire(&mut rt, &mut NullEnv).expect("fires");
            emitted.extend(fr.execution.emitted.iter().map(|&(_, v)| v.expect("valued")));
        }
        // n wraps after exceeding 3: 1,2,3,0,1  (n=4 resets to 0).
        assert_eq!(emitted, vec![1, 2, 3, 0, 1]);
    }

    #[test]
    fn while_loops_lower_correctly() {
        let spec = "\
system looper
event GO value
event DONE value
process p sw
  var i = 0
  var acc = 0
  state s
  transition s -> s on GO
    i = $GO
    acc = 0
    while (> i 0)
      acc = (+ acc i)
      i = (- i 1)
    end
    emit DONE acc
  end
stimulus 10 GO 5
";
        let soc = parse_system(spec).expect("parses");
        let p = soc.network.process_by_name("p").expect("exists");
        let machine = soc.network.cfsm(p);
        let mut rt = machine.spawn(soc.network.events().len());
        let go = soc.network.event_by_name("GO").expect("GO");
        rt.deliver(EventOccurrence::valued(go, 5));
        let fr = machine.try_fire(&mut rt, &mut NullEnv).expect("fires");
        assert_eq!(fr.execution.emitted[0].1, Some(15)); // 5+4+3+2+1
    }

    #[test]
    fn memory_and_guards_parse() {
        let spec = "\
system memo
event GO value
process p sw
  var x = 0
  state s
  transition s -> s on GO when (> $GO 10)
    mem[(+ $GO 4)] = (* $GO 2)
    x = mem[(+ $GO 4)]
  end
stimulus 10 GO 20
";
        let soc = parse_system(spec).expect("parses");
        let trace = crate::capture_traces(&soc);
        assert_eq!(trace.firings.len(), 1);
        let accs = &trace.firings[0].execution.mem_accesses;
        assert_eq!(accs.len(), 2);
        assert_eq!(accs[0].addr, 24);
        assert_eq!(accs[0].value, 40);
        assert!(!accs[1].write);
    }

    #[test]
    fn guard_blocks_below_threshold() {
        let spec = "\
system guard
event GO value
process p hw
  var x = 0
  state s
  transition s -> s on GO when (> $GO 10)
    x = (+ x 1)
  end
stimulus 10 GO 5
stimulus 20 GO 50
";
        let soc = parse_system(spec).expect("parses");
        let trace = crate::capture_traces(&soc);
        assert_eq!(trace.firings.len(), 1, "only the value-50 stimulus fires");
    }

    #[test]
    fn error_lines_are_reported() {
        let missing_end = "system x\nevent GO\nprocess p hw\n  state s\n  transition s -> s on GO\n    emit GO\n";
        let err = parse_system(missing_end).expect_err("must fail");
        assert!(err.message.contains("unterminated"), "{err}");

        let bad_event = "system x\nevent GO\nprocess p hw\n  state s\n  transition s -> s on NOPE\n  end\n";
        let err = parse_system(bad_event).expect_err("must fail");
        assert!(err.message.contains("unknown event"), "{err}");
        assert_eq!(err.line, 5);

        let bad_expr = "system x\nevent GO\nprocess p hw\n  var v = 0\n  state s\n  transition s -> s on GO\n    v = (+ 1\n  end\n";
        let err = parse_system(bad_expr).expect_err("must fail");
        assert_eq!(err.line, 7);

        let pure_value = "system x\nevent GO\nstimulus 5 GO 3\n";
        let err = parse_system(pure_value).expect_err("must fail");
        assert!(err.message.contains("pure"), "{err}");
    }

    const POWERED: &str = "\
system powered
event GO
leakage 0.002 0.3 0.02
process worker hw priority 2
  var n = 0
  state s
  power dvfs low 0.8 0.5
  power clock_gate 400
  transition s -> s on GO
    n = (+ n 1)
  end
process helper sw priority 1
  var m = 0
  state s
  power power_gate 900 0.000005 25
  transition s -> s on GO
    m = (+ m 1)
  end
stimulus 10 GO
stimulus 5000 GO
";

    #[test]
    fn power_directives_build_a_policy() {
        use crate::powermgmt::{GateMode, PowerPolicy};
        let (soc, policy) = parse_system_with_power(POWERED).expect("parses");
        assert_eq!(policy.name, "powered");
        assert!(!policy.is_noop());
        assert_eq!(policy.leakage.default_leak_w, 2.0e-3);
        assert_eq!(policy.operating_points.len(), 1);
        assert_eq!(policy.operating_points[0].name, "low");
        let worker = policy
            .components
            .iter()
            .find(|(n, _)| n == "worker")
            .expect("worker entry");
        assert_eq!(worker.1.operating_point, Some(0));
        assert_eq!(worker.1.gating.as_ref().expect("gated").mode, GateMode::Clock);
        let helper = policy
            .components
            .iter()
            .find(|(n, _)| n == "helper")
            .expect("helper entry");
        let g = helper.1.gating.as_ref().expect("gated");
        assert_eq!(g.mode, GateMode::Power);
        assert_eq!(g.wake_latency_cycles, 25);
        // The policy runs end to end and reports power results.
        let config = CoSimConfig::date2000_defaults().with_power_policy(policy);
        let mut sim = CoSimulator::new(soc.clone(), config).expect("builds");
        let r = sim.run();
        r.verify_provenance().expect("provenance exact");
        assert!(r.power.expect("managed").leakage_j > 0.0);
        // parse_system accepts the same text, discarding the policy.
        let plain = parse_system(POWERED).expect("parses");
        assert_eq!(plain.name, soc.name);
        // A power-free spec yields the guaranteed-noop default.
        let (_, none) = parse_system_with_power(BLINKER).expect("parses");
        assert_eq!(none, PowerPolicy::none());
    }

    #[test]
    fn unknown_power_state_is_rejected() {
        let bad = "\
system x
event GO
process p hw
  state s
  power hibernate 100
  transition s -> s on GO
  end
stimulus 1 GO
";
        let err = parse_system_with_power(bad).expect_err("must fail");
        assert!(err.message.contains("unknown power state `hibernate`"), "{err}");
        assert_eq!(err.line, 5);

        let missing = "\
system x
event GO
process p hw
  state s
  power clock_gate
  transition s -> s on GO
  end
stimulus 1 GO
";
        let err = parse_system_with_power(missing).expect_err("must fail");
        assert!(err.message.contains("idle timeout"), "{err}");

        let redefined = "\
system x
event GO
process p hw
  state s
  power dvfs low 0.8 0.5
  power dvfs low 0.9 0.5
  transition s -> s on GO
  end
stimulus 1 GO
";
        let err = parse_system_with_power(redefined).expect_err("must fail");
        assert!(err.message.contains("redefined"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = "# a comment\nsystem c  # trailing\n\nevent GO\nprocess p hw\n  state s\n  transition s -> s on GO\n  end\nstimulus 1 GO\n";
        let soc = parse_system(spec).expect("parses");
        assert_eq!(soc.name, "c");
    }

    #[test]
    fn nested_control_flow_lowers() {
        let spec = "\
system nest
event GO value
event OUT value
process p sw
  var i = 0
  var odd = 0
  var even = 0
  state s
  transition s -> s on GO
    i = $GO
    while (> i 0)
      if (== (% i 2) 1)
        odd = (+ odd 1)
      else
        even = (+ even 1)
      end
      i = (- i 1)
    end
    emit OUT (- odd even)
  end
stimulus 10 GO 7
";
        let soc = parse_system(spec).expect("parses");
        let p = soc.network.process_by_name("p").expect("exists");
        let machine = soc.network.cfsm(p);
        let mut rt = machine.spawn(soc.network.events().len());
        let go = soc.network.event_by_name("GO").expect("GO");
        rt.deliver(EventOccurrence::valued(go, 7));
        let fr = machine.try_fire(&mut rt, &mut NullEnv).expect("fires");
        // 7,6,…,1 → 4 odd, 3 even → 1.
        assert_eq!(fr.execution.emitted[0].1, Some(1));
    }
}
