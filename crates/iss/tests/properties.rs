//! Randomized (seeded, deterministic) tests: generated software must
//! agree with the behavioral CFSM interpreter on final state and
//! emissions, and per-(path, data) energy must be exactly repeatable
//! under the SPARClite model. Formerly property-based; now driven by
//! the in-repo deterministic PRNG so the suite builds offline.

use cfsm::{
    BinOp, BlockId, Cfg, CfgBuilder, Cfsm, EventId, Expr, NullEnv, Stmt, Terminator, TransitionId,
    VarId,
};
use detrand::Rng;
use iss::{PowerModel, SwCfsm};

fn machine_with(body: Cfg, n_vars: usize) -> Cfsm {
    let mut b = Cfsm::builder("m");
    let s = b.state("s");
    for v in 0..n_vars {
        b.var(format!("v{v}"), 0);
    }
    b.transition(s, vec![EventId(0)], None, body, s);
    b.finish().expect("valid machine")
}

/// Compiled code and interpreter agree on a loop whose bound and body
/// arithmetic come from random data.
#[test]
fn sw_matches_interpreter_on_loops() {
    let mut rng = Rng::new(0x1550_0001);
    for _ in 0..48 {
        let n = rng.i64_in(0, 60);
        let k = rng.i64_in(1, 9);
        let c = rng.i64_in(-50, 50);
        // while v0 > 0 { v1 = v1 * k + c; v0 = v0 - 1 }  then emit v1
        let v0 = VarId(0);
        let v1 = VarId(1);
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(v0), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        cb.block(
            vec![
                Stmt::Assign {
                    var: v1,
                    expr: Expr::add(
                        Expr::bin(BinOp::Mul, Expr::Var(v1), Expr::Const(k)),
                        Expr::Const(c),
                    ),
                },
                Stmt::Assign { var: v0, expr: Expr::sub(Expr::Var(v0), Expr::Const(1)) },
            ],
            Terminator::Goto(BlockId(0)),
        );
        cb.block(
            vec![Stmt::Emit { event: EventId(1), value: Some(Expr::Var(v1)) }],
            Terminator::Return,
        );
        let body = cb.finish().expect("valid cfg");

        let mut vars = [n, 1i64];
        let exec = body.execute(&mut vars, &mut NullEnv);

        let m = machine_with(body, 2);
        let mut sw = SwCfsm::new(&m, PowerModel::sparclite(), &|_| true).expect("compiles");
        let run = sw.run_transition(TransitionId(0), &[n, 1], &|_| 0, &[]);
        assert_eq!(&run.vars_out, &vars.to_vec(), "n={n} k={k} c={c}");
        assert_eq!(&run.emitted, &exec.emitted, "n={n} k={k} c={c}");
    }
}

/// Comparison and bitwise expressions agree with the interpreter.
#[test]
fn sw_matches_interpreter_on_expressions() {
    let mut rng = Rng::new(0x1550_0002);
    for _ in 0..48 {
        let a = rng.i64_in(-10_000, 10_000);
        let b = rng.i64_in(-10_000, 10_000);
        let v0 = VarId(0);
        let v1 = VarId(1);
        let v2 = VarId(2);
        let body = Cfg::straight_line(vec![
            Stmt::Assign { var: v2, expr: Expr::lt(Expr::Var(v0), Expr::Var(v1)) },
            Stmt::Assign {
                var: v2,
                expr: Expr::add(
                    Expr::Var(v2),
                    Expr::bin(
                        BinOp::Xor,
                        Expr::Var(v0),
                        Expr::bin(BinOp::And, Expr::Var(v1), Expr::Const(0xFF)),
                    ),
                ),
            },
            Stmt::Assign { var: v0, expr: Expr::bin(BinOp::Ge, Expr::Var(v2), Expr::Const(0)) },
        ]);
        let mut vars = [a, b, 0i64];
        body.execute(&mut vars, &mut NullEnv);
        let m = machine_with(body, 3);
        let mut sw = SwCfsm::new(&m, PowerModel::sparclite(), &|_| true).expect("compiles");
        let run = sw.run_transition(TransitionId(0), &[a, b, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vars.to_vec(), "a={a} b={b}");
    }
}

/// SPARClite energy for the same (path, data) is exactly repeatable
/// across activations — the invariant that makes caching lossless.
#[test]
fn sparclite_energy_repeatable() {
    let mut rng = Rng::new(0x1550_0003);
    for _ in 0..48 {
        let x = rng.i64_in(-1000, 1000);
        let v0 = VarId(0);
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: v0,
            expr: Expr::add(Expr::Var(v0), Expr::Const(3)),
        }]);
        let m = machine_with(body, 1);
        let mut sw = SwCfsm::new(&m, PowerModel::sparclite(), &|_| true).expect("compiles");
        let r1 = sw.run_transition(TransitionId(0), &[x], &|_| 0, &[]);
        let r2 = sw.run_transition(TransitionId(0), &[x + 7], &|_| 0, &[]);
        let r3 = sw.run_transition(TransitionId(0), &[x], &|_| 0, &[]);
        assert_eq!(r1.energy_j, r2.energy_j, "data independence (x={x})");
        assert_eq!(r1.energy_j, r3.energy_j, "repeatability (x={x})");
        assert_eq!(r1.cycles, r3.cycles, "x={x}");
    }
}

/// Balanced save/restore nesting always returns to window 0, keeps
/// globals intact, and deep nesting costs strictly more (spill traps).
#[test]
fn register_window_nesting() {
    use iss::isa::{AluOp, Instr, Operand, Reg};
    let mut rng = Rng::new(0x1550_0004);
    for _ in 0..24 {
        let depth = rng.usize_in(1, 14);
        let mut code = vec![Instr::Set { rd: Reg(1), imm: 77 }];
        for _ in 0..depth {
            code.push(Instr::Save);
            code.push(Instr::Alu {
                op: AluOp::Add,
                rd: Reg(16),
                rs1: Reg(16),
                rs2: Operand::Imm(1),
                set_cc: false,
            });
        }
        for _ in 0..depth {
            code.push(Instr::Restore);
        }
        code.push(Instr::Halt);
        let mut cpu = iss::Cpu::new(PowerModel::sparclite());
        let out = cpu.run(&code, 0, 0, &[]);
        assert_eq!(cpu.cwp(), 0, "balanced nesting returns home (depth={depth})");
        assert_eq!(cpu.reg(Reg(1)), 77, "globals survive (depth={depth})");
        assert!(out.cycles >= 1 + 3 * depth as u64, "depth={depth}");
    }
}

/// Division and remainder by zero match the behavioral convention.
#[test]
fn sw_division_semantics() {
    let mut rng = Rng::new(0x1550_0005);
    for _ in 0..48 {
        let a = rng.i64_in(-100, 100);
        let b = rng.i64_in(-5, 5);
        let body = Cfg::straight_line(vec![
            Stmt::Assign {
                var: VarId(2),
                expr: Expr::bin(BinOp::Div, Expr::Var(VarId(0)), Expr::Var(VarId(1))),
            },
            Stmt::Assign {
                var: VarId(0),
                expr: Expr::bin(BinOp::Rem, Expr::Var(VarId(0)), Expr::Var(VarId(1))),
            },
        ]);
        let mut vars = [a, b, 0i64];
        body.execute(&mut vars, &mut NullEnv);
        let m = machine_with(body, 3);
        let mut sw = SwCfsm::new(&m, PowerModel::sparclite(), &|_| true).expect("compiles");
        let run = sw.run_transition(TransitionId(0), &[a, b, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vars.to_vec(), "a={a} b={b}");
    }
}
