//! The instruction set of the modeled embedded processor.
//!
//! A SPARClite-flavoured scalar RISC: 32 visible integer registers
//! (`%r0` hard-wired to zero), integer condition codes set by the `cc`
//! forms, delayed branches with one delay slot, and hardware
//! multiply/divide. Registers are modeled 64 bits wide so that software
//! execution agrees bit-for-bit with the behavioral CFSM interpreter
//! (the co-estimation cross-checks rely on this).
//!
//! `Set` is the usual `sethi`/`or` synthetic: it occupies two instruction
//! slots and two cycles, like the real pair.

use std::fmt;

/// A general-purpose register. `%r0` always reads zero; writes to it are
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Number of visible registers.
    pub const COUNT: usize = 32;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// The second ALU operand: register or 13-bit signed immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Signed immediate; must fit in 13 bits.
    Imm(i16),
}

impl Operand {
    /// Whether `v` fits the signed 13-bit immediate field.
    pub fn fits_imm13(v: i64) -> bool {
        (-4096..=4095).contains(&v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Sll,
    /// Arithmetic shift right.
    Sra,
    /// Hardware multiply (SPARClite `smul`).
    Smul,
    /// Hardware divide (`sdiv`); division by zero yields zero, matching
    /// the behavioral model.
    Sdiv,
    /// Remainder (synthetic; lowered from `REM` macro-ops).
    Srem,
}

/// Branch conditions over the integer condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always.
    Always,
    /// Equal (Z).
    Eq,
    /// Not equal (!Z).
    Ne,
    /// Signed less (N xor V).
    Lt,
    /// Signed less-or-equal (Z or (N xor V)).
    Le,
    /// Signed greater (!(Z or (N xor V))).
    Gt,
    /// Signed greater-or-equal (!(N xor V)).
    Ge,
}

impl Cond {
    /// The negation of the condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Always => Cond::Always,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// One instruction. Branch targets are absolute instruction indices
/// within the program (resolved by the assembler in `codegen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = rs1 op operand`. `set_cc` selects the `cc` form.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Operand,
        /// Whether integer condition codes are updated.
        set_cc: bool,
    },
    /// Synthetic `sethi`/`or` pair: `rd = imm` (2 slots, 2 cycles).
    Set {
        /// Destination.
        rd: Reg,
        /// Full-width immediate.
        imm: i64,
    },
    /// Load: `rd = mem[rs1 + offset]`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 13-bit displacement.
        offset: i16,
    },
    /// Store: `mem[rs1 + offset] = rs`.
    St {
        /// Source register.
        rs: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed 13-bit displacement.
        offset: i16,
    },
    /// Delayed branch to the absolute instruction index `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Absolute instruction index.
        target: u32,
    },
    /// No operation (fills delay slots).
    Nop,
    /// SPARC `save`: rotates to the next register window (the `out`
    /// registers `%r8..%r15` become the new window's `in` registers
    /// `%r24..%r31`). Spills to memory when the window file is
    /// exhausted (window-overflow trap, modeled as extra cycles/energy).
    Save,
    /// SPARC `restore`: rotates back to the previous window; a
    /// window-underflow trap refills from memory.
    Restore,
    /// Stops execution of the current activation (returns control to the
    /// simulation master). Models the breakpoint the master plants at the
    /// end of a CFSM transition.
    Halt,
}

impl Instr {
    /// Instruction slots occupied in memory (`Set` is a 2-slot synthetic).
    pub fn slots(&self) -> u32 {
        match self {
            Instr::Set { .. } => 2,
            _ => 1,
        }
    }
}

/// Instruction word size in bytes (each slot).
pub const INSTR_BYTES: u64 = 4;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu {
                op,
                rd,
                rs1,
                rs2,
                set_cc,
            } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Sll => "sll",
                    AluOp::Sra => "sra",
                    AluOp::Smul => "smul",
                    AluOp::Sdiv => "sdiv",
                    AluOp::Srem => "srem",
                };
                let cc = if *set_cc { "cc" } else { "" };
                write!(f, "{name}{cc} {rs1}, {rs2}, {rd}")
            }
            Instr::Set { rd, imm } => write!(f, "set {imm}, {rd}"),
            Instr::Ld { rd, rs1, offset } => write!(f, "ld [{rs1}+{offset}], {rd}"),
            Instr::St { rs, rs1, offset } => write!(f, "st {rs}, [{rs1}+{offset}]"),
            Instr::Branch { cond, target } => {
                let name = match cond {
                    Cond::Always => "ba",
                    Cond::Eq => "be",
                    Cond::Ne => "bne",
                    Cond::Lt => "bl",
                    Cond::Le => "ble",
                    Cond::Gt => "bg",
                    Cond::Ge => "bge",
                };
                write!(f, "{name} .L{target}")
            }
            Instr::Nop => write!(f, "nop"),
            Instr::Save => write!(f, "save"),
            Instr::Restore => write!(f, "restore"),
            Instr::Halt => write!(f, "ta 0"),
        }
    }
}

/// Memory map of the modeled system, shared between the code generator,
/// the ISS, and the co-simulation master.
pub mod memmap {
    /// Base of the process-local variable area.
    pub const VAR_BASE: u64 = 0x3000_0000;
    /// Base of the shared-memory window (accesses here go to the system
    /// bus and are reported to the master).
    pub const SHARED_BASE: u64 = 0x1000_0000;
    /// Size of the shared-memory window.
    pub const SHARED_SIZE: u64 = 0x1000_0000;
    /// Base of the memory-mapped event-emission region; a store to
    /// `EMIT_BASE + 8*event` emits that event.
    pub const EMIT_BASE: u64 = 0x2000_0000;
    /// Bytes per variable slot.
    pub const VAR_STRIDE: u64 = 8;

    /// Whether an address falls in the shared window.
    pub fn is_shared(addr: u64) -> bool {
        (SHARED_BASE..SHARED_BASE + SHARED_SIZE).contains(&addr)
    }

    /// Whether an address is an event-emission port; returns the event
    /// index if so.
    pub fn emit_event(addr: u64) -> Option<u32> {
        if (EMIT_BASE..EMIT_BASE + 8 * 4096).contains(&addr) {
            Some(((addr - EMIT_BASE) / 8) as u32)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_constant() {
        assert_eq!(Reg::ZERO, Reg(0));
        assert_eq!(Reg::COUNT, 32);
    }

    #[test]
    fn imm13_bounds() {
        assert!(Operand::fits_imm13(0));
        assert!(Operand::fits_imm13(4095));
        assert!(Operand::fits_imm13(-4096));
        assert!(!Operand::fits_imm13(4096));
        assert!(!Operand::fits_imm13(-4097));
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
        ] {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
        assert_eq!(Cond::Always.negate(), Cond::Always);
    }

    #[test]
    fn set_occupies_two_slots() {
        assert_eq!(Instr::Set { rd: Reg(1), imm: 123456 }.slots(), 2);
        assert_eq!(Instr::Nop.slots(), 1);
    }

    #[test]
    fn display_forms() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Operand::Imm(4),
            set_cc: true,
        };
        assert_eq!(i.to_string(), "addcc %r1, 4, %r3");
        assert_eq!(
            Instr::Branch { cond: Cond::Le, target: 7 }.to_string(),
            "ble .L7"
        );
    }

    #[test]
    fn memmap_regions_are_disjoint() {
        use memmap::*;
        assert!(is_shared(SHARED_BASE));
        assert!(!is_shared(VAR_BASE));
        assert!(!is_shared(EMIT_BASE));
        assert_eq!(emit_event(EMIT_BASE + 16), Some(2));
        assert_eq!(emit_event(VAR_BASE), None);
    }
}
