//! Code generation: CFSM transition bodies → SPARClite-style programs.
//!
//! This is the analogue of the POLIS software-synthesis + target-compiler
//! step (Fig. 2a). The generated code is *optimized across
//! macro-operation boundaries*: variables live in registers for the whole
//! transition (loaded once at entry, stored once at exit), constants fold
//! into immediates, and comparisons fuse with branches. The macro-model
//! characterization flow, in contrast, measures each macro-operation in
//! isolation with full operand loads/stores
//! ([`macro_op_template`]) — this difference is precisely why the
//! additive macro-model *over-estimates* software energy by ~20–30%
//! (paper Table 2) while remaining rank-preserving.

use crate::isa::{memmap, AluOp, Cond, Instr, Operand, Reg, INSTR_BYTES};
use cfsm::{BinOp, Cfsm, EventId, Expr, MacroOp, Stmt, Terminator, UnOp, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// Base address of the event-value mailbox (written by the simulation
/// master before each activation, read by generated code).
pub const EVENT_VAL_BASE: u64 = 0x2800_0000;

/// First register used to pin CFSM variables (`%r16..`).
const VAR_REG_BASE: u8 = 16;
/// Number of pinnable variables.
const VAR_REG_COUNT: u8 = 12;
/// First expression scratch register (`%r8..%r15`).
const SCRATCH_BASE: u8 = 8;
/// Number of scratch registers.
const SCRATCH_COUNT: u8 = 8;
/// Address-formation temporaries.
const ADDR_REG: Reg = Reg(1);
const ADDR_REG2: Reg = Reg(2);

/// Errors from code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The machine declares more variables than the register allocator
    /// can pin.
    TooManyVars(usize),
    /// An expression nests deeper than the scratch register file.
    ExprTooDeep,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::TooManyVars(n) => write!(
                f,
                "{n} variables exceed the {VAR_REG_COUNT} pinnable registers"
            ),
            CodegenError::ExprTooDeep => {
                write!(f, "expression deeper than {SCRATCH_COUNT} scratch registers")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Code layout of one compiled transition.
#[derive(Debug, Clone)]
pub struct TransitionCode {
    /// Entry instruction index.
    pub entry: u32,
    /// Slot range `[start, end)` of the prologue (entry var loads).
    pub prologue_slots: (u32, u32),
    /// Per-CFG-block slot ranges `[start, end)` (for I-fetch trace
    /// generation from behavioral traces).
    pub block_slots: Vec<(u32, u32)>,
    /// Slot range of the epilogue (exit var stores + halt).
    pub epilogue_slots: (u32, u32),
    /// Events whose values the body reads (the master writes these into
    /// the mailbox before activation).
    pub event_reads: Vec<EventId>,
}

/// A compiled CFSM: program text plus per-transition layout.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instructions.
    pub code: Vec<Instr>,
    /// Per-transition layout, indexed by [`cfsm::TransitionId`].
    pub transitions: Vec<TransitionCode>,
    /// Load address of the text segment.
    pub base_addr: u64,
    /// Number of machine variables.
    pub n_vars: usize,
}

impl Program {
    /// Total instruction slots (`Set` counts twice).
    pub fn slot_count(&self) -> u32 {
        self.code.iter().map(Instr::slots).sum()
    }

    /// Renders an assembly listing with addresses, transition entry
    /// labels, and per-block markers — the `objdump`-style view of the
    /// generated software.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut slot = 0u64;
        for (idx, instr) in self.code.iter().enumerate() {
            for (t, tc) in self.transitions.iter().enumerate() {
                if tc.entry == idx as u32 {
                    let _ = writeln!(s, "transition_{t}:");
                }
            }
            let addr = self.base_addr + slot * INSTR_BYTES;
            let _ = writeln!(s, "  {addr:#010x}:  {instr}");
            slot += instr.slots() as u64;
        }
        s
    }

    /// Static per-class instruction counts (code-size profiling).
    pub fn instruction_mix(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut mix = std::collections::BTreeMap::new();
        for i in &self.code {
            let name = match i {
                Instr::Alu { .. } => "alu",
                Instr::Set { .. } => "set",
                Instr::Ld { .. } => "load",
                Instr::St { .. } => "store",
                Instr::Branch { .. } => "branch",
                Instr::Nop => "nop",
                Instr::Save | Instr::Restore => "window",
                Instr::Halt => "halt",
            };
            *mix.entry(name).or_insert(0) += 1;
        }
        mix
    }

    /// Code size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.slot_count() as u64 * INSTR_BYTES
    }

    /// The fetch addresses of a slot range.
    pub fn slot_addrs(&self, range: (u32, u32)) -> impl Iterator<Item = u64> + '_ {
        (range.0..range.1).map(move |s| self.base_addr + s as u64 * INSTR_BYTES)
    }
}

/// Tiny assembler: labels + patching.
struct Asm {
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, usize)>, // (instr index, label id)
    slots: u32,
}

impl Asm {
    fn new() -> Self {
        Asm {
            code: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            slots: 0,
        }
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn slot(&self) -> u32 {
        self.slots
    }

    fn push(&mut self, i: Instr) {
        self.slots += i.slots();
        self.code.push(i);
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.here());
    }

    fn branch(&mut self, cond: Cond, l: usize) {
        self.patches.push((self.code.len(), l));
        self.push(Instr::Branch { cond, target: 0 });
    }

    fn finish(mut self) -> Vec<Instr> {
        for (idx, l) in self.patches {
            debug_assert!(self.labels[l].is_some(), "label never bound");
            let Some(target) = self.labels[l] else { continue };
            if let Instr::Branch { target: t, .. } = &mut self.code[idx] {
                *t = target;
            } else {
                unreachable!("patch site is a branch");
            }
        }
        self.code
    }
}

/// Compiles every transition of `machine` into one program.
///
/// # Errors
///
/// Returns a [`CodegenError`] if the machine exceeds the register
/// allocator's limits.
///
/// # Examples
///
/// ```
/// use cfsm::{Cfsm, Cfg, Stmt, Expr, EventId};
/// use iss::codegen::compile;
///
/// let mut b = Cfsm::builder("inc");
/// let s = b.state("s");
/// let v = b.var("v", 0);
/// b.transition(s, vec![EventId(0)], None,
///     Cfg::straight_line(vec![Stmt::Assign {
///         var: v,
///         expr: Expr::add(Expr::Var(v), Expr::Const(1)),
///     }]), s);
/// let machine = b.finish()?;
/// let program = compile(&machine, 0x4000)?;
/// assert_eq!(program.transitions.len(), 1);
/// assert!(program.size_bytes() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(machine: &Cfsm, base_addr: u64) -> Result<Program, CodegenError> {
    let n_vars = machine.vars().len();
    if n_vars > VAR_REG_COUNT as usize {
        return Err(CodegenError::TooManyVars(n_vars));
    }
    let mut asm = Asm::new();
    let mut transitions = Vec::with_capacity(machine.transitions().len());
    for t in machine.transitions() {
        transitions.push(compile_transition(&mut asm, t, n_vars)?);
    }
    Ok(Program {
        code: asm.finish(),
        transitions,
        base_addr,
        n_vars,
    })
}

fn var_reg(v: VarId) -> Reg {
    Reg(VAR_REG_BASE + v.0 as u8)
}

fn scratch(depth: u8) -> Result<Reg, CodegenError> {
    if depth >= SCRATCH_COUNT {
        Err(CodegenError::ExprTooDeep)
    } else {
        Ok(Reg(SCRATCH_BASE + depth))
    }
}

fn collect_vars(e: &Expr, reads: &mut BTreeSet<VarId>, evs: &mut BTreeSet<EventId>) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => {
            reads.insert(*v);
        }
        Expr::EventValue(ev) => {
            evs.insert(*ev);
        }
        Expr::Unary(_, a) => collect_vars(a, reads, evs),
        Expr::Binary(_, a, b) => {
            collect_vars(a, reads, evs);
            collect_vars(b, reads, evs);
        }
    }
}

fn compile_transition(
    asm: &mut Asm,
    t: &cfsm::Transition,
    n_vars: usize,
) -> Result<TransitionCode, CodegenError> {
    // Liveness-lite: vars read anywhere are loaded at entry; vars written
    // anywhere are stored at exit.
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut evs = BTreeSet::new();
    for block in t.body.blocks() {
        for s in &block.stmts {
            match s {
                Stmt::Assign { var, expr } => {
                    collect_vars(expr, &mut reads, &mut evs);
                    writes.insert(*var);
                }
                Stmt::Emit { value, .. } => {
                    if let Some(v) = value {
                        collect_vars(v, &mut reads, &mut evs);
                    }
                }
                Stmt::MemRead { var, addr } => {
                    collect_vars(addr, &mut reads, &mut evs);
                    writes.insert(*var);
                }
                Stmt::MemWrite { addr, value } => {
                    collect_vars(addr, &mut reads, &mut evs);
                    collect_vars(value, &mut reads, &mut evs);
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            collect_vars(cond, &mut reads, &mut evs);
        }
    }
    let _ = n_vars;

    let entry = asm.here();
    let prologue_start = asm.slot();
    // Prologue: the RTOS dispatches the transition as a routine — rotate
    // into a fresh register window, then load the read variables.
    asm.push(Instr::Save);
    if !reads.is_empty() {
        asm.push(Instr::Set {
            rd: ADDR_REG,
            imm: memmap::VAR_BASE as i64,
        });
        for &v in &reads {
            asm.push(Instr::Ld {
                rd: var_reg(v),
                rs1: ADDR_REG,
                offset: (v.0 as u64 * memmap::VAR_STRIDE) as i16,
            });
        }
    }
    let prologue_end = asm.slot();

    // Body blocks, in order; one label per block.
    let block_labels: Vec<usize> = t.body.blocks().iter().map(|_| asm.label()).collect();
    let exit_label = asm.label();
    let mut block_slots = Vec::with_capacity(t.body.blocks().len());
    for (bi, block) in t.body.blocks().iter().enumerate() {
        asm.bind(block_labels[bi]);
        let start = asm.slot();
        for s in &block.stmts {
            emit_stmt(asm, s)?;
        }
        match &block.term {
            Terminator::Return => {
                asm.branch(Cond::Always, exit_label);
                asm.push(Instr::Nop);
            }
            Terminator::Goto(tgt) => {
                if tgt.0 as usize != bi + 1 {
                    asm.branch(Cond::Always, block_labels[tgt.0 as usize]);
                    asm.push(Instr::Nop);
                }
                // Fallthrough otherwise.
            }
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                // Fuse a top-level comparison with the branch when
                // possible (cross-macro-op optimization).
                let (bcond, fused) = fuse_compare(asm, cond)?;
                let then_l = block_labels[then_block.0 as usize];
                let else_l = block_labels[else_block.0 as usize];
                if !fused {
                    // Generic: test cond != 0.
                    let s = emit_expr(asm, cond, 0)?;
                    asm.push(Instr::Alu {
                        op: AluOp::Sub,
                        rd: Reg::ZERO,
                        rs1: s,
                        rs2: Operand::Imm(0),
                        set_cc: true,
                    });
                }
                // Branch to then; fall through / jump to else.
                asm.branch(bcond, then_l);
                asm.push(Instr::Nop);
                if else_block.0 as usize != bi + 1 {
                    asm.branch(Cond::Always, else_l);
                    asm.push(Instr::Nop);
                }
            }
        }
        block_slots.push((start, asm.slot()));
    }

    // Epilogue: store written variables, halt.
    asm.bind(exit_label);
    let epilogue_start = asm.slot();
    if !writes.is_empty() {
        asm.push(Instr::Set {
            rd: ADDR_REG,
            imm: memmap::VAR_BASE as i64,
        });
        for &v in &writes {
            asm.push(Instr::St {
                rs: var_reg(v),
                rs1: ADDR_REG,
                offset: (v.0 as u64 * memmap::VAR_STRIDE) as i16,
            });
        }
    }
    asm.push(Instr::Restore);
    asm.push(Instr::Halt);
    let epilogue_end = asm.slot();

    Ok(TransitionCode {
        entry,
        prologue_slots: (prologue_start, prologue_end),
        block_slots,
        epilogue_slots: (epilogue_start, epilogue_end),
        event_reads: evs.into_iter().collect(),
    })
}

/// If `cond` is a top-level comparison, emits the `subcc` and returns the
/// fused branch condition; otherwise returns `(Ne, false)` and the caller
/// emits a generic nonzero test.
fn fuse_compare(asm: &mut Asm, cond: &Expr) -> Result<(Cond, bool), CodegenError> {
    if let Expr::Binary(op, a, b) = cond {
        let bc = match op {
            BinOp::Eq => Some(Cond::Eq),
            BinOp::Ne => Some(Cond::Ne),
            BinOp::Lt => Some(Cond::Lt),
            BinOp::Le => Some(Cond::Le),
            BinOp::Gt => Some(Cond::Gt),
            BinOp::Ge => Some(Cond::Ge),
            _ => None,
        };
        if let Some(bc) = bc {
            let (rs1, rs2) = emit_compare_operands(asm, a, b)?;
            asm.push(Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::ZERO,
                rs1,
                rs2,
                set_cc: true,
            });
            return Ok((bc, true));
        }
    }
    Ok((Cond::Ne, false))
}

/// Emits the operands of a fused comparison, using registers/immediates
/// directly where possible.
fn emit_compare_operands(
    asm: &mut Asm,
    a: &Expr,
    b: &Expr,
) -> Result<(Reg, Operand), CodegenError> {
    let rs1 = match a {
        Expr::Var(v) => var_reg(*v),
        _ => emit_expr(asm, a, 0)?,
    };
    let rs2 = match b {
        Expr::Const(c) if Operand::fits_imm13(*c) => Operand::Imm(*c as i16),
        Expr::Var(v) => Operand::Reg(var_reg(*v)),
        _ => {
            let depth = if rs1.0 >= SCRATCH_BASE && rs1.0 < SCRATCH_BASE + SCRATCH_COUNT {
                rs1.0 - SCRATCH_BASE + 1
            } else {
                0
            };
            Operand::Reg(emit_expr(asm, b, depth)?)
        }
    };
    Ok((rs1, rs2))
}

fn emit_stmt(asm: &mut Asm, s: &Stmt) -> Result<(), CodegenError> {
    match s {
        Stmt::Assign { var, expr } => {
            // Compute into a scratch (or directly reference) and move to
            // the variable's pinned register.
            match expr {
                Expr::Const(c) if Operand::fits_imm13(*c) => {
                    asm.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: var_reg(*var),
                        rs1: Reg::ZERO,
                        rs2: Operand::Imm(*c as i16),
                        set_cc: false,
                    });
                }
                Expr::Const(c) => {
                    asm.push(Instr::Set {
                        rd: var_reg(*var),
                        imm: *c,
                    });
                }
                Expr::Var(src) => {
                    asm.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: var_reg(*var),
                        rs1: var_reg(*src),
                        rs2: Operand::Imm(0),
                        set_cc: false,
                    });
                }
                _ => {
                    let s = emit_expr(asm, expr, 0)?;
                    asm.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: var_reg(*var),
                        rs1: s,
                        rs2: Operand::Imm(0),
                        set_cc: false,
                    });
                }
            }
        }
        Stmt::Emit { event, value } => {
            let src = match value {
                None => Reg::ZERO,
                Some(Expr::Var(v)) => var_reg(*v),
                Some(e) => emit_expr(asm, e, 0)?,
            };
            asm.push(Instr::Set {
                rd: ADDR_REG,
                imm: memmap::EMIT_BASE as i64,
            });
            asm.push(Instr::St {
                rs: src,
                rs1: ADDR_REG,
                offset: (event.0 as u64 * 8) as i16,
            });
        }
        Stmt::MemRead { var, addr } => {
            let a = emit_shared_addr(asm, addr)?;
            asm.push(Instr::Ld {
                rd: var_reg(*var),
                rs1: a,
                offset: 0,
            });
        }
        Stmt::MemWrite { addr, value } => {
            let a = emit_shared_addr(asm, addr)?;
            // Value into the next scratch after the address register.
            let src = match value {
                Expr::Var(v) => var_reg(*v),
                Expr::Const(c) if Operand::fits_imm13(*c) => {
                    let s = scratch(1)?;
                    asm.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: s,
                        rs1: Reg::ZERO,
                        rs2: Operand::Imm(*c as i16),
                        set_cc: false,
                    });
                    s
                }
                e => emit_expr(asm, e, 1)?,
            };
            asm.push(Instr::St {
                rs: src,
                rs1: a,
                offset: 0,
            });
        }
    }
    Ok(())
}

/// Computes `SHARED_BASE + addr_expr` into scratch 0.
fn emit_shared_addr(asm: &mut Asm, addr: &Expr) -> Result<Reg, CodegenError> {
    let s = scratch(0)?;
    match addr {
        Expr::Const(c) => {
            asm.push(Instr::Set {
                rd: s,
                imm: memmap::SHARED_BASE as i64 + c,
            });
        }
        _ => {
            let r = emit_expr(asm, addr, 0)?;
            asm.push(Instr::Set {
                rd: ADDR_REG2,
                imm: memmap::SHARED_BASE as i64,
            });
            asm.push(Instr::Alu {
                op: AluOp::Add,
                rd: s,
                rs1: r,
                rs2: Operand::Reg(ADDR_REG2),
                set_cc: false,
            });
        }
    }
    Ok(s)
}

/// Emits code computing `e` and returns the register holding the result
/// (a scratch register at `depth`, or a variable's pinned register).
fn emit_expr(asm: &mut Asm, e: &Expr, depth: u8) -> Result<Reg, CodegenError> {
    match e {
        Expr::Var(v) => Ok(var_reg(*v)),
        Expr::Const(c) => {
            let s = scratch(depth)?;
            if Operand::fits_imm13(*c) {
                asm.push(Instr::Alu {
                    op: AluOp::Or,
                    rd: s,
                    rs1: Reg::ZERO,
                    rs2: Operand::Imm(*c as i16),
                    set_cc: false,
                });
            } else {
                asm.push(Instr::Set { rd: s, imm: *c });
            }
            Ok(s)
        }
        Expr::EventValue(ev) => {
            let s = scratch(depth)?;
            asm.push(Instr::Set {
                rd: ADDR_REG2,
                imm: EVENT_VAL_BASE as i64,
            });
            asm.push(Instr::Ld {
                rd: s,
                rs1: ADDR_REG2,
                offset: (ev.0 as u64 * 8) as i16,
            });
            Ok(s)
        }
        Expr::Unary(op, a) => {
            let ra = emit_expr(asm, a, depth)?;
            let s = scratch(depth)?;
            match op {
                UnOp::Neg => asm.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: s,
                    rs1: Reg::ZERO,
                    rs2: Operand::Reg(ra),
                    set_cc: false,
                }),
                UnOp::Not => asm.push(Instr::Alu {
                    op: AluOp::Xor,
                    rd: s,
                    rs1: ra,
                    rs2: Operand::Imm(-1),
                    set_cc: false,
                }),
                UnOp::LNot => {
                    asm.push(Instr::Alu {
                        op: AluOp::Sub,
                        rd: Reg::ZERO,
                        rs1: ra,
                        rs2: Operand::Imm(0),
                        set_cc: true,
                    });
                    materialize_cond(asm, Cond::Eq, s);
                }
            }
            Ok(s)
        }
        Expr::Binary(op, a, b) => {
            let s = scratch(depth)?;
            // Comparisons materialize a 0/1 value.
            let cmp = match op {
                BinOp::Eq => Some(Cond::Eq),
                BinOp::Ne => Some(Cond::Ne),
                BinOp::Lt => Some(Cond::Lt),
                BinOp::Le => Some(Cond::Le),
                BinOp::Gt => Some(Cond::Gt),
                BinOp::Ge => Some(Cond::Ge),
                _ => None,
            };
            if let Some(c) = cmp {
                let ra = emit_expr(asm, a, depth)?;
                let rb_depth = if ra.0 >= SCRATCH_BASE && ra.0 < SCRATCH_BASE + SCRATCH_COUNT {
                    depth + 1
                } else {
                    depth
                };
                let rb = match &**b {
                    Expr::Const(cst) if Operand::fits_imm13(*cst) => Operand::Imm(*cst as i16),
                    Expr::Var(v) => Operand::Reg(var_reg(*v)),
                    other => Operand::Reg(emit_expr(asm, other, rb_depth)?),
                };
                asm.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: Reg::ZERO,
                    rs1: ra,
                    rs2: rb,
                    set_cc: true,
                });
                materialize_cond(asm, c, s);
                return Ok(s);
            }
            let alu = match op {
                BinOp::Add => AluOp::Add,
                BinOp::Sub => AluOp::Sub,
                BinOp::Mul => AluOp::Smul,
                BinOp::Div => AluOp::Sdiv,
                BinOp::Rem => AluOp::Srem,
                BinOp::And => AluOp::And,
                BinOp::Or => AluOp::Or,
                BinOp::Xor => AluOp::Xor,
                BinOp::Shl => AluOp::Sll,
                BinOp::Shr => AluOp::Sra,
                _ => unreachable!("comparisons handled above"),
            };
            let ra = emit_expr(asm, a, depth)?;
            let rb_depth = if ra.0 >= SCRATCH_BASE && ra.0 < SCRATCH_BASE + SCRATCH_COUNT {
                depth + 1
            } else {
                depth
            };
            let rb = match &**b {
                Expr::Const(c) if Operand::fits_imm13(*c) => Operand::Imm(*c as i16),
                Expr::Var(v) => Operand::Reg(var_reg(*v)),
                other => Operand::Reg(emit_expr(asm, other, rb_depth)?),
            };
            asm.push(Instr::Alu {
                op: alu,
                rd: s,
                rs1: ra,
                rs2: rb,
                set_cc: false,
            });
            Ok(s)
        }
    }
}

/// Materializes the current condition codes as 0/1 into `rd`:
/// assume-true / branch-over / overwrite-false, using the delay slot.
fn materialize_cond(asm: &mut Asm, cond: Cond, rd: Reg) {
    asm.push(Instr::Alu {
        op: AluOp::Or,
        rd,
        rs1: Reg::ZERO,
        rs2: Operand::Imm(1),
        set_cc: false,
    });
    let done = asm.label();
    asm.branch(cond, done);
    asm.push(Instr::Nop);
    asm.push(Instr::Alu {
        op: AluOp::Or,
        rd,
        rs1: Reg::ZERO,
        rs2: Operand::Imm(0),
        set_cc: false,
    });
    asm.bind(done);
}

/// The *isolated* instruction template for one macro-operation, as used
/// by the characterization flow (Fig. 3): every operand is loaded from
/// memory, the operation performed, and the result stored back — no
/// cross-macro-op register reuse. Running these through the ISS yields
/// the `.time/.size/.energy` parameter-file entries.
pub fn macro_op_template(op: MacroOp) -> Vec<Instr> {
    let ld = |rd: u8, off: i16| Instr::Ld {
        rd: Reg(rd),
        rs1: ADDR_REG,
        offset: off,
    };
    let st = |rs: u8, off: i16| Instr::St {
        rs: Reg(rs),
        rs1: ADDR_REG,
        offset: off,
    };
    let set_base = Instr::Set {
        rd: ADDR_REG,
        imm: memmap::VAR_BASE as i64,
    };
    let mut v = vec![set_base];
    match op {
        MacroOp::Avv => {
            v.push(ld(8, 0));
            v.push(st(8, 8));
        }
        MacroOp::Aemit => {
            v.push(ld(8, 0));
            v.push(Instr::Set {
                rd: ADDR_REG2,
                imm: memmap::EMIT_BASE as i64,
            });
            v.push(Instr::St {
                rs: Reg(8),
                rs1: ADDR_REG2,
                offset: 0,
            });
        }
        MacroOp::TivarT | MacroOp::TivarF => {
            v.push(ld(8, 0));
            v.push(Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::ZERO,
                rs1: Reg(8),
                rs2: Operand::Imm(0),
                set_cc: true,
            });
            let target = v.len() as u32 + 2;
            v.push(Instr::Branch {
                cond: if op == MacroOp::TivarT {
                    Cond::Always
                } else {
                    Cond::Ne
                },
                target,
            });
            v.push(Instr::Nop);
        }
        MacroOp::MemRead => {
            v.push(Instr::Set {
                rd: ADDR_REG2,
                imm: memmap::SHARED_BASE as i64,
            });
            v.push(Instr::Ld {
                rd: Reg(8),
                rs1: ADDR_REG2,
                offset: 0,
            });
            v.push(st(8, 0));
        }
        MacroOp::MemWrite => {
            v.push(ld(8, 0));
            v.push(Instr::Set {
                rd: ADDR_REG2,
                imm: memmap::SHARED_BASE as i64,
            });
            v.push(Instr::St {
                rs: Reg(8),
                rs1: ADDR_REG2,
                offset: 0,
            });
        }
        MacroOp::Unary(u) => {
            v.push(ld(8, 0));
            match u {
                UnOp::Neg => v.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: Reg(9),
                    rs1: Reg::ZERO,
                    rs2: Operand::Reg(Reg(8)),
                    set_cc: false,
                }),
                UnOp::Not => v.push(Instr::Alu {
                    op: AluOp::Xor,
                    rd: Reg(9),
                    rs1: Reg(8),
                    rs2: Operand::Imm(-1),
                    set_cc: false,
                }),
                UnOp::LNot => {
                    v.push(Instr::Alu {
                        op: AluOp::Sub,
                        rd: Reg::ZERO,
                        rs1: Reg(8),
                        rs2: Operand::Imm(0),
                        set_cc: true,
                    });
                    v.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: Reg(9),
                        rs1: Reg::ZERO,
                        rs2: Operand::Imm(1),
                        set_cc: false,
                    });
                    let target = v.len() as u32 + 3;
                    v.push(Instr::Branch {
                        cond: Cond::Eq,
                        target,
                    });
                    v.push(Instr::Nop);
                    v.push(Instr::Alu {
                        op: AluOp::Or,
                        rd: Reg(9),
                        rs1: Reg::ZERO,
                        rs2: Operand::Imm(0),
                        set_cc: false,
                    });
                }
            }
            v.push(st(9, 8));
        }
        MacroOp::Binary(b) => {
            v.push(ld(8, 0));
            v.push(ld(9, 8));
            let cmp = match b {
                BinOp::Eq => Some(Cond::Eq),
                BinOp::Ne => Some(Cond::Ne),
                BinOp::Lt => Some(Cond::Lt),
                BinOp::Le => Some(Cond::Le),
                BinOp::Gt => Some(Cond::Gt),
                BinOp::Ge => Some(Cond::Ge),
                _ => None,
            };
            if let Some(c) = cmp {
                v.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: Reg::ZERO,
                    rs1: Reg(8),
                    rs2: Operand::Reg(Reg(9)),
                    set_cc: true,
                });
                v.push(Instr::Alu {
                    op: AluOp::Or,
                    rd: Reg(10),
                    rs1: Reg::ZERO,
                    rs2: Operand::Imm(1),
                    set_cc: false,
                });
                let target = v.len() as u32 + 3;
                v.push(Instr::Branch { cond: c, target });
                v.push(Instr::Nop);
                v.push(Instr::Alu {
                    op: AluOp::Or,
                    rd: Reg(10),
                    rs1: Reg::ZERO,
                    rs2: Operand::Imm(0),
                    set_cc: false,
                });
            } else {
                let alu = match b {
                    BinOp::Add => AluOp::Add,
                    BinOp::Sub => AluOp::Sub,
                    BinOp::Mul => AluOp::Smul,
                    BinOp::Div => AluOp::Sdiv,
                    BinOp::Rem => AluOp::Srem,
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Or,
                    BinOp::Xor => AluOp::Xor,
                    BinOp::Shl => AluOp::Sll,
                    BinOp::Shr => AluOp::Sra,
                    _ => unreachable!("comparisons handled above"),
                };
                v.push(Instr::Alu {
                    op: alu,
                    rd: Reg(10),
                    rs1: Reg(8),
                    rs2: Operand::Reg(Reg(9)),
                    set_cc: false,
                });
            }
            v.push(st(10, 16));
        }
    }
    v.push(Instr::Halt);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, ALL_MACRO_OPS};

    fn one_transition_machine(body: Cfg, n_vars: usize) -> Cfsm {
        let mut b = Cfsm::builder("m");
        let s = b.state("s");
        for v in 0..n_vars {
            b.var(format!("v{v}"), 0);
        }
        b.transition(s, vec![EventId(0)], None, body, s);
        b.finish().expect("valid machine")
    }

    #[test]
    fn compiles_simple_assign() {
        let m = one_transition_machine(
            Cfg::straight_line(vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
            }]),
            1,
        );
        let p = compile(&m, 0x1000).expect("compiles");
        assert_eq!(p.transitions.len(), 1);
        assert!(matches!(p.code.last(), Some(Instr::Halt)));
        // Prologue loads v0 (read), epilogue stores it (written).
        assert!(p.code.iter().any(|i| matches!(i, Instr::Ld { .. })));
        assert!(p.code.iter().any(|i| matches!(i, Instr::St { .. })));
    }

    #[test]
    fn too_many_vars_rejected() {
        let m = one_transition_machine(Cfg::empty(), 13);
        assert!(matches!(
            compile(&m, 0),
            Err(CodegenError::TooManyVars(13))
        ));
    }

    #[test]
    fn block_slot_ranges_are_monotone() {
        use cfsm::{BlockId, CfgBuilder};
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(VarId(0)), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        cb.block(
            vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::sub(Expr::Var(VarId(0)), Expr::Const(1)),
            }],
            Terminator::Goto(BlockId(0)),
        );
        cb.block(vec![], Terminator::Return);
        let m = one_transition_machine(cb.finish().expect("valid"), 1);
        let p = compile(&m, 0).expect("compiles");
        let t = &p.transitions[0];
        assert_eq!(t.block_slots.len(), 3);
        assert!(t.prologue_slots.0 <= t.prologue_slots.1);
        for w in t.block_slots.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        assert!(t.epilogue_slots.1 as u64 * INSTR_BYTES <= p.size_bytes());
    }

    #[test]
    fn event_reads_collected() {
        let m = one_transition_machine(
            Cfg::straight_line(vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::sub(Expr::EventValue(EventId(4)), Expr::EventValue(EventId(2))),
            }]),
            1,
        );
        let p = compile(&m, 0).expect("compiles");
        assert_eq!(p.transitions[0].event_reads, vec![EventId(2), EventId(4)]);
    }

    #[test]
    fn all_macro_op_templates_terminate_in_halt() {
        for &op in ALL_MACRO_OPS {
            let code = macro_op_template(op);
            assert!(
                matches!(code.last(), Some(Instr::Halt)),
                "{op} template must halt"
            );
            assert!(code.len() >= 3, "{op} template too small");
        }
    }

    #[test]
    fn disassembly_lists_every_instruction_with_addresses() {
        let m = one_transition_machine(
            Cfg::straight_line(vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
            }]),
            1,
        );
        let p = compile(&m, 0x4000).expect("compiles");
        let asm = p.disassemble();
        assert!(asm.contains("transition_0:"));
        assert!(asm.contains("0x00004000"));
        assert!(asm.contains("ta 0"), "breakpoint visible");
        assert_eq!(
            asm.lines().filter(|l| l.contains("0x")).count(),
            p.code.len()
        );
    }

    #[test]
    fn instruction_mix_sums_to_code_length() {
        let m = one_transition_machine(
            Cfg::straight_line(vec![Stmt::Emit {
                event: EventId(1),
                value: Some(Expr::Var(VarId(0))),
            }]),
            1,
        );
        let p = compile(&m, 0).expect("compiles");
        let mix = p.instruction_mix();
        assert_eq!(mix.values().sum::<usize>(), p.code.len());
        assert!(mix["store"] >= 1, "emit lowers to a store");
        assert_eq!(mix["halt"], 1);
    }

    #[test]
    fn slot_accounting_counts_set_twice() {
        let m = one_transition_machine(
            Cfg::straight_line(vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::Const(1_000_000), // needs Set
            }]),
            1,
        );
        let p = compile(&m, 0).expect("compiles");
        assert!(p.slot_count() > p.code.len() as u32);
    }
}
